//! Vectorized predicate kernels vs the batched row interpreter.
//!
//! The tentpole vectorization experiment: identical engines, identical
//! batched hot path, differing only in `EngineConfig::vectorize` —
//! off runs the PR-2 row-at-a-time interpreter over each batch, on
//! runs the columnar kernels with selection vectors. Throughput is
//! events per second of wall time, best of 3 (the paper's three
//! repetitions). Workloads:
//!
//! * `filter-heavy/synthetic-dense`: Linear Road position reports in
//!   512-event same-timestamp runs against six filter-dominated
//!   single-event queries — the regime column-at-a-time execution
//!   targets.
//! * `filter-heavy/sim-dense`: the same queries over the traffic
//!   simulator's dense two-segment stream (~10–30-event runs).
//! * `linear-road/dense`: the full LR query set (patterns, negation,
//!   context switches), where filters are only part of the work.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin vectorized
//! ```
//!
//! Besides the printed table, results are written to
//! `BENCH_vectorized.json` in the current directory; EXPERIMENTS.md
//! records a committed run.

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use std::time::Instant;

struct Row {
    label: String,
    events: u64,
    interpreter_evs: f64,
    vectorized_evs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.vectorized_evs / self.interpreter_evs
    }
}

/// Six filter-dominated queries over position reports: arithmetic,
/// string equality and range conjuncts of mixed selectivity, all in
/// one always-active context so the chains stay stage-major.
const FILTER_MODEL: &str = r#"
MODEL vectorized DEFAULT road
CONTEXT road {
    DERIVE CrawlingCar(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed < 12 AND p.lane != "exit" AND p.seg = 1
    DERIVE Speeder(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed * 3 > 240 AND p.dir = 0 AND p.pos > 320
    DERIVE LaneChangePressure(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed >= 12 AND p.speed <= 20 AND p.seg * 100 + p.pos > 350
    DERIVE ExitRamp(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.lane = "exit" AND p.speed < 30
    DERIVE SegmentDrift(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.pos - p.seg * 100 > 280 AND p.speed + p.dir * 10 < 25
    DERIVE ConvoyCandidate(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed > 40 AND p.speed < 45 AND p.pos * 2 + p.speed > 700 AND p.dir = 1
}
"#;

fn filter_system(vectorize: bool) -> CaesarSystem {
    Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
        .within(60)
        .model_text(FILTER_MODEL)
        .engine_config(EngineConfig::builder().vectorize(vectorize).build())
        .build()
        .expect("filter model builds")
}

/// Deterministic dense stream: 512 position reports per tick, one
/// partition, so every stream transaction is a 512-row batch.
fn synthetic_dense_events() -> Vec<Event> {
    let probe = filter_system(true);
    let mut events = Vec::new();
    for sec in 1u64..=120 {
        for k in 0i64..512 {
            let lane = if k % 16 == 0 { "exit" } else { "travel" };
            events.push(
                probe
                    .event("PositionReport", sec)
                    .unwrap()
                    .attr("vid", k)
                    .unwrap()
                    .attr("sec", sec as i64)
                    .unwrap()
                    .attr("speed", (k * 7 + sec as i64) % 100)
                    .unwrap()
                    .attr("xway", 0i64)
                    .unwrap()
                    .attr("lane", lane)
                    .unwrap()
                    .attr("dir", k & 1)
                    .unwrap()
                    .attr("seg", (k / 3) % 2)
                    .unwrap()
                    .attr("pos", (k * 11 + sec as i64) % 400)
                    .unwrap()
                    .build()
                    .unwrap(),
            );
        }
    }
    events
}

fn sim_dense_events() -> Vec<Event> {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 2,
        duration: 900,
        seed: 11,
        base_cars: 300.0,
        peak_cars: 500.0,
        ..Default::default()
    });
    sim.generate()
}

/// Best-of-3 wall-clock throughput (events/second).
fn throughput(build: impl Fn() -> CaesarSystem, events: &[Event]) -> f64 {
    (0..3)
        .map(|_| {
            let mut system = build();
            let start = Instant::now();
            let report = system
                .run_stream(&mut VecStream::new(events.to_vec()))
                .expect("in order");
            report.events_in as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn lr_system(vectorize: bool) -> CaesarSystem {
    build_lr_system(
        1,
        OptimizerConfig::default(),
        EngineConfig::builder().vectorize(vectorize).build(),
    )
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    let synthetic = synthetic_dense_events();
    rows.push(Row {
        label: "filter-heavy/synthetic-dense".into(),
        events: synthetic.len() as u64,
        interpreter_evs: throughput(|| filter_system(false), &synthetic),
        vectorized_evs: throughput(|| filter_system(true), &synthetic),
    });

    let sim_dense = sim_dense_events();
    rows.push(Row {
        label: "filter-heavy/sim-dense".into(),
        events: sim_dense.len() as u64,
        interpreter_evs: throughput(|| filter_system(false), &sim_dense),
        vectorized_evs: throughput(|| filter_system(true), &sim_dense),
    });

    rows.push(Row {
        label: "linear-road/dense".into(),
        events: sim_dense.len() as u64,
        interpreter_evs: throughput(|| lr_system(false), &sim_dense),
        vectorized_evs: throughput(|| lr_system(true), &sim_dense),
    });

    print_table(
        "Vectorized kernels vs batched row interpreter (events/s, best of 3)",
        &[
            "configuration",
            "events",
            "interpreter ev/s",
            "vectorized ev/s",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.events.to_string(),
                    format!("{:.0}", r.interpreter_evs),
                    format!("{:.0}", r.vectorized_evs),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"config\": \"{}\", \"events\": {}, \"interpreter_events_per_sec\": {:.1}, \
                 \"vectorized_events_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.label,
                r.events,
                r.interpreter_evs,
                r.vectorized_evs,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"vectorized kernels vs batched row interpreter, Linear Road\",\n\
         \"unit\": \"events per second of wall time, best of 3 runs\",\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_vectorized.json", &json).expect("write BENCH_vectorized.json");
    println!("\nwrote BENCH_vectorized.json");
}
