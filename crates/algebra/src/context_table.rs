//! The set `W` of current context windows (§4.1) realized as the
//! per-partition *context bit vector* of §6.2.
//!
//! "For each stream partition we save which context windows currently
//! hold in the context bit vector W. This vector W has a time stamp
//! W.time and a one-bit entry for each context type. The entries are
//! sorted alphabetically by context names to allow for constant time
//! access."
//!
//! Beyond the bits, each entry keeps the current window's span so the
//! `(t_i, t_t]` admission semantics of Definition 1 can be honoured, and
//! an *epoch* counter identifying window instances (used by the context
//! history to expire partial matches, §6.2 "Context Processing").

use caesar_events::{PartitionId, Time, WindowSpan, TIME_MAX};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A context transition produced by a context initiation / termination
/// operator, applied to the table by the runtime scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// What happens.
    pub kind: TransitionKind,
    /// Bit index of the affected context (alphabetical order).
    pub context_bit: u8,
    /// Application time of the triggering event.
    pub time: Time,
    /// The partition whose context state changes.
    pub partition: PartitionId,
}

/// Kinds of context transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionKind {
    /// Start window `w_c` (no-op if already open) — operator `CI_c`.
    Initiate,
    /// End window `w_c` (no-op if not open) — operator `CT_c`.
    Terminate,
}

/// Per-context-entry state inside one partition.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Slot {
    /// Exclusive start of the open window; meaningful when the bit is set.
    initiated: Time,
    /// The window was open "since genesis" (default context at startup):
    /// admits every timestamp.
    genesis: bool,
    /// The most recently closed window, kept so events carrying exactly
    /// the termination timestamp are still admitted within the closing
    /// transaction (`t <= t_t`).
    recent: Option<WindowSpan>,
    /// Window-instance counter; bumped on every initiation.
    epoch: u64,
}

/// Context window state of one stream partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionContexts {
    /// The context bit vector: bit `i` set ⇔ window of context `i` holds.
    bits: u64,
    /// `W.time`: application time of the last update.
    time: Time,
    slots: Vec<Slot>,
    default_bit: u8,
}

impl PartitionContexts {
    fn new(num_contexts: usize, default_bit: u8) -> Self {
        let mut slots = vec![Slot::default(); num_contexts];
        // The default context holds at startup and admits all times.
        slots[default_bit as usize].genesis = true;
        slots[default_bit as usize].epoch = 1;
        Self {
            bits: 1 << default_bit,
            time: 0,
            slots,
            default_bit,
        }
    }

    /// The raw bit vector.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// `W.time` — when the vector was last updated.
    #[must_use]
    pub fn time(&self) -> Time {
        self.time
    }

    /// Returns `true` if the window of context `bit` currently holds.
    #[must_use]
    pub fn holds(&self, bit: u8) -> bool {
        self.bits & (1 << bit) != 0
    }

    /// Number of currently open windows.
    #[must_use]
    pub fn open_count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Window-instance epoch of context `bit` (0 = never opened).
    #[must_use]
    pub fn epoch(&self, bit: u8) -> u64 {
        self.slots[bit as usize].epoch
    }

    /// The context window operator's admission test (`CW_c`): does an
    /// event at time `t` occur during the current (or just-terminated)
    /// window of context `bit`?
    ///
    /// Honours the `(t_i, t_t]` semantics: events at the initiation
    /// timestamp are *not* admitted; events at the termination timestamp
    /// *are* (via the `recent` span kept until the watermark passes it).
    #[must_use]
    pub fn admits(&self, bit: u8, t: Time) -> bool {
        let slot = &self.slots[bit as usize];
        if self.holds(bit) && (slot.genesis || slot.initiated < t) {
            return true;
        }
        slot.recent.is_some_and(|w| w.admits(t))
    }

    /// Span of the currently open window of `bit`, if any.
    #[must_use]
    pub fn open_span(&self, bit: u8) -> Option<WindowSpan> {
        self.holds(bit).then(|| WindowSpan {
            initiated: if self.slots[bit as usize].genesis {
                0
            } else {
                self.slots[bit as usize].initiated
            },
            terminated: TIME_MAX,
        })
    }

    /// Applies `CI_c` at time `t` (§4.1):
    /// "starts a new context window w_c, adds it to the set of current
    /// context windows and removes the default context window, if there."
    /// No-op if `w_c` is already open.
    pub fn initiate(&mut self, bit: u8, t: Time) {
        self.time = self.time.max(t);
        if self.holds(bit) {
            return;
        }
        self.open_slot(bit, t);
        // Remove the default window (unless the initiated context IS the
        // default, which would be unusual but harmless).
        if bit != self.default_bit && self.holds(self.default_bit) {
            self.close_slot(self.default_bit, t);
        }
    }

    /// Applies `CT_c` at time `t` (§4.1):
    /// "ends the context window w_c, removes it from the set of current
    /// context windows, if the set becomes empty adds the default
    /// context window."
    /// No-op if `w_c` is not open.
    pub fn terminate(&mut self, bit: u8, t: Time) {
        self.time = self.time.max(t);
        if !self.holds(bit) {
            return;
        }
        self.close_slot(bit, t);
        if self.bits == 0 {
            self.open_slot(self.default_bit, t);
        }
    }

    fn open_slot(&mut self, bit: u8, t: Time) {
        let slot = &mut self.slots[bit as usize];
        slot.initiated = t;
        slot.genesis = false;
        slot.epoch += 1;
        self.bits |= 1 << bit;
    }

    fn close_slot(&mut self, bit: u8, t: Time) {
        let slot = &mut self.slots[bit as usize];
        let initiated = if slot.genesis { 0 } else { slot.initiated };
        slot.recent = Some(WindowSpan {
            initiated,
            terminated: t,
        });
        slot.genesis = false;
        self.bits &= !(1 << bit);
    }

    /// Garbage-collects `recent` spans fully behind the watermark
    /// (the storage layer's garbage collector, §6.1).
    pub fn collect_garbage(&mut self, watermark: Time) {
        for slot in &mut self.slots {
            if slot.recent.is_some_and(|w| w.terminated < watermark) {
                slot.recent = None;
            }
        }
    }
}

/// The full context table: one [`PartitionContexts`] per stream
/// partition, created lazily.
///
/// Partition state is keyed by id, not indexed by it: ids are sparse
/// (clickstream workloads hash millions of user keys into the 32-bit id
/// space), so touching partition `u32::MAX` must cost one entry — not a
/// dense vector materializing four billion default states.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextTable {
    partitions: BTreeMap<u32, PartitionContexts>,
    /// Garbage-collection worklist: `(time, partition)` of every
    /// transition applied since the last collection. Windows only close
    /// through transitions, so these are exactly the partitions whose
    /// `recent` spans can expire — the collector visits them instead of
    /// sweeping every materialized partition, which at clickstream
    /// cardinalities (hundreds of thousands of user keys) would make
    /// each periodic GC run O(partitions).
    expiries: BTreeSet<(Time, u32)>,
    num_contexts: usize,
    default_bit: u8,
}

impl ContextTable {
    /// Creates a table for `num_contexts` context types (alphabetical bit
    /// order) with the given default context bit.
    ///
    /// # Panics
    /// Panics if `num_contexts` exceeds 64 or `default_bit` is out of
    /// range.
    #[must_use]
    pub fn new(num_contexts: usize, default_bit: u8) -> Self {
        assert!(
            num_contexts <= 64,
            "context bit vector holds at most 64 types"
        );
        assert!(
            (default_bit as usize) < num_contexts,
            "default bit out of range"
        );
        Self {
            partitions: BTreeMap::new(),
            expiries: BTreeSet::new(),
            num_contexts,
            default_bit,
        }
    }

    /// Number of context types.
    #[must_use]
    pub fn num_contexts(&self) -> usize {
        self.num_contexts
    }

    /// Bit of the default context.
    #[must_use]
    pub fn default_bit(&self) -> u8 {
        self.default_bit
    }

    /// The state of one partition (creating it on first touch).
    pub fn partition_mut(&mut self, p: PartitionId) -> &mut PartitionContexts {
        let (n, d) = (self.num_contexts, self.default_bit);
        self.partitions
            .entry(p.0)
            .or_insert_with(|| PartitionContexts::new(n, d))
    }

    /// Read access to one partition's state; partitions never touched
    /// report the startup state (default context only).
    #[must_use]
    pub fn partition(&self, p: PartitionId) -> PartitionContexts {
        self.partitions
            .get(&p.0)
            .cloned()
            .unwrap_or_else(|| PartitionContexts::new(self.num_contexts, self.default_bit))
    }

    /// Whether context `bit` admits an event at `(p, t)` — the `CW_c`
    /// test without materializing the partition.
    #[must_use]
    pub fn admits(&self, p: PartitionId, bit: u8, t: Time) -> bool {
        match self.partitions.get(&p.0) {
            Some(pc) => pc.admits(bit, t),
            None => bit == self.default_bit, // startup default admits all
        }
    }

    /// Whether the window of context `bit` currently holds at `p`.
    #[must_use]
    pub fn holds(&self, p: PartitionId, bit: u8) -> bool {
        match self.partitions.get(&p.0) {
            Some(pc) => pc.holds(bit),
            None => bit == self.default_bit,
        }
    }

    /// Applies one transition (and enqueues the partition for garbage
    /// collection — any window this transition closed leaves a `recent`
    /// span stamped with the transition time).
    pub fn apply(&mut self, transition: Transition) {
        let pc = self.partition_mut(transition.partition);
        match transition.kind {
            TransitionKind::Initiate => pc.initiate(transition.context_bit, transition.time),
            TransitionKind::Terminate => pc.terminate(transition.context_bit, transition.time),
        }
        self.expiries
            .insert((transition.time, transition.partition.0));
    }

    /// Runs the garbage collector: clears expired `recent` spans in
    /// every partition with a transition behind the watermark since the
    /// last collection. Amortized O(transitions), independent of the
    /// number of materialized partitions — a span closed at `t` can
    /// only expire once the watermark passes `t`, and its closing
    /// transition is on the worklist under exactly that time. (Mutation
    /// through [`partition_mut`](Self::partition_mut) bypasses the
    /// worklist; such spans are collected with the partition's next
    /// applied transition, which costs memory, never admission
    /// correctness — an expired span admits only events the watermark
    /// already passed.)
    pub fn collect_garbage(&mut self, watermark: Time) {
        while let Some(&(t, p)) = self.expiries.first() {
            if t >= watermark {
                break;
            }
            self.expiries.pop_first();
            if let Some(pc) = self.partitions.get_mut(&p) {
                pc.collect_garbage(watermark);
            }
        }
    }

    /// Number of partitions materialized so far.
    #[must_use]
    pub fn materialized_partitions(&self) -> usize {
        self.partitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAR: u8 = 1; // default
    const ACCIDENT: u8 = 0;
    const CONGESTION: u8 = 2;
    const P: PartitionId = PartitionId(0);

    fn table() -> ContextTable {
        ContextTable::new(3, CLEAR)
    }

    #[test]
    fn default_context_holds_at_startup_and_admits_time_zero() {
        let t = table();
        assert!(t.holds(P, CLEAR));
        assert!(!t.holds(P, CONGESTION));
        assert!(t.admits(P, CLEAR, 0));
        assert!(t.admits(P, CLEAR, 1_000_000));
        assert!(!t.admits(P, CONGESTION, 5));
    }

    #[test]
    fn initiate_opens_window_and_closes_default() {
        let mut t = table();
        t.partition_mut(P).initiate(CONGESTION, 10);
        assert!(t.holds(P, CONGESTION));
        assert!(!t.holds(P, CLEAR), "default removed on initiation");
        // (t_i, t_t] semantics: event at the initiation time is NOT in
        // the new window...
        assert!(!t.admits(P, CONGESTION, 10));
        assert!(t.admits(P, CONGESTION, 11));
        // ...but still in the just-closed default window.
        assert!(t.admits(P, CLEAR, 10));
        assert!(!t.admits(P, CLEAR, 11));
    }

    #[test]
    fn initiate_is_idempotent_while_open() {
        let mut t = table();
        t.partition_mut(P).initiate(CONGESTION, 10);
        let epoch = t.partition(P).epoch(CONGESTION);
        t.partition_mut(P).initiate(CONGESTION, 20);
        assert_eq!(
            t.partition(P).epoch(CONGESTION),
            epoch,
            "CI on open window is a no-op"
        );
    }

    #[test]
    fn terminate_restores_default_when_set_empties() {
        let mut t = table();
        t.partition_mut(P).initiate(CONGESTION, 10);
        t.partition_mut(P).terminate(CONGESTION, 50);
        assert!(!t.holds(P, CONGESTION));
        assert!(t.holds(P, CLEAR), "default restored");
        // Terminated window still admits its termination timestamp.
        assert!(t.admits(P, CONGESTION, 50));
        assert!(!t.admits(P, CONGESTION, 51));
        // The restored default is half-open at 50.
        assert!(!t.admits(P, CLEAR, 50));
        assert!(t.admits(P, CLEAR, 51));
    }

    #[test]
    fn overlapping_windows_coexist() {
        let mut t = table();
        t.partition_mut(P).initiate(CONGESTION, 10);
        t.partition_mut(P).initiate(ACCIDENT, 20);
        assert!(t.holds(P, CONGESTION));
        assert!(t.holds(P, ACCIDENT));
        assert_eq!(t.partition(P).open_count(), 2);
        // Terminating one leaves the other (|W| > 1 branch of CT).
        t.partition_mut(P).terminate(ACCIDENT, 30);
        assert!(t.holds(P, CONGESTION));
        assert!(
            !t.holds(P, CLEAR),
            "default NOT restored while another window holds"
        );
    }

    #[test]
    fn terminate_unopened_window_is_noop() {
        let mut t = table();
        t.partition_mut(P).terminate(ACCIDENT, 5);
        assert!(t.holds(P, CLEAR));
        assert!(!t.admits(P, ACCIDENT, 5));
    }

    #[test]
    fn epochs_count_window_instances() {
        let mut t = table();
        let pc = t.partition_mut(P);
        pc.initiate(CONGESTION, 10);
        pc.terminate(CONGESTION, 20);
        pc.initiate(CONGESTION, 30);
        assert_eq!(pc.epoch(CONGESTION), 2);
        assert_eq!(pc.epoch(CLEAR), 2, "default reopened once after genesis");
    }

    #[test]
    fn gc_drops_stale_recent_spans() {
        let mut t = table();
        t.apply(Transition {
            kind: TransitionKind::Initiate,
            context_bit: CONGESTION,
            partition: P,
            time: 10,
        });
        t.apply(Transition {
            kind: TransitionKind::Terminate,
            context_bit: CONGESTION,
            partition: P,
            time: 20,
        });
        assert!(t.admits(P, CONGESTION, 20));
        t.collect_garbage(20);
        assert!(
            t.admits(P, CONGESTION, 20),
            "a span is live until the watermark passes its termination"
        );
        t.collect_garbage(21);
        assert!(!t.admits(P, CONGESTION, 20), "recent span collected");
    }

    #[test]
    fn partitions_are_independent() {
        let mut t = table();
        t.partition_mut(PartitionId(0)).initiate(CONGESTION, 10);
        assert!(t.holds(PartitionId(0), CONGESTION));
        assert!(!t.holds(PartitionId(1), CONGESTION));
        assert!(t.holds(PartitionId(1), CLEAR));
    }

    #[test]
    fn apply_transitions() {
        let mut t = table();
        t.apply(Transition {
            kind: TransitionKind::Initiate,
            context_bit: CONGESTION,
            time: 10,
            partition: P,
        });
        assert!(t.holds(P, CONGESTION));
        t.apply(Transition {
            kind: TransitionKind::Terminate,
            context_bit: CONGESTION,
            time: 12,
            partition: P,
        });
        assert!(t.holds(P, CLEAR));
    }

    #[test]
    fn w_time_tracks_latest_update() {
        let mut t = table();
        let pc = t.partition_mut(P);
        pc.initiate(CONGESTION, 10);
        pc.terminate(CONGESTION, 25);
        assert_eq!(pc.time(), 25);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_contexts_panics() {
        let _ = ContextTable::new(65, 0);
    }

    #[test]
    fn sparse_partition_ids_materialize_only_touched_state() {
        let mut t = table();
        // Ids spread across the whole u32 space: state must track the
        // touched partitions, never the largest id.
        t.partition_mut(PartitionId(u32::MAX)).initiate(ACCIDENT, 5);
        t.partition_mut(PartitionId(1_000_000))
            .initiate(CONGESTION, 7);
        assert_eq!(t.materialized_partitions(), 2);
        assert!(t.holds(PartitionId(u32::MAX), ACCIDENT));
        assert!(t.holds(PartitionId(1_000_000), CONGESTION));
        // Untouched ids in between still report the startup default.
        assert!(t.holds(PartitionId(500_000), CLEAR));
        assert!(t.admits(PartitionId(500_000), CLEAR, 123));
    }
}
