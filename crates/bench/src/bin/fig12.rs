//! Figure 12 — efficiency of context-aware event stream analytics:
//! CAESAR (context-aware, CA) vs. the state-of-the-art
//! context-independent baseline (CI: every query always active, each
//! processing query privately re-deriving its context).
//!
//! (a) max latency vs. number of event queries per context window
//!     (paper: ≈8× at 10 queries on Linear Road, same win on the
//!     physical-activity data at 20);
//! (b) max latency vs. number of roads (≈9× at 7 roads);
//! (c) win ratio vs. context window length, annotated with the % of the
//!     stream covered by suspension-friendly windows (>3× above 80%
//!     coverage, ≈1 below 50%);
//! (d) win ratio vs. number of context windows (>2× above 80%).
//!
//! ```text
//! cargo run --release -p caesar-bench --bin fig12 [-- a|b|c|d]
//! ```

use caesar_bench::{measure, print_table, ratio};
use caesar_core::prelude::*;
use caesar_events::generator::WindowPlacement;
use caesar_linear_road::{build_lr_system_critical, LinearRoadConfig, SchedulePolicy, TrafficSim};
use caesar_pam::{generate, pam_model, pam_registry, PamConfig};

/// Repeats (the paper averages three runs; we keep the minimum of the
/// max-latency, which is robust against OS scheduling spikes).
const REPEATS: usize = 3;

fn engine(mode: ExecutionMode, ns_per_tick: u64) -> EngineConfig {
    EngineConfig::builder()
        .mode(mode)
        .ns_per_tick(ns_per_tick)
        .build()
}

/// Busy nanoseconds per tick of a mode on this machine (min of three
/// as-fast-as-possible runs, like the paper's three repetitions).
fn busy_per_tick(mode: ExecutionMode, replication: usize, events: &[Event], duration: u64) -> f64 {
    (0..REPEATS)
        .map(|_| {
            let mut system = build_lr_system_critical(
                replication,
                OptimizerConfig::default(),
                engine(mode, 1_000_000_000),
            );
            measure("cal", &mut system, events.to_vec())
                .report
                .wall_time
                .as_nanos() as u64
        })
        .min()
        .expect("repeats") as f64
        / duration as f64
}

/// Picks the arrival-clock scale at the geometric midpoint of the two
/// modes' per-tick busy times at the sweep's heaviest point: CAESAR
/// stays below capacity, the baseline overloads — the regime in which
/// the paper's latency constraint is meaningful (DESIGN.md,
/// substitution #4).
fn calibrate(replication: usize, events: &[Event], duration: u64) -> u64 {
    let ci = busy_per_tick(
        ExecutionMode::ContextIndependent,
        replication,
        events,
        duration,
    );
    // 80% of the baseline's average need: the baseline runs sustainably
    // overloaded while CAESAR's out-of-window cost is far below it.
    ((ci * 0.8) as u64).max(1_000)
}

fn lr_events(roads: u32, seed: u64, schedule: SchedulePolicy) -> (Vec<Event>, f64) {
    let config = LinearRoadConfig {
        roads,
        segments_per_road: 8,
        directions: 1,
        duration: 900,
        seed,
        base_cars: 3.0,
        peak_cars: 9.0,
        schedule,
        ..Default::default()
    };
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let coverage = sim.congestion_coverage();
    (events, coverage)
}

/// "2 critical non-overlapping context windows of length 3 minutes
/// process 10 event queries each. These queries can be suspended in
/// other contexts" (§7.3.1) — the windows cover only a small slice of
/// the run, so almost the whole workload is suspendable.
fn critical_windows() -> SchedulePolicy {
    SchedulePolicy::Placed {
        count: 2,
        length: 30,
        placement: WindowPlacement::Uniform,
    }
}

fn robust(mode: ExecutionMode, replication: usize, events: &[Event], ns_per_tick: u64) -> u64 {
    (0..REPEATS)
        .map(|_| {
            let mut system = build_lr_system_critical(
                replication,
                OptimizerConfig::default(),
                engine(mode, ns_per_tick),
            );
            measure("run", &mut system, events.to_vec())
                .report
                .max_latency_ns
        })
        .min()
        .expect("repeats >= 1")
}

fn compare(events: Vec<Event>, replication: usize, ns_per_tick: u64) -> (u64, u64) {
    let ca = robust(
        ExecutionMode::ContextAware,
        replication,
        &events,
        ns_per_tick,
    );
    let ci = robust(
        ExecutionMode::ContextIndependent,
        replication,
        &events,
        ns_per_tick,
    );
    (ca, ci)
}

fn part_a() {
    let mut rows = Vec::new();
    let (cal_events, _) = lr_events(3, 31, critical_windows());
    let ns_per_tick = calibrate(20, &cal_events, 900);
    println!("calibrated ns_per_tick = {ns_per_tick}");
    for queries in [2usize, 4, 6, 8, 10, 12, 14, 16, 18, 20] {
        let (events, _) = lr_events(3, 31, critical_windows());
        let (ca, ci) = compare(events, queries, ns_per_tick);
        rows.push(vec![
            queries.to_string(),
            format!("{:.3}", ca as f64 / 1e6),
            format!("{:.3}", ci as f64 / 1e6),
            ratio(ci, ca),
        ]);
    }
    print_table(
        "Figure 12(a): max latency (ms) vs event queries per context window (LR, 3 roads)",
        &["queries", "CA max (ms)", "CI max (ms)", "win ratio"],
        &rows,
    );

    // The PAM counterpart at 20 queries.
    let registry = pam_registry();
    let (events, _) = generate(
        &PamConfig {
            duration: 1800,
            ..Default::default()
        },
        &registry,
    );
    let build = |mode, ns_per_tick: u64| {
        Caesar::builder()
            .model(pam_model(20))
            .schema(
                "SensorReading",
                &[
                    ("subject", AttrType::Int),
                    ("sec", AttrType::Int),
                    ("heart_rate", AttrType::Int),
                    ("hand_acc", AttrType::Float),
                    ("chest_acc", AttrType::Float),
                ],
            )
            .schema(
                "ActivityStarted",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ActivityEnded",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ExerciseStarted",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .schema(
                "ExerciseEnded",
                &[("subject", AttrType::Int), ("sec", AttrType::Int)],
            )
            .within(30)
            .engine_config(
                EngineConfig::builder()
                    .mode(mode)
                    .ns_per_tick(ns_per_tick)
                    .build(),
            )
            .build()
            .unwrap()
    };
    let pam_busy = |mode| {
        (0..REPEATS)
            .map(|_| {
                let mut system = build(mode, 1_000_000_000);
                measure("PAM cal", &mut system, events.clone())
                    .report
                    .wall_time
                    .as_nanos() as u64
            })
            .min()
            .expect("repeats") as f64
            / 1800.0
    };
    let pam_tick = ((pam_busy(ExecutionMode::ContextIndependent) * 0.8) as u64).max(1_000);
    let robust_pam = |mode| {
        (0..REPEATS)
            .map(|_| {
                let mut system = build(mode, pam_tick);
                measure("PAM", &mut system, events.clone())
                    .report
                    .max_latency_ns
            })
            .min()
            .expect("repeats")
    };
    let ca = robust_pam(ExecutionMode::ContextAware);
    let ci = robust_pam(ExecutionMode::ContextIndependent);
    println!(
        "PAM, 20 queries: CA {:.3} ms, CI {:.3} ms, win ratio {}",
        ca as f64 / 1e6,
        ci as f64 / 1e6,
        ratio(ci, ca)
    );
}

fn part_b() {
    let mut rows = Vec::new();
    let (cal_events, _) = lr_events(7, 32, critical_windows());
    let ns_per_tick = calibrate(10, &cal_events, 900);
    println!("calibrated ns_per_tick = {ns_per_tick}");
    for roads in 2..=7u32 {
        let (events, _) = lr_events(roads, 32, critical_windows());
        let (ca, ci) = compare(events, 10, ns_per_tick);
        rows.push(vec![
            roads.to_string(),
            format!("{:.3}", ca as f64 / 1e6),
            format!("{:.3}", ci as f64 / 1e6),
            ratio(ci, ca),
        ]);
    }
    print_table(
        "Figure 12(b): max latency (ms) vs number of roads (10 queries per window)",
        &["roads", "CA max (ms)", "CI max (ms)", "win ratio"],
        &rows,
    );
}

fn part_c() {
    let mut rows = Vec::new();
    let (cal_events, _) = lr_events(2, 33, critical_windows());
    let ns_per_tick = calibrate(10, &cal_events, 900);
    println!("calibrated ns_per_tick = {ns_per_tick}");
    for length in [90u64, 135, 180, 270, 360, 430] {
        let (events, coverage) = lr_events(
            2,
            33,
            SchedulePolicy::Placed {
                count: 2,
                length,
                placement: WindowPlacement::Uniform,
            },
        );
        let (ca, ci) = compare(events, 10, ns_per_tick);
        rows.push(vec![
            length.to_string(),
            format!("{:.0}%", (1.0 - coverage) * 100.0),
            ratio(ci, ca),
        ]);
    }
    print_table(
        "Figure 12(c): win ratio vs context window length (2 windows; % = stream \
         outside congestion, i.e. suspension opportunity)",
        &["window length (s)", "suspendable %", "win ratio CA/CI"],
        &rows,
    );
}

fn part_d() {
    let mut rows = Vec::new();
    let (cal_events, _) = lr_events(2, 34, critical_windows());
    let ns_per_tick = calibrate(10, &cal_events, 900);
    println!("calibrated ns_per_tick = {ns_per_tick}");
    for count in [1usize, 2, 4, 8, 12, 16] {
        let (events, coverage) = lr_events(
            2,
            34,
            SchedulePolicy::Placed {
                count,
                length: 45,
                placement: WindowPlacement::Uniform,
            },
        );
        let (ca, ci) = compare(events, 10, ns_per_tick);
        rows.push(vec![
            count.to_string(),
            format!("{:.0}%", (1.0 - coverage) * 100.0),
            ratio(ci, ca),
        ]);
    }
    print_table(
        "Figure 12(d): win ratio vs number of context windows (length 45 s each)",
        &["windows", "suspendable %", "win ratio CA/CI"],
        &rows,
    );
}

fn main() {
    let part = std::env::args().nth(1);
    match part.as_deref() {
        Some("a") => part_a(),
        Some("b") => part_b(),
        Some("c") => part_c(),
        Some("d") => part_d(),
        _ => {
            part_a();
            part_b();
            part_c();
            part_d();
        }
    }
}
