//! The context-aware stream router (§6.2).
//!
//! "Based on the context window vector, the system is aware of the
//! currently active event query workloads. For each current context
//! window w_c, it routes all its events to the query plan associated with
//! the context c. Query plans of all currently inactive context windows
//! do not receive any input. They are suspended to avoid busy waiting."
//!
//! Routing is batch-level and O(active contexts): one bit-vector lookup
//! selects the combined plans fed for a whole transaction.

use crate::programs::PartitionPrograms;
use caesar_algebra::context_table::ContextTable;
use caesar_events::{PartitionId, Time};
use serde::{Deserialize, Serialize};

/// Batch-level router with suspension accounting.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Router {
    /// Transactions routed.
    pub batches_routed: u64,
    /// Events covered by routed transactions (each routing decision
    /// amortizes over this many events).
    pub events_routed: u64,
    /// Combined plans that received a batch.
    pub plans_fed: u64,
    /// Combined plans skipped because their context was inactive — the
    /// suspension saving the paper's optimization delivers.
    pub plans_suspended: u64,
}

impl Router {
    /// Creates a router.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the active processing plans for one transaction,
    /// updating the suspension counters.
    pub fn select(
        &mut self,
        programs: &PartitionPrograms,
        partition: PartitionId,
        t: Time,
        table: &ContextTable,
    ) -> Vec<usize> {
        let active = programs.active_processing(partition, t, table);
        self.batches_routed += 1;
        self.plans_fed += active.len() as u64;
        self.plans_suspended += (programs.processing.len() - active.len()) as u64;
        active
    }

    /// [`select`](Self::select) for a transaction of `events` events:
    /// same single routing decision, plus amortization accounting.
    pub fn select_batch(
        &mut self,
        programs: &PartitionPrograms,
        partition: PartitionId,
        t: Time,
        table: &ContextTable,
        events: u64,
    ) -> Vec<usize> {
        self.events_routed += events;
        self.select(programs, partition, t, table)
    }

    /// Mean events per routing decision — how far one context lookup
    /// amortizes under batching (1.0 in strict event-at-a-time runs).
    #[must_use]
    pub fn events_per_decision(&self) -> f64 {
        if self.batches_routed == 0 {
            0.0
        } else {
            self.events_routed as f64 / self.batches_routed as f64
        }
    }

    /// Fraction of plan-batch pairs suspended so far.
    #[must_use]
    pub fn suspension_ratio(&self) -> f64 {
        let total = self.plans_fed + self.plans_suspended;
        if total == 0 {
            0.0
        } else {
            self.plans_suspended as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspension_ratio_math() {
        let mut r = Router::new();
        r.plans_fed = 3;
        r.plans_suspended = 7;
        assert!((r.suspension_ratio() - 0.7).abs() < 1e-9);
        assert_eq!(Router::new().suspension_ratio(), 0.0);
    }
}
