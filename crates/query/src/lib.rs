//! The CAESAR event query language and context model (§3 of the paper).
//!
//! This crate covers the *specification layer* of the CAESAR stack:
//!
//! * [`ast`] — the abstract syntax of context-aware event queries
//!   (Definition 3): context initiation / switch / termination clauses,
//!   complex-event derivation, `SEQ`+`NOT` patterns, `WHERE` expressions
//!   and `CONTEXT` clauses.
//! * [`lexer`] / [`parser`] — a hand-written lexer and recursive-descent
//!   parser for the grammar of Figure 4, extended with a `MODEL` /
//!   `CONTEXT { ... }` block syntax so whole applications (Figure 3) can
//!   be written as text.
//! * [`model`] — the CAESAR model (Definition 4): a finite set of context
//!   types with a default context, each carrying context-*deriving* and
//!   context-*processing* query workloads, plus validation.
//! * [`queryset`] — Phase 1 of the translation pipeline (§4.2):
//!   CAESAR model → machine-readable query set with mandatory `CONTEXT`
//!   clauses.
//! * [`builder`] — a fluent programmatic API for constructing models
//!   without going through text.
//! * [`pretty`] — prints queries and models back to parseable text.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod ast;
pub mod builder;
pub mod dot;
pub mod error;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pretty;
pub mod queryset;

pub use ast::{BinOp, ContextAction, DeriveClause, EventQuery, Expr, Pattern, QueryId};
pub use builder::{ContextBuilder, ModelBuilder, QueryBuilder};
pub use dot::model_to_dot;
pub use error::QueryError;
pub use model::{CaesarModel, ContextDef};
pub use parser::{parse_model, parse_queries};
pub use queryset::{CompiledQuery, QuerySet};
