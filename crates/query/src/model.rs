//! The CAESAR model (Definition 4): a finite set of context types with
//! query workloads and a default context.
//!
//! "A CAESAR model is a tuple (I, O, C, c_d) where I and O are unbounded
//! input and output event streams and C is a finite set of context types
//! with the default context type c_d ∈ C." The default context holds when
//! no other context does (e.g. at system startup).

use crate::ast::{ContextAction, EventQuery, Expr, Pattern};
use crate::error::QueryError;
use serde::{Deserialize, Serialize};

/// One context type (Definition 1): a name plus the workloads of
/// context-deriving queries `Q_d` and context-processing queries `Q_p`
/// appropriate in this context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextDef {
    /// Context name (e.g. `congestion`).
    pub name: String,
    /// Queries that, while this context holds, can initiate / switch /
    /// terminate contexts.
    pub deriving: Vec<EventQuery>,
    /// The analytics workload evaluated while this context holds.
    pub processing: Vec<EventQuery>,
}

impl ContextDef {
    /// Creates an empty context type.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            deriving: Vec::new(),
            processing: Vec::new(),
        }
    }

    /// Total number of queries attached to the context.
    #[must_use]
    pub fn workload_size(&self) -> usize {
        self.deriving.len() + self.processing.len()
    }
}

/// A validated CAESAR model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaesarModel {
    /// Application name.
    pub name: String,
    /// The default context `c_d`, active when no other context holds.
    pub default_context: String,
    /// All context types, in definition order.
    pub contexts: Vec<ContextDef>,
}

impl CaesarModel {
    /// Builds and validates a model.
    pub fn new(
        name: impl Into<String>,
        default_context: impl Into<String>,
        contexts: Vec<ContextDef>,
    ) -> Result<Self, QueryError> {
        let model = Self {
            name: name.into(),
            default_context: default_context.into(),
            contexts,
        };
        model.validate()?;
        Ok(model)
    }

    /// Finds a context definition by name.
    #[must_use]
    pub fn context(&self, name: &str) -> Option<&ContextDef> {
        self.contexts.iter().find(|c| c.name == name)
    }

    /// All context names, sorted alphabetically — the order of entries in
    /// the context bit vector (§6.2: "entries are sorted alphabetically
    /// by context names to allow for constant time access").
    #[must_use]
    pub fn context_names_sorted(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.contexts.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Iterates all queries (deriving then processing) of all contexts.
    pub fn all_queries(&self) -> impl Iterator<Item = (&ContextDef, &EventQuery)> {
        self.contexts.iter().flat_map(|c| {
            c.deriving
                .iter()
                .chain(c.processing.iter())
                .map(move |q| (c, q))
        })
    }

    /// Total number of queries in the model.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.contexts.iter().map(ContextDef::workload_size).sum()
    }

    /// Validates the structural invariants of the model.
    ///
    /// * the default context is defined;
    /// * context names are unique and at most 64 (bit-vector width);
    /// * every `CONTEXT` clause and context action targets a defined
    ///   context;
    /// * every query is exactly one of deriving / processing;
    /// * no pattern is fully negated;
    /// * `WHERE` / `DERIVE` expressions reference only pattern-bound
    ///   variables, and bare attribute references are unambiguous.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.contexts.len() > 64 {
            return Err(QueryError::TooManyContexts(self.contexts.len()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for c in &self.contexts {
            if !seen.insert(c.name.as_str()) {
                return Err(QueryError::DuplicateContext(c.name.clone()));
            }
        }
        if !seen.contains(self.default_context.as_str()) {
            return Err(QueryError::MissingDefaultContext(
                self.default_context.clone(),
            ));
        }
        for (ctx, query) in self.all_queries() {
            let label = query
                .name
                .clone()
                .unwrap_or_else(|| format!("in context {}", ctx.name));
            validate_query(query, &label, &seen)?;
        }
        Ok(())
    }
}

/// Validates one query against the set of defined context names.
pub(crate) fn validate_query(
    query: &EventQuery,
    label: &str,
    known_contexts: &std::collections::BTreeSet<&str>,
) -> Result<(), QueryError> {
    match (&query.action, &query.derive) {
        (Some(_), None) | (None, Some(_)) => {}
        _ => return Err(QueryError::MalformedQuery(label.to_string())),
    }
    if let Some(action) = &query.action {
        if !known_contexts.contains(action.target()) {
            return Err(QueryError::UnknownContext(action.target().to_string()));
        }
        if matches!(action, ContextAction::Switch(_)) && query.contexts.is_empty() {
            return Err(QueryError::SwitchOutsideContext(label.to_string()));
        }
    }
    for ctx in &query.contexts {
        if !known_contexts.contains(ctx.as_str()) {
            return Err(QueryError::UnknownContext(ctx.clone()));
        }
    }
    if query.pattern.all_negated() {
        return Err(QueryError::UnmatchablePattern(label.to_string()));
    }

    let vars = query.pattern.variables();
    let check_expr = |expr: &Expr| -> Result<(), QueryError> {
        for referenced in expr.referenced_vars() {
            match referenced {
                Some(v) => {
                    if !vars.iter().any(|(name, _)| *name == v) {
                        return Err(QueryError::UnboundVariable {
                            var: v.to_string(),
                            query: label.to_string(),
                        });
                    }
                }
                None => {
                    // A bare attribute needs a unique positive variable
                    // to resolve against.
                    let positive: Vec<_> = vars.iter().filter(|(_, neg)| !neg).collect();
                    if positive.len() != 1 {
                        return Err(QueryError::AmbiguousBareAttr {
                            attr: bare_attr_name(expr).unwrap_or_default(),
                            query: label.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    };
    if let Some(w) = &query.where_clause {
        check_expr(w)?;
    }
    if let Some(d) = &query.derive {
        for arg in &d.args {
            check_expr(arg)?;
        }
    }
    let _ = Pattern::elements; // silence unused-import lints in some cfgs
    Ok(())
}

fn bare_attr_name(expr: &Expr) -> Option<String> {
    match expr {
        Expr::Attr { var: None, attr } => Some(attr.clone()),
        Expr::Binary { lhs, rhs, .. } => bare_attr_name(lhs).or_else(|| bare_attr_name(rhs)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ContextAction, DeriveClause, Expr, Pattern};

    fn processing_query(ty: &str, ctx: &str) -> EventQuery {
        EventQuery {
            name: None,
            action: None,
            derive: Some(DeriveClause {
                event_type: format!("Out{ty}"),
                args: vec![Expr::attr("x", "v")],
            }),
            pattern: Pattern::event(ty, "x"),
            where_clause: None,
            within: None,
            contexts: vec![ctx.to_string()],
        }
    }

    fn deriving_query(action: ContextAction, ctx: &str) -> EventQuery {
        EventQuery {
            name: None,
            action: Some(action),
            derive: None,
            pattern: Pattern::event("Trigger", "t"),
            where_clause: None,
            within: None,
            contexts: vec![ctx.to_string()],
        }
    }

    fn two_context_model() -> CaesarModel {
        let mut clear = ContextDef::new("clear");
        clear.deriving.push(deriving_query(
            ContextAction::Switch("busy".into()),
            "clear",
        ));
        let mut busy = ContextDef::new("busy");
        busy.deriving.push(deriving_query(
            ContextAction::Switch("clear".into()),
            "busy",
        ));
        busy.processing.push(processing_query("Load", "busy"));
        CaesarModel::new("m", "clear", vec![clear, busy]).unwrap()
    }

    #[test]
    fn valid_model_builds() {
        let m = two_context_model();
        assert_eq!(m.query_count(), 3);
        assert_eq!(m.context_names_sorted(), vec!["busy", "clear"]);
        assert_eq!(m.context("busy").unwrap().workload_size(), 2);
    }

    #[test]
    fn default_must_exist() {
        let err = CaesarModel::new("m", "ghost", vec![ContextDef::new("a")]).unwrap_err();
        assert!(matches!(err, QueryError::MissingDefaultContext(_)));
    }

    #[test]
    fn duplicate_context_rejected() {
        let err = CaesarModel::new("m", "a", vec![ContextDef::new("a"), ContextDef::new("a")])
            .unwrap_err();
        assert!(matches!(err, QueryError::DuplicateContext(_)));
    }

    #[test]
    fn more_than_64_contexts_rejected() {
        let contexts: Vec<_> = (0..65).map(|i| ContextDef::new(format!("c{i}"))).collect();
        let err = CaesarModel::new("m", "c0", contexts).unwrap_err();
        assert!(matches!(err, QueryError::TooManyContexts(65)));
    }

    #[test]
    fn action_targeting_unknown_context_rejected() {
        let mut a = ContextDef::new("a");
        a.deriving
            .push(deriving_query(ContextAction::Initiate("ghost".into()), "a"));
        let err = CaesarModel::new("m", "a", vec![a]).unwrap_err();
        assert!(matches!(err, QueryError::UnknownContext(_)));
    }

    #[test]
    fn query_with_both_action_and_derive_rejected() {
        let mut q = processing_query("X", "a");
        q.action = Some(ContextAction::Initiate("a".into()));
        let mut a = ContextDef::new("a");
        a.processing.push(q);
        let err = CaesarModel::new("m", "a", vec![a]).unwrap_err();
        assert!(matches!(err, QueryError::MalformedQuery(_)));
    }

    #[test]
    fn fully_negated_pattern_rejected() {
        let mut q = processing_query("X", "a");
        q.pattern = Pattern::Seq(vec![Pattern::not_event("X", "x")]);
        let mut a = ContextDef::new("a");
        a.processing.push(q);
        let err = CaesarModel::new("m", "a", vec![a]).unwrap_err();
        assert!(matches!(err, QueryError::UnmatchablePattern(_)));
    }

    #[test]
    fn unbound_variable_rejected() {
        let mut q = processing_query("X", "a");
        q.where_clause = Some(Expr::bin(
            crate::ast::BinOp::Gt,
            Expr::attr("ghost", "v"),
            Expr::int(0),
        ));
        let mut a = ContextDef::new("a");
        a.processing.push(q);
        let err = CaesarModel::new("m", "a", vec![a]).unwrap_err();
        assert!(matches!(err, QueryError::UnboundVariable { .. }));
    }

    #[test]
    fn ambiguous_bare_attr_rejected() {
        let mut q = processing_query("X", "a");
        q.pattern = Pattern::Seq(vec![Pattern::event("X", "x"), Pattern::event("Y", "y")]);
        q.where_clause = Some(Expr::bin(
            crate::ast::BinOp::Gt,
            Expr::bare("v"),
            Expr::int(0),
        ));
        let mut a = ContextDef::new("a");
        a.processing.push(q);
        let err = CaesarModel::new("m", "a", vec![a]).unwrap_err();
        assert!(matches!(err, QueryError::AmbiguousBareAttr { .. }));
    }

    #[test]
    fn bare_attr_with_unique_positive_var_is_fine() {
        let mut q = processing_query("X", "a");
        q.pattern = Pattern::Seq(vec![Pattern::not_event("X", "n"), Pattern::event("X", "x")]);
        q.where_clause = Some(Expr::bin(
            crate::ast::BinOp::Gt,
            Expr::bare("v"),
            Expr::int(0),
        ));
        let mut a = ContextDef::new("a");
        a.processing.push(q);
        assert!(CaesarModel::new("m", "a", vec![a]).is_ok());
    }

    #[test]
    fn switch_without_enclosing_context_rejected() {
        let mut q = deriving_query(ContextAction::Switch("a".into()), "a");
        q.contexts.clear();
        let mut a = ContextDef::new("a");
        a.deriving.push(q);
        let err = CaesarModel::new("m", "a", vec![a]).unwrap_err();
        assert!(matches!(err, QueryError::SwitchOutsideContext(_)));
    }
}
