//! Physical-activity health monitoring on the synthetic PAMAP2-like
//! data set: 14 subjects, contexts *rest* / *active* / *exercise*,
//! context-specific alerting.
//!
//! ```text
//! cargo run --release --example health_monitoring
//! ```

use caesar::pam::{generate, pam_model, pam_registry, PamConfig};
use caesar::prelude::*;

fn main() {
    let config = PamConfig {
        duration: 75 * 60, // the full 1h15 of PAMAP2
        ..Default::default()
    };
    let registry = pam_registry();
    let (events, schedules) = generate(&config, &registry);
    let exercise_windows: usize = schedules.iter().map(|s| s.exercise.len()).sum();
    println!(
        "stream: {} events, {} subjects, {} exercise windows",
        events.len(),
        config.subjects,
        exercise_windows
    );

    let mut system = Caesar::builder()
        .model(pam_model(2))
        .schema(
            "SensorReading",
            &[
                ("subject", AttrType::Int),
                ("sec", AttrType::Int),
                ("heart_rate", AttrType::Int),
                ("hand_acc", AttrType::Float),
                ("chest_acc", AttrType::Float),
            ],
        )
        .schema(
            "ActivityStarted",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        )
        .schema(
            "ActivityEnded",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        )
        .schema(
            "ExerciseStarted",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        )
        .schema(
            "ExerciseEnded",
            &[("subject", AttrType::Int), ("sec", AttrType::Int)],
        )
        .within(30)
        .build()
        .expect("PAM model builds");

    let report = system
        .run_stream(&mut VecStream::new(events))
        .expect("in-order stream");

    println!("--- outputs ---");
    for (ty, n) in &report.outputs_by_type {
        if !ty.starts_with("$match") {
            println!("{ty:32} {n}");
        }
    }
    println!(
        "suspended plan-batches: {} ({}% of routing decisions)",
        report.plans_suspended,
        (report.plans_suspended * 100) / (report.plans_fed + report.plans_suspended).max(1)
    );
    println!("max latency: {:.2} ms", report.max_latency_ns as f64 / 1e6);
}
