//! Property-based differential testing of the vectorized predicate
//! kernels against the row interpreter.
//!
//! Three layers, all adversarial:
//!
//! 1. [`BoolKernel`] vs [`CompiledExpr::matches`] on random columns and
//!    random predicate trees, including the value-error frontier
//!    (integer overflow, division by zero, NaN ordering): whenever the
//!    kernel compiler covers an expression, survivors *and* error
//!    counts must match the interpreter exactly.
//! 2. [`FilterOp::accepts_batch`] vs per-event [`FilterOp::accepts`]
//!    on mixed/NULL-polluted columns, where kernels partially or fully
//!    fall back to the interpreter: survivors and the
//!    `evaluated`/`accepted` counters must agree (only `eval_errors`
//!    may differ, under documented conjunct reordering).
//! 3. Whole-engine runs with `vectorize` on vs off on random scripts:
//!    byte-identical outputs and identical report counters.

use caesar::algebra::kernel::BoolKernel;
use caesar::algebra::ops::FilterOp;
use caesar::algebra::CompiledExpr;
use caesar::events::{ColumnarBatch, ColumnarView, Event, Interval, PartitionId, TypeId, Value};
use caesar::prelude::*;
use caesar::query::BinOp;
use caesar::recovery::{outputs_equivalent, reports_equivalent};
use proptest::prelude::*;
use std::sync::Arc;

fn ev(attrs: Vec<Value>) -> Event {
    Event::complex(
        TypeId(1),
        Interval::point(1),
        PartitionId(0),
        Arc::from(attrs),
    )
}

fn attr(attr: u16) -> CompiledExpr {
    CompiledExpr::Attr { slot: 0, attr }
}

fn bin(op: BinOp, lhs: CompiledExpr, rhs: CompiledExpr) -> CompiledExpr {
    CompiledExpr::Bin {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// Well-typed rows over the fixed 5-column layout
/// (Int, Int, Float, Bool, Str), biased towards the error frontier:
/// extreme integers (overflow), zero divisors, NaN/∞ floats.
fn arb_row() -> impl Strategy<Value = Vec<Value>> {
    (
        prop_oneof![
            -4i64..5,
            -4i64..5,
            -4i64..5,
            any::<i64>(),
            Just(i64::MAX),
            Just(i64::MIN),
        ],
        -2i64..3,
        prop_oneof![
            -4.0f64..4.0,
            -4.0f64..4.0,
            -4.0f64..4.0,
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(-0.0f64),
        ],
        any::<bool>(),
        prop_oneof![Just("red"), Just("green"), Just("blue")],
    )
        .prop_map(|(a, b, f, flag, s)| {
            vec![
                Value::Int(a),
                Value::Int(b),
                Value::Float(f),
                Value::Bool(flag),
                Value::from(s),
            ]
        })
}

/// Rows where any cell may also be Null or of a surprise type, so the
/// affected columns degrade to `Opaque` and kernels must fall back.
fn arb_wild_row() -> impl Strategy<Value = Vec<Value>> {
    let wild = |base: BoxedStrategy<Value>| {
        prop_oneof![
            base.clone(),
            base.clone(),
            base.clone(),
            base,
            Just(Value::Null),
            Just(Value::Float(0.5)),
        ]
    };
    (
        wild((-3i64..4).prop_map(Value::Int).boxed()),
        wild((-2i64..3).prop_map(Value::Int).boxed()),
        wild((-2.0f64..2.0).prop_map(Value::Float).boxed()),
        wild(any::<bool>().prop_map(Value::Bool).boxed()),
        wild(
            prop_oneof![Just("red"), Just("blue")]
                .prop_map(Value::from)
                .boxed(),
        ),
    )
        .prop_map(|(a, b, c, d, e)| vec![a, b, c, d, e])
}

fn arb_cmp() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Integer-valued operand trees over the two int columns, with
/// checked arithmetic nodes that can overflow or divide by zero.
fn arb_int_operand() -> impl Strategy<Value = CompiledExpr> {
    let leaf = prop_oneof![
        Just(attr(0)),
        Just(attr(0)),
        Just(attr(1)),
        Just(attr(1)),
        (-3i64..4).prop_map(|k| CompiledExpr::Const(Value::Int(k))),
        Just(CompiledExpr::Const(Value::Int(i64::MAX))),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Div),
            ],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, lhs, rhs)| bin(op, lhs, rhs))
    })
}

/// Random predicate trees mixing every kernel family: int compares
/// (column/column, column/expression), float compares against
/// constants (NaN included), bool columns, string equality, and
/// And/Or combinators above them.
fn arb_predicate() -> impl Strategy<Value = CompiledExpr> {
    let int_cmp = (arb_cmp(), arb_int_operand(), arb_int_operand())
        .prop_map(|(op, lhs, rhs)| bin(op, lhs, rhs))
        .boxed();
    let leaf = prop_oneof![
        int_cmp.clone(),
        int_cmp.clone(),
        int_cmp,
        (
            arb_cmp(),
            prop_oneof![-2.0f64..2.0, -2.0f64..2.0, -2.0f64..2.0, Just(f64::NAN)],
        )
            .prop_map(|(op, k)| bin(op, attr(2), CompiledExpr::Const(Value::Float(k)))),
        (arb_cmp(), any::<bool>()).prop_map(|(op, k)| bin(
            op,
            attr(3),
            CompiledExpr::Const(Value::Bool(k))
        )),
        (
            prop_oneof![Just(BinOp::Eq), Just(BinOp::Ne)],
            prop_oneof![Just("red"), Just("violet")],
        )
            .prop_map(|(op, s)| bin(op, attr(4), CompiledExpr::Const(Value::from(s)))),
        Just(attr(3)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (
            prop_oneof![Just(BinOp::And), Just(BinOp::Or)],
            inner.clone(),
            inner,
        )
            .prop_map(|(op, lhs, rhs)| bin(op, lhs, rhs))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Whenever the kernel compiler covers a predicate, the kernel's
    /// survivors and its error count are exactly the interpreter's.
    #[test]
    fn kernel_matches_interpreter(
        rows in prop::collection::vec(arb_row(), 1..40),
        expr in arb_predicate(),
    ) {
        let events: Vec<Event> = rows.into_iter().map(ev).collect();
        let view = ColumnarView::build(&events, TypeId(1));
        if let Some(kernel) = BoolKernel::compile(&expr, &view.kinds()) {
            let mut sel: Vec<u32> = (0..events.len() as u32).collect();
            let mut errors = 0u64;
            kernel.filter(&view, &mut sel, &mut errors);
            let mut interp_errors = 0u64;
            let expected: Vec<u32> = (0..events.len())
                .filter(|&i| expr.matches(&[&events[i]], &mut interp_errors))
                .map(|i| i as u32)
                .collect();
            prop_assert_eq!(&sel, &expected, "survivors diverge for {:?}", expr);
            prop_assert_eq!(errors, interp_errors, "error counts diverge for {:?}", expr);
        }
    }

    /// Kernels must also agree when started from a *partial* selection
    /// (the mid-chain case: an upstream operator already dropped rows).
    #[test]
    fn kernel_matches_interpreter_on_partial_selection(
        rows in prop::collection::vec(arb_row(), 2..40),
        expr in arb_predicate(),
        keep in prop::collection::vec(any::<bool>(), 2..40),
    ) {
        let events: Vec<Event> = rows.into_iter().map(ev).collect();
        let view = ColumnarView::build(&events, TypeId(1));
        if let Some(kernel) = BoolKernel::compile(&expr, &view.kinds()) {
            let start: Vec<u32> = (0..events.len())
                .filter(|&i| *keep.get(i).unwrap_or(&false))
                .map(|i| i as u32)
                .collect();
            let mut sel = start.clone();
            let mut errors = 0u64;
            kernel.filter(&view, &mut sel, &mut errors);
            let mut interp_errors = 0u64;
            let expected: Vec<u32> = start
                .iter()
                .copied()
                .filter(|&i| expr.matches(&[&events[i as usize]], &mut interp_errors))
                .collect();
            prop_assert_eq!(&sel, &expected, "survivors diverge for {:?}", expr);
            prop_assert_eq!(errors, interp_errors, "error counts diverge for {:?}", expr);
        }
    }

    /// `FilterOp::accepts_batch` on NULL-polluted, mixed-type columns
    /// (kernels degrade per conjunct to the interpreter fallback) must
    /// keep exactly the per-event survivors and the same
    /// `evaluated`/`accepted` counters. `eval_errors` is deliberately
    /// not compared: conjunct reordering may change which predicate
    /// sees a row first (documented batch-path caveat).
    #[test]
    fn filter_op_batch_matches_per_event(
        rows in prop::collection::vec(arb_wild_row(), 1..30),
        preds in prop::collection::vec(arb_predicate(), 1..3),
    ) {
        let events: Vec<Event> = rows.into_iter().map(ev).collect();
        let mut per_event = FilterOp::new(preds.clone());
        let expected: Vec<u32> = (0..events.len())
            .filter(|&i| per_event.accepts(&events[i]))
            .map(|i| i as u32)
            .collect();
        for vectorize in [true, false] {
            let mut batched = FilterOp::new(preds.clone());
            let mut cols = ColumnarBatch::new(&events, vectorize);
            let mut sel: Vec<u32> = (0..events.len() as u32).collect();
            batched.accepts_batch(&mut cols, Some(TypeId(1)), &mut sel);
            prop_assert_eq!(&sel, &expected, "survivors diverge (vectorize={})", vectorize);
            prop_assert_eq!(batched.evaluated, per_event.evaluated);
            prop_assert_eq!(batched.accepted, per_event.accepted);
        }
    }
}

// ---------------------------------------------------------------------
// Whole-engine differential: vectorize on vs off on random scripts.
// ---------------------------------------------------------------------

/// (kind, payload) scripts as in `batch_properties`: kind 0 = reading,
/// 1 = enter busy, 2 = leave busy; payload drives values and (possibly
/// zero) time increments so duplicate-timestamp runs are common.
fn arb_script() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..=2, 0u64..100), 1..60)
}

fn build(batch: BatchPolicy, vectorize: bool) -> CaesarSystem {
    Caesar::builder()
        .schema("Reading", &[("v", AttrType::Int), ("sec", AttrType::Int)])
        .schema("Enter", &[("sec", AttrType::Int)])
        .schema("Leave", &[("sec", AttrType::Int)])
        .within(60)
        .model_text(
            r#"
            MODEL m DEFAULT idle
            CONTEXT idle {
                SWITCH CONTEXT busy PATTERN Enter
            }
            CONTEXT busy {
                SWITCH CONTEXT idle PATTERN Leave
                DERIVE Hot(r.v, r.sec)
                    PATTERN Reading r
                    WHERE r.v + 1 > 2 AND r.sec > 0
                DERIVE Pair(a.v, b.v, b.sec)
                    PATTERN SEQ(Reading a, Reading b)
                    WHERE a.v = b.v
            }
        "#,
        )
        .engine_config(
            EngineConfig::builder()
                .collect_outputs(true)
                .batch(batch)
                .vectorize(vectorize)
                .build(),
        )
        .build()
        .unwrap()
}

fn script_to_events(sys: &CaesarSystem, script: &[(u8, u64)]) -> Vec<Event> {
    let mut t: Time = 1;
    let mut events = Vec::with_capacity(script.len());
    for (kind, payload) in script {
        t += payload % 3;
        let e = match kind {
            0 => sys
                .event("Reading", t)
                .unwrap()
                .attr("v", (*payload % 4) as i64)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap(),
            1 => sys
                .event("Enter", t)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap(),
            _ => sys
                .event("Leave", t)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap(),
        };
        events.push(e);
    }
    events
}

fn run_stream_with(
    batch: BatchPolicy,
    vectorize: bool,
    events: &[Event],
) -> (RunReport, Vec<Event>) {
    let mut sys = build(batch, vectorize);
    let report = sys
        .run_stream(&mut VecStream::new(events.to_vec()))
        .unwrap();
    let outputs = std::mem::take(&mut sys.engine.collected_outputs);
    (report, outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Vectorized and interpreter batch paths produce byte-identical
    /// outputs and identical counters — against each other and against
    /// the per-event baseline.
    #[test]
    fn vectorize_switch_is_invariant(script in arb_script()) {
        let probe = build(BatchPolicy::per_event(), true);
        let events = script_to_events(&probe, &script);
        let baseline = run_stream_with(BatchPolicy::per_event(), true, &events);
        // min_events: 1 keeps even tiny transactions on the batch path
        // so the vectorize switch is actually exercised.
        let eager = BatchPolicy {
            min_events: 1,
            ..BatchPolicy::default()
        };
        for vectorize in [true, false] {
            let candidate = run_stream_with(eager, vectorize, &events);
            prop_assert!(
                outputs_equivalent(&baseline.1, &candidate.1),
                "outputs diverged (vectorize={vectorize}): {} vs {}",
                baseline.1.len(),
                candidate.1.len()
            );
            prop_assert!(
                reports_equivalent(&baseline.0, &candidate.0),
                "counters diverged (vectorize={vectorize})"
            );
        }
    }
}
