//! Per-partition program instantiation.
//!
//! Context state is partition-scoped (one context bit vector per road
//! segment, §6.2), and so is all pattern state: a sequence must not mix
//! events of different road segments. The engine therefore clones a
//! [`ProgramTemplate`] into per-partition [`PartitionPrograms`] lazily.
//!
//! The template construction also realizes two execution-strategy
//! decisions:
//!
//! * **Workload sharing** (§5.3): structurally identical queries keep a
//!   single *representative* plan whose context window admits the union
//!   of all member contexts (the grouped windows of Listing 1); the
//!   other members are dropped and accounted as fan-out.
//! * **Context-independent baseline** (§7, state of the art \[34, 5\]):
//!   every plan stays active all the time, and every processing query
//!   carries private clones of its context's deriving queries — the
//!   re-derivation work a context-unaware engine performs per query.

use caesar_algebra::context_table::{ContextTable, Transition};
use caesar_algebra::ops::{ChainScratch, Op};
use caesar_algebra::plan::{CombinedPlan, PlanOutput, QueryPlan};
use caesar_events::{ColumnarBatch, Event, PartitionId, Time};
use caesar_optimizer::mqo::SharedWorkload;
use caesar_query::ast::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether the engine runs context-aware or as the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Mode {
    /// CAESAR: suspension by context, derivation shared per context.
    #[default]
    ContextAware,
    /// Baseline: all queries always active; each processing query
    /// re-derives its context privately.
    ContextIndependent,
}

/// The blueprint cloned into each partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgramTemplate {
    /// Context-deriving plans (flattened across contexts).
    pub deriving: Vec<QueryPlan>,
    /// Per-context combined plans of the processing queries.
    pub processing: Vec<CombinedPlan>,
    /// Fan-out per representative query id (members sharing its
    /// execution, including itself).
    pub fanout: BTreeMap<QueryId, usize>,
    /// Redundant deriving clones of the baseline (empty in CAESAR mode):
    /// one clone of each deriving plan per processing query of its
    /// context, with the transition operators stripped.
    pub redundant: Vec<QueryPlan>,
    /// Execution mode.
    pub mode: Mode,
}

impl ProgramTemplate {
    /// Builds a template from translated combined plans.
    ///
    /// `sharing` (from the optimizer) lists the groups whose members
    /// execute once; pass an empty slice to disable sharing.
    #[must_use]
    pub fn build(combined: Vec<CombinedPlan>, sharing: &[SharedWorkload], mode: Mode) -> Self {
        Self::build_with(combined, sharing, mode, true, false)
    }

    /// [`ProgramTemplate::build`] with control over baseline push-down
    /// and pattern-prefix sharing:
    /// * `baseline_pushdown = false` leaves context windows wherever the
    ///   plans put them, modelling a literal SASE-style busy-waiting
    ///   engine (see `EngineConfig::baseline_pushdown`);
    /// * `share_prefixes = true` installs [`shared_prefix_groups`] on
    ///   each processing combined plan (context-aware mode only — the
    ///   baseline re-derivation clones would not share state anyway).
    ///
    /// [`shared_prefix_groups`]: caesar_optimizer::shared_prefix_groups
    #[must_use]
    pub fn build_with(
        combined: Vec<CombinedPlan>,
        sharing: &[SharedWorkload],
        mode: Mode,
        baseline_pushdown: bool,
        share_prefixes: bool,
    ) -> Self {
        // Which queries are dropped in favour of a representative, and
        // which extra context bits each representative gains.
        let mut drop: BTreeMap<QueryId, QueryId> = BTreeMap::new();
        let mut fanout: BTreeMap<QueryId, usize> = BTreeMap::new();
        for group in sharing {
            if group.members.len() > 1 {
                fanout.insert(group.representative, group.members.len());
                for &m in &group.members {
                    if m != group.representative {
                        drop.insert(m, group.representative);
                    }
                }
            }
        }
        // Context bit of each dropped member, keyed by representative.
        let mut extra_bits: BTreeMap<QueryId, Vec<u8>> = BTreeMap::new();
        for c in &combined {
            for p in &c.plans {
                if let Some(&rep) = drop.get(&p.query_id) {
                    extra_bits.entry(rep).or_default().push(p.context_bit);
                }
            }
        }

        let mut deriving = Vec::new();
        let mut processing = Vec::new();
        for c in combined {
            let mut kept_processing = Vec::new();
            for mut p in c.plans {
                if drop.contains_key(&p.query_id) {
                    continue; // executed by its representative
                }
                if let Some(bits) = extra_bits.get(&p.query_id) {
                    widen_context_window(&mut p, bits);
                }
                // Pattern state is scoped to the context window. In
                // context-aware mode the batch-level router provides that
                // scoping even for unoptimized chains; the baseline has
                // no router, so the context window MUST sit below the
                // pattern — this is a semantic requirement here, not an
                // optimization.
                if mode == Mode::ContextIndependent && baseline_pushdown {
                    caesar_optimizer::pushdown::push_down_context_window(&mut p);
                }
                if p.is_deriving {
                    deriving.push(p);
                } else {
                    kept_processing.push(p);
                }
            }
            if !kept_processing.is_empty() {
                let mut cp = CombinedPlan::new(c.context.clone(), c.context_bit, kept_processing);
                if share_prefixes && mode == Mode::ContextAware {
                    let groups = caesar_optimizer::shared_prefix_groups(&cp);
                    if !groups.is_empty() {
                        cp.install_shared_prefixes(groups);
                    }
                }
                processing.push(cp);
            }
        }

        // Baseline re-derivation clones: per processing query, each
        // deriving plan of the same context, transitions stripped (the
        // canonical deriving plans still maintain the real table).
        let mut redundant = Vec::new();
        if mode == Mode::ContextIndependent {
            for c in &processing {
                let context_derivers: Vec<&QueryPlan> =
                    deriving.iter().filter(|d| d.context == c.context).collect();
                for _query in &c.plans {
                    for d in &context_derivers {
                        let mut clone = (*d).clone();
                        clone
                            .ops
                            .retain(|op| !matches!(op, Op::ContextInit(_) | Op::ContextTerm(_)));
                        // The baseline evaluates the derivation condition
                        // itself regardless of context state: drop the
                        // context window too.
                        clone.ops.retain(|op| !op.is_context_window());
                        redundant.push(clone);
                    }
                }
            }
        }

        Self {
            deriving,
            processing,
            fanout,
            redundant,
            mode,
        }
    }

    /// Total number of executing plans (deriving + processing).
    #[must_use]
    pub fn plan_count(&self) -> usize {
        self.deriving.len() + self.processing.iter().map(CombinedPlan::len).sum::<usize>()
    }
}

fn widen_context_window(plan: &mut QueryPlan, extra: &[u8]) {
    for op in &mut plan.ops {
        if let Op::ContextWindow(cw) = op {
            for &b in extra {
                if b != cw.context_bit && !cw.extra_bits.contains(&b) {
                    cw.extra_bits.push(b);
                }
            }
        }
    }
}

/// The executing program of one stream partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionPrograms {
    /// Deriving plans (run first in every transaction).
    pub deriving: Vec<QueryPlan>,
    /// Processing combined plans, one per context.
    pub processing: Vec<CombinedPlan>,
    /// Baseline re-derivation clones.
    pub redundant: Vec<QueryPlan>,
    /// Derived events awaiting the next transaction's derivation pass
    /// (deriving queries over derived event types see producer outputs
    /// one transaction later, which keeps transactions acyclic).
    feedback: Vec<Event>,
    /// Cached router gates: per processing plan, the union of its
    /// members' context window bits (computed once — the router's
    /// per-batch lookup is then O(active bits)).
    gates: Vec<Vec<u8>>,
    mode: Mode,
    /// Reusable output sink of the run methods (always empty between
    /// calls; excluded from snapshots).
    #[serde(skip)]
    sink: PlanOutput,
    /// Reusable chain-traversal buffers shared by the deriving and
    /// redundant plans (the combined plans carry their own).
    #[serde(skip)]
    scratch: ChainScratch,
}

impl PartitionPrograms {
    /// Instantiates the template for one partition.
    #[must_use]
    pub fn from_template(template: &ProgramTemplate) -> Self {
        let gates = template
            .processing
            .iter()
            .map(|c| {
                let mut bits: Vec<u8> = c
                    .plans
                    .iter()
                    .flat_map(|p| {
                        p.ops.iter().filter_map(|op| match op {
                            Op::ContextWindow(cw) => Some(cw.all_bits()),
                            _ => None,
                        })
                    })
                    .flatten()
                    .collect();
                bits.sort_unstable();
                bits.dedup();
                bits
            })
            .collect();
        Self {
            deriving: template.deriving.clone(),
            processing: template.processing.clone(),
            redundant: template.redundant.clone(),
            feedback: Vec::new(),
            gates,
            mode: template.mode,
            sink: PlanOutput::default(),
            scratch: ChainScratch::default(),
        }
    }

    /// Phase 1 of a transaction: context derivation. All input events run
    /// through the deriving plans of currently active contexts (their
    /// pushed-down context windows gate inactive ones); returns the
    /// requested transitions in plan/chain order.
    pub fn run_derivation(
        &mut self,
        events: &[Event],
        table: &ContextTable,
        _out: &mut PlanOutput,
    ) -> Vec<Transition> {
        let Self {
            deriving,
            feedback,
            sink,
            ..
        } = self;
        sink.clear();
        let pending: Vec<Event> = std::mem::take(feedback);
        for plan in deriving.iter_mut() {
            for ev in pending.iter().chain(events.iter()) {
                if plan.consumes(ev.type_id) {
                    plan.process(ev, table, sink);
                }
            }
        }
        // Deriving queries have no DERIVE clause: their chain output is
        // just the pass-through trigger match, not an output-stream
        // event — only the transitions matter.
        std::mem::take(&mut sink.transitions)
    }

    /// Batched [`run_derivation`](Self::run_derivation): the
    /// transaction's events go through each deriving plan's batch entry
    /// point, amortizing the context-window probe and reusing the
    /// transaction's columnar views. Feedback events carry earlier
    /// timestamps than the transaction, so they stay per-event and run
    /// ahead of the batch — the same plan-major order as the per-event
    /// path, hence identical transitions.
    pub fn run_derivation_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
    ) -> Vec<Transition> {
        let Self {
            deriving,
            feedback,
            sink,
            scratch,
            ..
        } = self;
        sink.clear();
        let pending: Vec<Event> = std::mem::take(feedback);
        for plan in deriving.iter_mut() {
            for ev in &pending {
                if plan.consumes(ev.type_id) {
                    plan.process(ev, table, sink);
                }
            }
            plan.process_batch(cols, table, sink, scratch);
        }
        std::mem::take(&mut sink.transitions)
    }

    /// The baseline's redundant derivation work: every processing query
    /// privately re-evaluates its context's deriving conditions on every
    /// event. Outputs and transitions are discarded — only the canonical
    /// derivation updates the table.
    pub fn run_redundant_derivation(&mut self, events: &[Event], table: &ContextTable) {
        let Self {
            redundant, sink, ..
        } = self;
        sink.clear();
        for plan in redundant.iter_mut() {
            for ev in events {
                if plan.consumes(ev.type_id) {
                    plan.process(ev, table, sink);
                }
            }
            sink.clear();
        }
    }

    /// Batched [`run_redundant_derivation`](Self::run_redundant_derivation).
    pub fn run_redundant_derivation_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
    ) {
        let Self {
            redundant,
            sink,
            scratch,
            ..
        } = self;
        sink.clear();
        for plan in redundant.iter_mut() {
            plan.process_batch(cols, table, sink, scratch);
            sink.clear();
        }
    }

    /// Phase 2 of a transaction: context processing. In context-aware
    /// mode the router has already selected active plans (`active` holds
    /// indices into `processing`); in the baseline every plan runs.
    /// Derived events are also queued as feedback for the next
    /// derivation pass.
    pub fn run_processing(
        &mut self,
        events: &[Event],
        table: &ContextTable,
        active: &[usize],
        out: &mut PlanOutput,
    ) {
        let Self {
            processing,
            feedback,
            sink,
            ..
        } = self;
        sink.clear();
        for &idx in active {
            let plan = &mut processing[idx];
            for ev in events {
                if plan.consumes_external(ev.type_id) {
                    plan.process(ev, table, sink);
                }
            }
        }
        feedback.extend(sink.events.iter().cloned());
        out.events.append(&mut sink.events);
        out.transitions.append(&mut sink.transitions);
    }

    /// Batched [`run_processing`](Self::run_processing): one batch call
    /// per active combined plan. The external-consumption filter and the
    /// derived-event feedback loop live inside
    /// [`CombinedPlan::process_batch`], which iterates plan-major like
    /// the per-event path, so outputs come out in the same order.
    pub fn run_processing_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
        active: &[usize],
        out: &mut PlanOutput,
    ) {
        let Self {
            processing,
            feedback,
            sink,
            ..
        } = self;
        sink.clear();
        for &idx in active {
            processing[idx].process_batch(cols, table, sink);
        }
        feedback.extend(sink.events.iter().cloned());
        out.events.append(&mut sink.events);
        out.transitions.append(&mut sink.transitions);
    }

    /// Context-history maintenance after a window of `bit` terminated in
    /// this partition (§6.2 "Context Processing"):
    /// * plans scoped to `bit` alone discard their partial matches;
    /// * shared plans spanning other still-open member windows only
    ///   expire partials that started before every still-open member
    ///   window began (Figure 7's grouped-window expiry).
    pub fn on_context_terminated(&mut self, bit: u8, partition: PartitionId, table: &ContextTable) {
        fn reset_or_expire(
            plan: &mut QueryPlan,
            bit: u8,
            pc: &caesar_algebra::context_table::PartitionContexts,
        ) {
            let Some(Op::ContextWindow(cw)) = plan.ops.iter().find(|o| o.is_context_window())
            else {
                return;
            };
            let bits = cw.all_bits();
            if !bits.contains(&bit) {
                return;
            }
            // Member windows still open (other than the terminated one).
            let still_open_starts: Vec<Time> = bits
                .iter()
                .filter(|&&b| b != bit && pc.holds(b))
                .filter_map(|&b| pc.open_span(b).map(|w| w.initiated))
                .collect();
            match still_open_starts.iter().min() {
                None => plan.reset_state(),
                Some(&earliest) => plan.expire_history(earliest),
            }
        }
        let pc = table.partition(partition);
        for c in &mut self.processing {
            // Gated shared-prefix groups are scoped to exactly the
            // combined plan's context window, like their members.
            if c.context_bit == bit {
                c.reset_shared_gated();
            }
            for plan in &mut c.plans {
                reset_or_expire(plan, bit, &pc);
            }
        }
        for plan in &mut self.deriving {
            reset_or_expire(plan, bit, &pc);
        }
    }

    /// Advances the watermark on every plan (pruning partial state and
    /// flushing matured trailing-negation matches through the chains).
    pub fn advance_time(&mut self, watermark: Time, table: &ContextTable, out: &mut PlanOutput) {
        for plan in &mut self.deriving {
            // Transitions matter; pass-through matches are discarded
            // (see `run_derivation`).
            let mut sink = PlanOutput::default();
            plan.advance_time(watermark, table, &mut sink);
            out.transitions.append(&mut sink.transitions);
        }
        for combined in &mut self.processing {
            combined.advance_time(watermark, table, out);
        }
        for plan in &mut self.redundant {
            let mut discard = PlanOutput::default();
            plan.advance_time(watermark, table, &mut discard);
        }
    }

    /// Indices of the processing plans whose gate admits time `t` at
    /// `partition` — the context-aware router's batch-level selection.
    /// In baseline mode every plan is selected.
    #[must_use]
    pub fn active_processing(
        &self,
        partition: PartitionId,
        t: Time,
        table: &ContextTable,
    ) -> Vec<usize> {
        if self.mode == Mode::ContextIndependent {
            return (0..self.processing.len()).collect();
        }
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, bits)| bits.iter().any(|&b| table.admits(partition, b, t)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Live partial matches across all plans (memory metric).
    #[must_use]
    pub fn live_partials(&self) -> usize {
        self.deriving
            .iter()
            .map(QueryPlan::live_partials)
            .chain(
                self.processing
                    .iter()
                    .flat_map(|c| c.plans.iter().map(QueryPlan::live_partials)),
            )
            .sum()
    }

    /// Partial-pool efficacy across all plans (including the baseline's
    /// redundant clones): `(slots reused, peak live partials)`.
    #[must_use]
    pub fn pool_stats(&self) -> (u64, usize) {
        self.deriving
            .iter()
            .chain(self.processing.iter().flat_map(|c| c.plans.iter()))
            .chain(self.redundant.iter())
            .map(QueryPlan::pool_stats)
            .fold((0, 0), |(r, p), (pr, pp)| (r + pr, p + pp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, Schema, SchemaRegistry, Value};
    use caesar_optimizer::{Optimizer, OptimizerConfig};
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    fn setup(share: bool, mode: Mode) -> (ProgramTemplate, SchemaRegistry, Vec<String>, u8) {
        let model = parse_model(
            r#"
            MODEL m DEFAULT idle
            CONTEXT idle {
                SWITCH CONTEXT busy PATTERN Spike
                DERIVE Ping(r.v) PATTERN Reading r CONTEXT idle, busy
            }
            CONTEXT busy {
                SWITCH CONTEXT idle PATTERN Lull
                DERIVE Heavy(r.v) PATTERN Reading r WHERE r.v > 10
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("Reading", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Spike", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Lull", &[("v", AttrType::Int)]))
            .unwrap();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        let names = t.context_names.clone();
        let default_bit = t.default_bit;
        let cfg = OptimizerConfig {
            share_workloads: share,
            ..OptimizerConfig::default()
        };
        let program = Optimizer::new(cfg, Default::default()).optimize(t, &reg);
        let sharing = program.sharing.clone();
        let template = ProgramTemplate::build(program.translation.combined, &sharing, mode);
        (template, reg, names, default_bit)
    }

    fn reading(reg: &SchemaRegistry, t: Time, v: i64) -> Event {
        Event::simple(
            reg.lookup("Reading").unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(v)],
        )
    }

    #[test]
    fn template_splits_deriving_and_processing() {
        let (template, ..) = setup(false, Mode::ContextAware);
        assert_eq!(template.deriving.len(), 2, "two switch queries");
        // Processing: Ping in idle, Ping in busy, Heavy in busy.
        let total: usize = template.processing.iter().map(CombinedPlan::len).sum();
        assert_eq!(total, 3);
        assert!(template.redundant.is_empty());
    }

    #[test]
    fn sharing_drops_duplicate_instances_and_widens_gate() {
        let (template, ..) = setup(true, Mode::ContextAware);
        let total: usize = template.processing.iter().map(CombinedPlan::len).sum();
        assert_eq!(total, 2, "Ping executes once for both contexts");
        // The representative's context window covers both contexts.
        let rep = template
            .processing
            .iter()
            .flat_map(|c| c.plans.iter())
            .find(|p| {
                p.source
                    .query
                    .derive
                    .as_ref()
                    .is_some_and(|d| d.event_type == "Ping")
            })
            .unwrap();
        let cw = rep
            .ops
            .iter()
            .find_map(|o| match o {
                Op::ContextWindow(cw) => Some(cw),
                _ => None,
            })
            .unwrap();
        assert_eq!(cw.all_bits().len(), 2);
        assert_eq!(template.fanout.len(), 1);
    }

    #[test]
    fn baseline_builds_redundant_derivers() {
        let (template, ..) = setup(false, Mode::ContextIndependent);
        // idle has 1 processing query × 1 deriver; busy has 2 × 1.
        assert_eq!(template.redundant.len(), 3);
        for r in &template.redundant {
            assert!(
                !r.ops
                    .iter()
                    .any(|o| matches!(o, Op::ContextInit(_) | Op::ContextTerm(_))
                        || o.is_context_window()),
                "redundant clones must not mutate context state"
            );
        }
    }

    #[test]
    fn router_selects_only_active_contexts() {
        let (template, _reg, names, default_bit) = setup(false, Mode::ContextAware);
        let programs = PartitionPrograms::from_template(&template);
        let table = ContextTable::new(names.len(), default_bit);
        let active = programs.active_processing(PartitionId(0), 5, &table);
        // Only the idle (default) context's combined plan is active.
        assert_eq!(active.len(), 1);
        assert_eq!(programs.processing[active[0]].context, "idle");
    }

    #[test]
    fn baseline_router_selects_everything() {
        let (template, _reg, names, default_bit) = setup(false, Mode::ContextIndependent);
        let programs = PartitionPrograms::from_template(&template);
        let table = ContextTable::new(names.len(), default_bit);
        let active = programs.active_processing(PartitionId(0), 5, &table);
        assert_eq!(active.len(), programs.processing.len());
    }

    #[test]
    fn derivation_produces_transitions() {
        let (template, reg, names, default_bit) = setup(false, Mode::ContextAware);
        let mut programs = PartitionPrograms::from_template(&template);
        let table = ContextTable::new(names.len(), default_bit);
        let spike = Event::simple(
            reg.lookup("Spike").unwrap(),
            10,
            PartitionId(0),
            vec![Value::Int(1)],
        );
        let mut out = PlanOutput::default();
        let transitions = programs.run_derivation(&[spike], &table, &mut out);
        assert_eq!(transitions.len(), 2, "switch = terminate + initiate");
    }

    #[test]
    fn processing_respects_active_selection() {
        let (template, reg, names, default_bit) = setup(false, Mode::ContextAware);
        let mut programs = PartitionPrograms::from_template(&template);
        let table = ContextTable::new(names.len(), default_bit);
        let mut out = PlanOutput::default();
        let active = programs.active_processing(PartitionId(0), 5, &table);
        programs.run_processing(&[reading(&reg, 5, 3)], &table, &active, &mut out);
        // Ping fires in idle; Heavy (busy) suspended.
        let ping = reg.lookup("Ping").unwrap();
        assert!(out.events.iter().all(|e| e.type_id == ping));
        assert_eq!(out.events.len(), 1);
    }

    #[test]
    fn context_termination_resets_plain_plans() {
        let (template, reg, names, default_bit) = setup(false, Mode::ContextAware);
        let mut programs = PartitionPrograms::from_template(&template);
        let mut table = ContextTable::new(names.len(), default_bit);
        let busy_bit = names.iter().position(|n| n == "busy").unwrap() as u8;
        table.partition_mut(PartitionId(0)).initiate(busy_bit, 0);
        // Feed an event so plans in busy could build state, then
        // terminate busy and confirm reset.
        let mut out = PlanOutput::default();
        let active = programs.active_processing(PartitionId(0), 5, &table);
        programs.run_processing(&[reading(&reg, 5, 50)], &table, &active, &mut out);
        table.partition_mut(PartitionId(0)).terminate(busy_bit, 6);
        programs.on_context_terminated(busy_bit, PartitionId(0), &table);
        assert_eq!(programs.live_partials(), 0);
    }
}
