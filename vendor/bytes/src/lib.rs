//! Offline shim for `bytes`.
//!
//! Implements the subset used by the event codec: `BytesMut` as a
//! growable write buffer with little-endian put methods, and `Bytes` as
//! a cheaply-cloneable read view with an advancing cursor. Backed by
//! `Vec<u8>`/`Arc<[u8]>` instead of the real crate's refcounted slabs —
//! same API, no zero-copy tricks.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read-cursor access: little-endian reads that advance the cursor.
/// Implemented by [`Bytes`]; import it (as the real crate requires) to
/// call the `get_*`/`remaining`/`advance` family.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Next `n` bytes as a slice (not advancing).
    fn peek_slice(&self, n: usize) -> &[u8];

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing.
    fn get_u8(&mut self) -> u8 {
        let v = self.peek_slice(1)[0];
        self.advance(1);
        v
    }

    /// Reads a `u16` little-endian, advancing.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.peek_slice(2).try_into().expect("peek_slice length"));
        self.advance(2);
        v
    }

    /// Reads a `u32` little-endian, advancing.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.peek_slice(4).try_into().expect("peek_slice length"));
        self.advance(4);
        v
    }

    /// Reads a `u64` little-endian, advancing.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.peek_slice(8).try_into().expect("peek_slice length"));
        self.advance(8);
        v
    }

    /// Reads an `i64` little-endian, advancing.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.peek_slice(8).try_into().expect("peek_slice length"));
        self.advance(8);
        v
    }

    /// Reads an `f64` from little-endian IEEE-754 bits, advancing.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies the next `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.peek_slice(dst.len()));
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn peek_slice(&self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "read past end of Bytes");
        &self.as_slice()[..n]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// Write-sink access: little-endian appends. Implemented by
/// [`BytesMut`]; import it to call the `put_*` family.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as little-endian IEEE-754 bits.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

/// Growable, contiguous write buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` reserved bytes.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    #[must_use]
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self { buf: src.to_vec() }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.buf.extend(iter);
    }
}

/// Immutable, cheaply-cloneable byte view with an advancing read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a view.
    #[must_use]
    pub fn from_static(src: &'static [u8]) -> Self {
        Self::copy_from_slice(src)
    }

    /// Copies a slice into a view.
    #[must_use]
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self::from(src.to_vec())
    }

    /// Remaining (unread) length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether all bytes were consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Remaining bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Splits off and returns the first `at` bytes.
    #[must_use]
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to past end of Bytes");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Returns a sub-view of the remaining bytes.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the remaining bytes into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        let end = buf.len();
        Self {
            data: buf.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Self::copy_from_slice(src)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xdead_beef);
        w.put_u16_le(7);
        w.put_i64_le(-5);
        w.put_f64_le(2.5);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.as_slice(), b"xyz");
    }

    #[test]
    fn split_to_preserves_remainder() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.as_slice(), &[1, 2]);
        assert_eq!(b.as_slice(), &[3, 4]);
    }
}
