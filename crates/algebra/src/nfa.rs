//! Compiled NFA pattern programs (§4.1) and the fluent construction API.
//!
//! A [`NfaProgram`] is the compiled form of one `SEQ(...)` pattern: a
//! linear automaton whose states are the positive steps (each guarded by
//! a type test plus eagerly evaluated step predicates) and whose
//! negation checks veto candidate matches at completion time. The
//! [`PatternOp`] runtime executes programs
//! over the pooled partial-match slab; the program itself is immutable
//! data, which is what makes cross-query *prefix sharing* possible — two
//! programs whose leading steps agree (same type, same predicates) can
//! run those steps once on shared state (see
//! [`SharedGroup`](crate::pattern::SharedGroup)).
//!
//! Step equality across queries is decided over *interned predicate
//! references*: a [`PredicateTable`] maps each compiled predicate to a
//! dense [`PredicateId`] by its canonical serialized form, so two
//! independently compiled-but-identical predicates (same slots, same
//! attribute ids, same constants) get the same id and step signatures
//! become cheaply comparable.
//!
//! Programs are built through [`PatternBuilder`] — the construction API
//! that replaced the positional `PatternOp::sequence(...)` constructor:
//!
//! ```text
//! PatternBuilder::new(match_type)
//!     .then(a).then(b).filter(pred)      // SEQ(A a, B b) with a step predicate on b
//!     .not_between(0, c, vec![])         // NOT C strictly between a and b
//!     .within(60)
//!     .offsets(vec![0, 1])
//!     .collect_provenance()              // opt-in match provenance
//!     .build()
//! ```

use crate::expr::CompiledExpr;
use crate::pattern::PatternOp;
use caesar_events::{Time, TypeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a negated element sits relative to the positive steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegPosition {
    /// Before the first positive step (leading `NOT`).
    Before,
    /// Strictly between positive steps `i` and `i + 1`.
    Between(usize),
    /// After the last positive step (trailing `NOT`).
    After,
}

/// One negation constraint of a sequence pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NegationCheck {
    /// Type of the forbidden event.
    pub type_id: TypeId,
    /// Position relative to the positive steps.
    pub position: NegPosition,
    /// Predicates over `[positive events..., negated candidate]` —
    /// the negated candidate is bound at slot `positive_count`.
    /// An event only *counts* as forbidden if all predicates hold.
    pub predicates: Vec<CompiledExpr>,
}

/// One positive step of the compiled automaton.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NfaStep {
    /// Event type the step matches.
    pub type_id: TypeId,
    /// Predicates whose referenced slots are all bound once this step
    /// matches — evaluated eagerly to prune partial matches.
    pub predicates: Vec<CompiledExpr>,
}

/// A compiled pattern program: the data half of the pattern operator
/// (the [`PatternOp`] runtime adds the mutable match state).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NfaProgram {
    /// Positive steps in sequence order.
    pub steps: Vec<NfaStep>,
    /// Negation checks (evaluated on candidate completion).
    pub negations: Vec<NegationCheck>,
    /// Maximum allowed span of a full match; also the negation-buffer
    /// horizon and the trailing-negation deadline.
    pub within: Time,
    /// Output type of assembled match events (`None` ⇒ pass-through:
    /// a single step without negation or step predicates).
    pub match_type: Option<TypeId>,
    /// Per-step attribute offsets in the combined match event.
    pub offsets: Vec<u16>,
    /// Collect [`Provenance`](caesar_events::Provenance) on every
    /// emitted match (the opt-in provenance execution mode).
    pub collect_provenance: bool,
}

impl NfaProgram {
    /// Number of positive steps.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.steps.len()
    }
}

/// Dense reference to an interned predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PredicateId(pub u32);

/// Interns compiled predicates by their canonical serialized form.
///
/// Two predicates receive the same [`PredicateId`] exactly when they
/// serialize to the same bytes — same expression tree, same slot
/// bindings, same attribute ids, same constants — which is precisely the
/// condition under which evaluating one of them is equivalent to
/// evaluating the other on any slot binding. Step signatures built from
/// these ids therefore decide prefix-sharing eligibility soundly.
#[derive(Debug, Clone, Default)]
pub struct PredicateTable {
    ids: HashMap<Vec<u8>, u32>,
}

impl PredicateTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns one predicate, returning its dense id.
    pub fn intern(&mut self, predicate: &CompiledExpr) -> PredicateId {
        let fingerprint = serde::to_bytes(predicate);
        let next = self.ids.len() as u32;
        PredicateId(*self.ids.entry(fingerprint).or_insert(next))
    }

    /// Number of distinct predicates interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// The comparable signature of one step: its type plus the sorted ids of
/// its predicates (step predicates are a conjunction, so order is
/// irrelevant for equivalence).
#[must_use]
pub fn step_signature(step: &NfaStep, table: &mut PredicateTable) -> (TypeId, Vec<PredicateId>) {
    let mut ids: Vec<PredicateId> = step.predicates.iter().map(|p| table.intern(p)).collect();
    ids.sort_unstable();
    (step.type_id, ids)
}

/// Fluent builder for pattern operators — the construction API of the
/// NFA runtime (see the module docs for an example).
#[derive(Debug, Clone)]
pub struct PatternBuilder {
    steps: Vec<NfaStep>,
    negations: Vec<NegationCheck>,
    within: Time,
    match_type: TypeId,
    offsets: Vec<u16>,
    collect_provenance: bool,
}

impl PatternBuilder {
    /// Starts a sequence pattern deriving events of `match_type`.
    #[must_use]
    pub fn new(match_type: TypeId) -> Self {
        Self {
            steps: Vec::new(),
            negations: Vec::new(),
            within: Time::MAX,
            match_type,
            offsets: Vec::new(),
            collect_provenance: false,
        }
    }

    /// Appends a positive step matching `type_id`.
    #[must_use]
    pub fn then(mut self, type_id: TypeId) -> Self {
        self.steps.push(NfaStep {
            type_id,
            predicates: Vec::new(),
        });
        self
    }

    /// Adds a step predicate to the most recent [`then`](Self::then)
    /// step. All slots the predicate references must be bound by that
    /// step (slot `i` is step `i`).
    #[must_use]
    pub fn filter(mut self, predicate: CompiledExpr) -> Self {
        self.steps
            .last_mut()
            .expect("filter() requires a preceding then()")
            .predicates
            .push(predicate);
        self
    }

    /// Forbids `type_id` events before the first positive step.
    #[must_use]
    pub fn not_before(mut self, type_id: TypeId, predicates: Vec<CompiledExpr>) -> Self {
        self.negations.push(NegationCheck {
            type_id,
            position: NegPosition::Before,
            predicates,
        });
        self
    }

    /// Forbids `type_id` events strictly between positive steps `k` and
    /// `k + 1`.
    #[must_use]
    pub fn not_between(mut self, k: usize, type_id: TypeId, predicates: Vec<CompiledExpr>) -> Self {
        self.negations.push(NegationCheck {
            type_id,
            position: NegPosition::Between(k),
            predicates,
        });
        self
    }

    /// Forbids `type_id` events after the last positive step (delays
    /// emission until the `within` horizon passes).
    #[must_use]
    pub fn not_after(mut self, type_id: TypeId, predicates: Vec<CompiledExpr>) -> Self {
        self.negations.push(NegationCheck {
            type_id,
            position: NegPosition::After,
            predicates,
        });
        self
    }

    /// Bounds the span of a full match.
    #[must_use]
    pub fn within(mut self, within: Time) -> Self {
        self.within = within;
        self
    }

    /// Sets the per-step attribute offsets in the combined match event
    /// (defaults to `[0]` for single-step patterns; required otherwise).
    #[must_use]
    pub fn offsets(mut self, offsets: Vec<u16>) -> Self {
        self.offsets = offsets;
        self
    }

    /// Collects match [`Provenance`](caesar_events::Provenance) on every
    /// emitted event.
    #[must_use]
    pub fn collect_provenance(mut self) -> Self {
        self.collect_provenance = true;
        self
    }

    /// Compiles the program into an executable pattern operator.
    ///
    /// # Panics
    ///
    /// Panics when no step was added, or when explicit offsets disagree
    /// with the step count.
    #[must_use]
    pub fn build(self) -> PatternOp {
        assert!(!self.steps.is_empty(), "pattern needs at least one step");
        let offsets = if self.offsets.is_empty() {
            assert_eq!(
                self.steps.len(),
                1,
                "multi-step patterns require explicit offsets"
            );
            vec![0]
        } else {
            self.offsets
        };
        PatternOp::compile(NfaProgram {
            steps: self.steps,
            negations: self.negations,
            within: self.within,
            match_type: Some(self.match_type),
            offsets,
            collect_provenance: self.collect_provenance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BindingLayout, LayoutVar, SlotSource};
    use caesar_events::{AttrType, Schema, SchemaRegistry};
    use caesar_query::ast::{BinOp, Expr};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("A", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("B", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new(
            "M",
            &[("a.v", AttrType::Int), ("b.v", AttrType::Int)],
        ))
        .unwrap();
        reg
    }

    fn layout(reg: &SchemaRegistry) -> BindingLayout {
        BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "a".into(),
                    type_id: reg.lookup("A").unwrap(),
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "b".into(),
                    type_id: reg.lookup("B").unwrap(),
                    source: SlotSource::EventSlot(1),
                },
            ],
        }
    }

    #[test]
    fn interning_is_structural() {
        let reg = registry();
        let layout = layout(&reg);
        let compile = |e: &Expr| CompiledExpr::compile(e, &layout, &reg).unwrap();
        let gt5a = compile(&Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(5)));
        let gt5b = compile(&Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(5)));
        let gt6 = compile(&Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(6)));
        let mut table = PredicateTable::new();
        assert_eq!(table.intern(&gt5a), table.intern(&gt5b));
        assert_ne!(table.intern(&gt5a), table.intern(&gt6));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn step_signature_ignores_predicate_order() {
        let reg = registry();
        let layout = layout(&reg);
        let compile = |e: &Expr| CompiledExpr::compile(e, &layout, &reg).unwrap();
        let p1 = compile(&Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(5)));
        let p2 = compile(&Expr::bin(BinOp::Lt, Expr::attr("a", "v"), Expr::int(9)));
        let ty = reg.lookup("A").unwrap();
        let fwd = NfaStep {
            type_id: ty,
            predicates: vec![p1.clone(), p2.clone()],
        };
        let rev = NfaStep {
            type_id: ty,
            predicates: vec![p2, p1],
        };
        let mut table = PredicateTable::new();
        assert_eq!(
            step_signature(&fwd, &mut table),
            step_signature(&rev, &mut table)
        );
    }

    #[test]
    fn builder_compiles_runnable_pattern() {
        let reg = registry();
        let p = PatternBuilder::new(reg.lookup("M").unwrap())
            .then(reg.lookup("A").unwrap())
            .then(reg.lookup("B").unwrap())
            .within(100)
            .offsets(vec![0, 1])
            .build();
        assert_eq!(p.arity(), 2);
        assert!(!p.is_passthrough());
        assert_eq!(p.offsets(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "explicit offsets")]
    fn builder_rejects_missing_offsets() {
        let reg = registry();
        let _ = PatternBuilder::new(reg.lookup("M").unwrap())
            .then(reg.lookup("A").unwrap())
            .then(reg.lookup("B").unwrap())
            .build();
    }
}
