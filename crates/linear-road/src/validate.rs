//! Reference oracle: computes the expected Linear Road outputs directly
//! from a generated stream, independently of the operator machinery.
//!
//! The oracle re-implements the *semantics* — context windows with
//! `(t_i, t_t]` admission, per-window pattern scope, the `CI`/`CT`
//! set-update rules of §4.1 — as plain loops over the stream, so an
//! engine bug and an oracle bug are unlikely to coincide. Integration
//! tests assert the engine's toll / warning counts equal the oracle's.

use crate::types::REPORT_INTERVAL;
use caesar_events::{Event, PartitionId, SchemaRegistry, Time, TypeId};
use std::collections::{BTreeMap, HashMap};

/// Expected output counts (for a replication factor of 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpectedOutputs {
    /// Zero-toll notifications (clear context).
    pub zero_tolls: u64,
    /// Real toll notifications (congestion context).
    pub real_tolls: u64,
    /// Accident warnings (accident context).
    pub accident_warnings: u64,
    /// Position reports seen.
    pub position_reports: u64,
    /// Per-minute series `(position reports, zero tolls, real tolls,
    /// warnings)` — the Figure 10(b) data.
    pub per_minute: Vec<[u64; 4]>,
    /// Per-partition series with the same layout — the Figure 10(a)
    /// data.
    pub per_partition: BTreeMap<PartitionId, [u64; 4]>,
    /// Individual zero tolls as `(vid, sec)` (debugging / exact diffs).
    pub zero_toll_events: Vec<(i64, Time)>,
    /// Individual real tolls as `(vid, sec)`.
    pub real_toll_events: Vec<(i64, Time)>,
}

/// Per-partition context state mirroring the CAESAR semantics.
struct SegmentState {
    /// Open window start per context; clear starts "at genesis".
    clear: Option<WindowState>,
    congestion: Option<WindowState>,
    accident: Option<WindowState>,
}

struct WindowState {
    /// Exclusive start (`None` = genesis, admits everything).
    initiated: Option<Time>,
    /// Inclusive termination time; a window admits events carrying
    /// exactly its termination timestamp (`(t_i, t_t]`, Definition 1).
    terminated: Option<Time>,
    /// Last admitted report time per vid — the negation-pattern scope of
    /// this window instance.
    last_report: HashMap<i64, Time>,
}

impl WindowState {
    fn genesis() -> Self {
        Self {
            initiated: None,
            terminated: None,
            last_report: HashMap::new(),
        }
    }

    fn opened_at(t: Time) -> Self {
        Self {
            initiated: Some(t),
            terminated: None,
            last_report: HashMap::new(),
        }
    }

    fn is_open(&self) -> bool {
        self.terminated.is_none()
    }

    /// `(t_i, t_t]` admission.
    fn admits(&self, t: Time) -> bool {
        self.initiated.is_none_or(|i| i < t) && self.terminated.is_none_or(|tt| t <= tt)
    }
}

impl SegmentState {
    fn new() -> Self {
        Self {
            clear: Some(WindowState::genesis()),
            congestion: None,
            accident: None,
        }
    }

    fn open_count(&self) -> usize {
        [&self.clear, &self.congestion, &self.accident]
            .into_iter()
            .filter(|w| w.as_ref().is_some_and(WindowState::is_open))
            .count()
    }
}

/// Computes the oracle outputs for a time-sorted Linear Road stream.
///
/// # Panics
/// Panics if the Linear Road schemas are not registered in `registry`.
#[must_use]
pub fn expected_outputs(events: &[Event], registry: &SchemaRegistry) -> ExpectedOutputs {
    let position = registry.lookup("PositionReport").expect("LR schema");
    let many_slow = registry.lookup("ManySlowCars").expect("LR schema");
    let few_fast = registry.lookup("FewFastCars").expect("LR schema");
    let stopped = registry.lookup("StoppedCars").expect("LR schema");
    let removed = registry.lookup("StoppedCarsRemoved").expect("LR schema");

    let mut out = ExpectedOutputs::default();
    let mut states: BTreeMap<PartitionId, SegmentState> = BTreeMap::new();

    // Group events into per-partition transactions per timestamp, in
    // stream order (events are time-sorted).
    let mut i = 0;
    while i < events.len() {
        let t = events[i].time();
        let mut j = i;
        while j < events.len() && events[j].time() == t {
            j += 1;
        }
        // Partition the batch.
        let mut by_partition: BTreeMap<PartitionId, Vec<&Event>> = BTreeMap::new();
        for e in &events[i..j] {
            by_partition.entry(e.partition).or_default().push(e);
        }
        for (pid, batch) in by_partition {
            let state = states.entry(pid).or_insert_with(SegmentState::new);
            // Phase 1: derivation — markers drive transitions, evaluated
            // against the pre-transition window state.
            for e in &batch {
                apply_marker(state, e.type_id, t, (many_slow, few_fast, stopped, removed));
            }
            // Phase 2: processing with the post-transition windows.
            for e in &batch {
                if e.type_id != position {
                    continue;
                }
                process_report(state, e, t, &mut out);
            }
        }
        i = j;
    }
    out
}

fn apply_marker(
    state: &mut SegmentState,
    ty: TypeId,
    t: Time,
    (many_slow, few_fast, stopped, removed): (TypeId, TypeId, TypeId, TypeId),
) {
    let open = |w: &Option<WindowState>| w.as_ref().is_some_and(WindowState::is_open);
    if ty == many_slow {
        // SWITCH clear → congestion; the switch query lives in clear.
        if open(&state.clear) && state.clear.as_ref().is_some_and(|w| w.admits(t)) {
            close(&mut state.clear, t);
            if !open(&state.congestion) {
                state.congestion = Some(WindowState::opened_at(t));
            }
        }
    } else if ty == few_fast {
        // SWITCH congestion → clear.
        if open(&state.congestion) && state.congestion.as_ref().is_some_and(|w| w.admits(t)) {
            close(&mut state.congestion, t);
            if !open(&state.clear) {
                state.clear = Some(WindowState::opened_at(t));
            }
        }
    } else if ty == stopped {
        // INITIATE accident, valid in clear and congestion. CI_c removes
        // the default (clear) window if present.
        let in_scope = (open(&state.clear) && state.clear.as_ref().is_some_and(|w| w.admits(t)))
            || (open(&state.congestion) && state.congestion.as_ref().is_some_and(|w| w.admits(t)));
        if in_scope && !open(&state.accident) {
            state.accident = Some(WindowState::opened_at(t));
            if open(&state.clear) {
                close(&mut state.clear, t);
            }
        }
    } else if ty == removed {
        // TERMINATE accident; restore the default when the set empties.
        if open(&state.accident) && state.accident.as_ref().is_some_and(|w| w.admits(t)) {
            close(&mut state.accident, t);
            if state.open_count() == 0 {
                state.clear = Some(WindowState::opened_at(t));
            }
        }
    }
}

/// Closes a window at `t`, keeping it around so events at exactly `t`
/// are still admitted within the closing transaction.
fn close(slot: &mut Option<WindowState>, t: Time) {
    if let Some(w) = slot.as_mut() {
        w.terminated = Some(t);
    }
}

fn process_report(state: &mut SegmentState, e: &Event, t: Time, out: &mut ExpectedOutputs) {
    let vid = e.attrs[0].as_int().expect("vid is an int");
    let lane_travel = e.attrs[4].as_str().expect("lane is a string") != "exit";
    out.position_reports += 1;
    let minute = (t / 60) as usize;
    if out.per_minute.len() <= minute {
        out.per_minute.resize(minute + 1, [0; 4]);
    }
    let per_part = out.per_partition.entry(e.partition).or_insert([0; 4]);
    out.per_minute[minute][0] += 1;
    per_part[0] += 1;

    // Zero toll: new traveling car within the clear window.
    if let Some(w) = state.clear.as_mut() {
        if w.admits(t) {
            let is_new = t
                .checked_sub(REPORT_INTERVAL)
                .is_none_or(|prev| w.last_report.get(&vid) != Some(&prev));
            w.last_report.insert(vid, t);
            if is_new && lane_travel {
                out.zero_tolls += 1;
                out.per_minute[minute][1] += 1;
                out.per_partition.get_mut(&e.partition).expect("inserted")[1] += 1;
                out.zero_toll_events.push((vid, t));
            }
        }
    }
    // Real toll: new traveling car within the congestion window.
    if let Some(w) = state.congestion.as_mut() {
        if w.admits(t) {
            let is_new = t
                .checked_sub(REPORT_INTERVAL)
                .is_none_or(|prev| w.last_report.get(&vid) != Some(&prev));
            w.last_report.insert(vid, t);
            if is_new && lane_travel {
                out.real_tolls += 1;
                out.per_minute[minute][2] += 1;
                out.per_partition.get_mut(&e.partition).expect("inserted")[2] += 1;
                out.real_toll_events.push((vid, t));
            }
        }
    }
    // Accident warning: every traveling report within the accident
    // window.
    if let Some(w) = state.accident.as_ref() {
        if w.admits(t) && lane_travel {
            out.accident_warnings += 1;
            out.per_minute[minute][3] += 1;
            out.per_partition.get_mut(&e.partition).expect("inserted")[3] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinearRoadConfig, SchedulePolicy, SegmentSchedule, TrafficSim};
    use caesar_events::Interval;

    fn run(config: LinearRoadConfig) -> (ExpectedOutputs, Vec<Event>) {
        let mut sim = TrafficSim::new(config);
        let events = sim.generate();
        let expected = expected_outputs(&events, sim.registry());
        (expected, events)
    }

    #[test]
    fn all_clear_produces_only_zero_tolls() {
        let (out, _) = run(LinearRoadConfig {
            schedule: SchedulePolicy::AllClear,
            ..Default::default()
        });
        assert!(out.zero_tolls > 0);
        assert_eq!(out.real_tolls, 0);
        assert_eq!(out.accident_warnings, 0);
        assert!(out.position_reports > out.zero_tolls);
    }

    #[test]
    fn benchmark_schedule_produces_all_series() {
        let (out, _) = run(LinearRoadConfig::default());
        assert!(out.zero_tolls > 0, "clear phase at the start");
        assert!(out.real_tolls > 0, "congestion phase at the end");
        assert!(out.accident_warnings > 0, "accident phase in the middle");
    }

    #[test]
    fn accident_warnings_only_during_accident_minutes() {
        let duration = 600;
        let (out, _) = run(LinearRoadConfig {
            duration,
            ..Default::default()
        });
        // Benchmark schedule: accident within [17%, 28%] of duration.
        let acc_start_min = (duration * 17 / 100 / 60) as usize;
        let acc_end_min = (duration * 28 / 100 / 60) as usize;
        for (minute, counts) in out.per_minute.iter().enumerate() {
            if counts[3] > 0 {
                assert!(
                    minute >= acc_start_min && minute <= acc_end_min + 1,
                    "warning in minute {minute}, accident window is [{acc_start_min}, {acc_end_min}]"
                );
            }
        }
    }

    #[test]
    fn per_minute_and_totals_are_consistent() {
        let (out, _) = run(LinearRoadConfig::default());
        let sums = out.per_minute.iter().fold([0u64; 4], |mut acc, m| {
            for k in 0..4 {
                acc[k] += m[k];
            }
            acc
        });
        assert_eq!(sums[0], out.position_reports);
        assert_eq!(sums[1], out.zero_tolls);
        assert_eq!(sums[2], out.real_tolls);
        assert_eq!(sums[3], out.accident_warnings);
        let psums = out.per_partition.values().fold([0u64; 4], |mut acc, m| {
            for k in 0..4 {
                acc[k] += m[k];
            }
            acc
        });
        assert_eq!(psums, sums);
    }

    #[test]
    fn congestion_tolls_new_cars_once_per_window() {
        // Single partition, explicit schedule: congestion [100, 200].
        let config = LinearRoadConfig {
            segments_per_road: 1,
            duration: 300,
            base_cars: 3.0,
            peak_cars: 3.0,
            schedule: SchedulePolicy::Explicit(SegmentSchedule {
                congestion: vec![Interval::new(100, 200)],
                accidents: vec![],
            }),
            ..Default::default()
        };
        let (out, events) = run(config);
        assert!(out.real_tolls > 0);
        // Every car present during (100, 200] is "new" on its first
        // report inside the window (the window's pattern scope is
        // empty at initiation) — so real tolls equal the number of
        // distinct cars with a traveling first-report in the window
        // (cars re-entering after 30s gaps cannot happen: cadence is
        // exactly 30s).
        let pr = events
            .iter()
            .filter(|e| {
                e.attrs.len() == 8
                    && e.time() > 100
                    && e.time() <= 200
                    && e.attrs[4].as_str().unwrap() != "exit"
            })
            .map(|e| e.attrs[0].as_int().unwrap())
            .collect::<std::collections::BTreeSet<_>>();
        assert_eq!(out.real_tolls as usize, pr.len());
    }

    #[test]
    fn zero_tolls_pause_during_accident() {
        // Accident removes the default clear window (CI_c semantics);
        // zero tolls must not be produced inside the accident window.
        let config = LinearRoadConfig {
            segments_per_road: 1,
            duration: 300,
            schedule: SchedulePolicy::Explicit(SegmentSchedule {
                congestion: vec![],
                accidents: vec![Interval::new(100, 200)],
            }),
            ..Default::default()
        };
        let (out, _) = run(config);
        for (minute, counts) in out.per_minute.iter().enumerate() {
            let t = minute as Time * 60;
            if t > 100 && t + 59 <= 200 {
                assert_eq!(
                    counts[1], 0,
                    "zero toll in minute {minute} inside the accident window"
                );
            }
        }
        assert!(out.accident_warnings > 0);
    }
}
