//! Protocol robustness: hostile or unlucky wire input must produce a
//! typed error or a clean close — never a panic, never a wedged accept
//! loop, never a half-dead server.

mod common;

use caesar_server::{Client, ErrorCode, Request, Response, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start_server(config: ServerConfig) -> caesar_server::ServerHandle {
    Server::start(config).expect("server starts")
}

fn two_tenant_config() -> ServerConfig {
    ServerConfig {
        tenants: vec![common::tenant("alpha", 2), common::tenant("beta", 1)],
        ..ServerConfig::default()
    }
}

#[test]
fn ping_pong_and_unknown_tenant() {
    let handle = start_server(two_tenant_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    assert_eq!(client.roundtrip(&Request::Ping).unwrap(), Response::Pong);

    let reply = client
        .roundtrip(&Request::Ingest {
            tenant: "nope".into(),
            events: common::gen_events(3, 2),
        })
        .unwrap();
    assert!(
        matches!(
            reply,
            Response::Error {
                code: ErrorCode::UnknownTenant,
                ..
            }
        ),
        "{reply:?}"
    );
    let reply = client
        .roundtrip(&Request::Subscribe {
            tenant: "nope".into(),
        })
        .unwrap();
    assert!(matches!(
        reply,
        Response::Error {
            code: ErrorCode::UnknownTenant,
            ..
        }
    ));

    handle.shutdown();
    assert!(handle.join().clean());
}

#[test]
fn malformed_frame_leaves_connection_usable() {
    let handle = start_server(two_tenant_config());
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown kind byte.
    client.send_raw(&[0xFF, 1, 2, 3]).unwrap();
    let reply = client.recv_control().unwrap().unwrap();
    assert!(matches!(
        reply,
        Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));
    // Truncated tenant name.
    client.send_raw(&[0x02, 0xFF, 0x00, b'x']).unwrap();
    let reply = client.recv_control().unwrap().unwrap();
    assert!(matches!(
        reply,
        Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));
    // The length prefix was honest both times, so the stream is still
    // frame-synced and the same connection keeps working.
    assert_eq!(client.roundtrip(&Request::Ping).unwrap(), Response::Pong);

    handle.shutdown();
    assert!(handle.join().clean());
}

#[test]
fn oversized_frame_is_rejected_then_closed() {
    let config = ServerConfig {
        max_frame_len: 1024,
        ..two_tenant_config()
    };
    let handle = start_server(config);
    let mut client = Client::connect(handle.addr()).unwrap();

    client.send_raw(&vec![0u8; 4096]).unwrap();
    let reply = client.recv_control().unwrap().unwrap();
    assert!(
        matches!(
            reply,
            Response::Error {
                code: ErrorCode::FrameTooLarge,
                ..
            }
        ),
        "{reply:?}"
    );
    // The body was never read, so the server cannot resync — it hangs
    // up on this connection. The unread body in the server's receive
    // buffer makes the close an RST on most stacks, so either a clean
    // EOF or a reset counts as "closed".
    match client.recv() {
        Ok(None) | Err(caesar_server::FrameError::Io(_)) => {}
        other => panic!("expected closed connection, got {other:?}"),
    }

    // ...but the accept loop is untouched: a fresh connection works.
    let mut next = Client::connect(handle.addr()).unwrap();
    assert_eq!(next.roundtrip(&Request::Ping).unwrap(), Response::Pong);

    handle.shutdown();
    assert!(handle.join().clean());
}

#[test]
fn mid_frame_disconnect_does_not_wedge_the_server() {
    let handle = start_server(two_tenant_config());

    // Promise 100 bytes, deliver 10, vanish.
    {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(&100u32.to_le_bytes()).unwrap();
        raw.write_all(&[7u8; 10]).unwrap();
    } // dropped: RST/FIN mid-frame

    // Server keeps serving.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.roundtrip(&Request::Ping).unwrap(), Response::Pong);

    handle.shutdown();
    assert!(handle.join().clean());
}

#[test]
fn finish_is_terminal_and_double_finish_is_typed() {
    let handle = start_server(two_tenant_config());
    let mut client = Client::connect(handle.addr()).unwrap();
    let events = common::gen_events(40, 4);

    let reply = client
        .roundtrip(&Request::Ingest {
            tenant: "alpha".into(),
            events: events.clone(),
        })
        .unwrap();
    assert_eq!(reply, Response::Ack);

    let reply = client
        .roundtrip(&Request::Finish {
            tenant: "alpha".into(),
        })
        .unwrap();
    let Response::Report(report) = reply else {
        panic!("expected report, got {reply:?}");
    };
    assert_eq!(report.events_in, events.len() as u64);

    // A second FINISH and a late INGEST are both typed rejections.
    let reply = client
        .roundtrip(&Request::Finish {
            tenant: "alpha".into(),
        })
        .unwrap();
    assert!(matches!(
        reply,
        Response::Error {
            code: ErrorCode::TenantFinished,
            ..
        }
    ));
    let reply = client
        .roundtrip(&Request::Ingest {
            tenant: "alpha".into(),
            events,
        })
        .unwrap();
    assert!(matches!(
        reply,
        Response::Error {
            code: ErrorCode::TenantFinished,
            ..
        }
    ));

    // The *other* tenant is untouched by alpha's end-of-stream.
    let reply = client
        .roundtrip(&Request::Ingest {
            tenant: "beta".into(),
            events: common::gen_events(5, 1),
        })
        .unwrap();
    assert_eq!(reply, Response::Ack);

    handle.shutdown();
    assert!(handle.join().clean());
}

#[test]
fn double_shutdown_from_two_connections_drains_once_cleanly() {
    let handle = start_server(two_tenant_config());
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();

    a.send(&Request::Shutdown).unwrap();
    b.send(&Request::Shutdown).unwrap();

    // The connection whose frame was read first triggers the drain and
    // ends in SHUTDOWN_OK. The other races the drain's read-side
    // half-close: its frame may sit unread in the server's receive
    // buffer, which turns the final close into an RST on most stacks —
    // so SHUTDOWN_OK, a clean close, or a reset all count. What must
    // never happen is a hang or a server panic.
    a.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    b.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let outcomes = [a.drain_to_shutdown(), b.drain_to_shutdown()];
    assert!(
        outcomes.iter().any(|o| matches!(o, Ok(true))),
        "at least one connection sees SHUTDOWN_OK: {outcomes:?}"
    );
    for outcome in &outcomes {
        assert!(
            matches!(outcome, Ok(_) | Err(caesar_server::FrameError::Io(_))),
            "{outcome:?}"
        );
    }

    assert!(handle.join().clean());
}

#[test]
fn metrics_endpoint_serves_json_and_healthz() {
    let config = ServerConfig {
        metrics_listen: Some("127.0.0.1:0".into()),
        ..two_tenant_config()
    };
    let handle = start_server(config);
    let metrics_addr = handle.metrics_addr().expect("metrics listener bound");

    let mut client = Client::connect(handle.addr()).unwrap();
    let reply = client
        .roundtrip(&Request::Ingest {
            tenant: "alpha".into(),
            events: common::gen_events(30, 4),
        })
        .unwrap();
    assert_eq!(reply, Response::Ack);
    assert_eq!(
        client
            .roundtrip(&Request::Flush {
                tenant: "alpha".into()
            })
            .unwrap(),
        Response::FlushOk
    );

    let body = http_get(metrics_addr, "/metrics");
    assert!(body.starts_with("HTTP/1.0 200"), "{body}");
    assert!(body.contains("\"connections_accepted\":1"), "{body}");
    assert!(body.contains("\"frames_in\""), "{body}");
    assert!(body.contains("\"alpha\""), "{body}");
    assert!(body.contains("\"beta\""), "{body}");
    assert!(body.contains("\"queue_high_water\""), "{body}");

    let health = http_get(metrics_addr, "/healthz");
    assert!(health.starts_with("HTTP/1.0 200"), "{health}");
    assert!(health.ends_with("ok"), "{health}");

    let missing = http_get(metrics_addr, "/nope");
    assert!(missing.starts_with("HTTP/1.0 404"), "{missing}");

    handle.shutdown();
    assert!(handle.join().clean());
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").as_bytes())
        .unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    body
}
