//! Derive macros for the vendored `serde` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements `#[derive(Serialize, Deserialize)]` against the shim's
//! simple binary codec without `syn`/`quote`: the input token stream is
//! walked by hand and the generated impl is emitted as a string.
//!
//! Supported shapes: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like. The only honoured
//! field attribute is `#[serde(skip)]`, which omits the field from the
//! wire format and restores it with `Default::default()`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

struct Field {
    /// `None` for tuple fields (addressed positionally).
    name: Option<String>,
    skip: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

/// Derives the shim's `Serialize` trait (field-ordered binary encoding).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait (field-ordered binary decoding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility ahead of the item keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p2)) if p2.as_char() == '!') {
                    i += 1;
                }
                i += 1; // bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_body(tokens.get(i))),
        "enum" => Kind::Enum(parse_enum_body(tokens.get(i))),
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

fn parse_struct_body(tok: Option<&TokenTree>) -> Fields {
    match tok {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Fields::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Fields::Tuple(parse_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        None => Fields::Unit,
        other => panic!("serde shim derive: unexpected struct body token {other:?}"),
    }
}

fn parse_enum_body(tok: Option<&TokenTree>) -> Vec<Variant> {
    let group = match tok {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("serde shim derive: expected enum body, found {other:?}"),
    };
    split_top_level_commas(group.stream())
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut j = 0;
            skip_attrs(&chunk, &mut j);
            let name = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected variant name, found {other:?}"),
            };
            j += 1;
            let fields = match chunk.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                None => Fields::Unit,
                other => {
                    panic!("serde shim derive: unsupported variant shape after `{name}`: {other:?}")
                }
            };
            Variant { name, fields }
        })
        .collect()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut j = 0;
            let skip = skip_attrs(&chunk, &mut j);
            skip_visibility(&chunk, &mut j);
            let name = match chunk.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde shim derive: expected field name, found {other:?}"),
            };
            Field {
                name: Some(name),
                skip,
            }
        })
        .collect()
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut j = 0;
            let skip = skip_attrs(&chunk, &mut j);
            Field { name: None, skip }
        })
        .collect()
}

/// Advances past `#[...]` attributes; returns whether `#[serde(skip)]`
/// was among them.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            skip |= attr_is_serde_skip(g.stream());
            *i += 1;
        }
    }
    skip
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Splits a token stream on commas, ignoring commas nested in groups or
/// inside `<...>` generic arguments (angle brackets are bare puncts).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth: i32 = 0;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new());
                continue;
            }
            _ => {}
        }
        chunks.last_mut().expect("non-empty").push(tok);
    }
    chunks
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Serialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn serialize(&self, __out: &mut ::serde::Serializer) {{\n"
    );
    match &item.kind {
        Kind::Struct(fields) => out.push_str(&serialize_struct_fields(fields)),
        Kind::Enum(variants) => {
            out.push_str("match self {\n");
            for (tag, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(
                            out,
                            "{name}::{vname} => {{ ::serde::Serialize::serialize(&{tag}u32, __out); }}"
                        );
                    }
                    Fields::Tuple(fields) => {
                        let pattern: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(k, f)| {
                                if f.skip {
                                    "_".to_string()
                                } else {
                                    format!("__f{k}")
                                }
                            })
                            .collect();
                        let _ = writeln!(
                            out,
                            "{name}::{vname}({}) => {{ ::serde::Serialize::serialize(&{tag}u32, __out);",
                            pattern.join(", ")
                        );
                        for (k, f) in fields.iter().enumerate() {
                            if !f.skip {
                                let _ =
                                    writeln!(out, "::serde::Serialize::serialize(__f{k}, __out);");
                            }
                        }
                        out.push_str("}\n");
                    }
                    Fields::Named(fields) => {
                        let bound: Vec<&str> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_deref().expect("named field"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "{name}::{vname} {{ {}.. }} => {{ ::serde::Serialize::serialize(&{tag}u32, __out);",
                            bound
                                .iter()
                                .map(|b| format!("{b}, "))
                                .collect::<String>()
                        );
                        for b in &bound {
                            let _ = writeln!(out, "::serde::Serialize::serialize({b}, __out);");
                        }
                        out.push_str("}\n");
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

fn serialize_struct_fields(fields: &Fields) -> String {
    let mut out = String::new();
    match fields {
        Fields::Unit => {}
        Fields::Named(fs) => {
            for f in fs.iter().filter(|f| !f.skip) {
                let fname = f.name.as_deref().expect("named field");
                let _ = writeln!(out, "::serde::Serialize::serialize(&self.{fname}, __out);");
            }
        }
        Fields::Tuple(fs) => {
            for (k, f) in fs.iter().enumerate() {
                if !f.skip {
                    let _ = writeln!(out, "::serde::Serialize::serialize(&self.{k}, __out);");
                }
            }
        }
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn deserialize(__de: &mut ::serde::Deserializer<'_>) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n"
    );
    match &item.kind {
        Kind::Struct(fields) => {
            let _ = writeln!(
                out,
                "::std::result::Result::Ok({})",
                construct(name, fields)
            );
        }
        Kind::Enum(variants) => {
            out.push_str(
                "let __tag = <u32 as ::serde::Deserialize>::deserialize(__de)?;\n\
                 match __tag {\n",
            );
            for (tag, v) in variants.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{tag}u32 => ::std::result::Result::Ok({}),",
                    construct(&format!("{name}::{}", v.name), &v.fields)
                );
            }
            let _ = write!(
                out,
                "_ => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", __tag)),\n}}\n"
            );
        }
    }
    out.push_str("}\n}\n");
    out
}

/// Builds a constructor expression that decodes non-skipped fields in
/// declaration order (struct-literal / call arguments evaluate left to
/// right, matching the serializer).
fn construct(path: &str, fields: &Fields) -> String {
    const READ: &str = "::serde::Deserialize::deserialize(__de)?";
    const DEFAULT: &str = "::std::default::Default::default()";
    match fields {
        Fields::Unit => path.to_string(),
        Fields::Tuple(fs) => {
            let args: Vec<&str> = fs
                .iter()
                .map(|f| if f.skip { DEFAULT } else { READ })
                .collect();
            format!("{path}({})", args.join(", "))
        }
        Fields::Named(fs) => {
            let inits: Vec<String> = fs
                .iter()
                .map(|f| {
                    let fname = f.name.as_deref().expect("named field");
                    format!("{fname}: {}", if f.skip { DEFAULT } else { READ })
                })
                .collect();
            format!("{path} {{ {} }}", inits.join(", "))
        }
    }
}
