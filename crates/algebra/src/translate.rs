//! Phase 2 of the CAESAR model translation (§4.2): machine-readable
//! query set → executable combined query plans.
//!
//! 1. *Individual query plan construction* — each clause becomes the
//!    operators of Table 1:
//!
//!    | clause                | operators        |
//!    |-----------------------|------------------|
//!    | `INITIATE CONTEXT c`  | `CI_c`           |
//!    | `SWITCH CONTEXT c`    | `CI_c, CT_curr`  |
//!    | `TERMINATE CONTEXT c` | `CT_c`           |
//!    | `DERIVE E(A)`         | `PR_{A,E}`       |
//!    | `PATTERN P`           | `P`              |
//!    | `WHERE θ`             | `Fl_θ`           |
//!    | `CONTEXT c`           | `CW_c`           |
//!
//!    The initial chain order follows Figure 6(a): pattern at the bottom,
//!    then filter, then the context window, then projection (or the
//!    context initiation/termination operators for deriving queries).
//!    Conjuncts of `WHERE` referencing a negated pattern variable cannot
//!    live in the filter operator (the negated event does not exist in
//!    the match); they compile into the pattern operator's negation
//!    check.
//!
//! 2. *Combined query plan construction* — individual plans of the same
//!    context are wired producer-before-consumer (topological order on
//!    derived event types).

use crate::expr::{combined_schema, BindingLayout, CompiledExpr, EvalError, LayoutVar, SlotSource};
use crate::nfa::PatternBuilder;
use crate::ops::{ContextInitOp, ContextTermOp, ContextWindowOp, FilterOp, Op, ProjectOp};
use crate::pattern::{NegPosition, NegationCheck, PatternOp};
use crate::plan::{CombinedPlan, QueryPlan};
use caesar_events::{AttrType, Schema, SchemaRegistry, Time, TypeId, Value};
use caesar_query::ast::{ContextAction, Expr, Pattern};
use caesar_query::queryset::{CompiledQuery, QuerySet};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Errors raised during Phase-2 translation.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// A pattern references an event type that is neither registered nor
    /// derived by any query in the set.
    UnknownEventType(String),
    /// Expression compilation failed.
    Expr(EvalError),
    /// A `WHERE` conjunct references more than one negated variable.
    MultiNegatedPredicate(String),
    /// Queries within one context form a derivation cycle.
    CyclicDependency(String),
    /// The query's context is not among the set's context names.
    UnknownContext(String),
    /// A derived type was declared twice with different arity.
    ConflictingDerivedType(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownEventType(t) => {
                write!(f, "event type '{t}' is neither registered nor derived")
            }
            TranslateError::Expr(e) => write!(f, "expression error: {e}"),
            TranslateError::MultiNegatedPredicate(q) => write!(
                f,
                "query {q}: a WHERE conjunct references more than one negated variable"
            ),
            TranslateError::CyclicDependency(c) => {
                write!(f, "queries in context '{c}' form a derivation cycle")
            }
            TranslateError::UnknownContext(c) => write!(f, "unknown context '{c}'"),
            TranslateError::ConflictingDerivedType(t) => {
                write!(
                    f,
                    "derived type '{t}' declared twice with conflicting schemas"
                )
            }
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<EvalError> for TranslateError {
    fn from(e: EvalError) -> Self {
        TranslateError::Expr(e)
    }
}

/// Knobs of the translation.
#[derive(Debug, Clone, Copy)]
pub struct TranslateOptions {
    /// Maximum span of a sequence match; also the negation buffer horizon
    /// (the language has no `WITHIN` clause; the paper relies on
    /// "temporal constraints" \[34\]).
    pub default_within: Time,
}

impl Default for TranslateOptions {
    fn default() -> Self {
        Self {
            default_within: 300,
        }
    }
}

/// Result of Phase-2 translation.
#[derive(Debug, Clone)]
pub struct TranslationOutput {
    /// One combined plan per context that carries queries, in
    /// bit-vector (alphabetical) context order.
    pub combined: Vec<CombinedPlan>,
    /// Context names in bit order.
    pub context_names: Vec<String>,
    /// Bit of the default context.
    pub default_bit: u8,
}

impl TranslationOutput {
    /// The combined plan of a context, if it has one.
    #[must_use]
    pub fn plan_for(&self, context: &str) -> Option<&CombinedPlan> {
        self.combined.iter().find(|c| c.context == context)
    }

    /// Total number of individual query plans.
    #[must_use]
    pub fn query_plan_count(&self) -> usize {
        self.combined.iter().map(CombinedPlan::len).sum()
    }
}

/// Translates a Phase-1 query set into executable combined plans,
/// registering derived and match event types in `registry`.
pub fn translate_query_set(
    query_set: &QuerySet,
    registry: &mut SchemaRegistry,
    options: &TranslateOptions,
) -> Result<TranslationOutput, TranslateError> {
    let default_bit = query_set
        .context_bit(&query_set.default_context)
        .ok_or_else(|| TranslateError::UnknownContext(query_set.default_context.clone()))?
        as u8;

    register_derived_types(query_set, registry)?;

    let bits: BTreeMap<String, u8> = query_set
        .context_names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.clone(), i as u8))
        .collect();

    // Group translated plans by context.
    let mut by_context: BTreeMap<String, Vec<QueryPlan>> = BTreeMap::new();
    for cq in &query_set.queries {
        let bit = query_set
            .context_bit(&cq.context)
            .ok_or_else(|| TranslateError::UnknownContext(cq.context.clone()))?
            as u8;
        let plan = translate_query(cq, bit, &bits, registry, options)?;
        by_context.entry(cq.context.clone()).or_default().push(plan);
    }

    let mut combined = Vec::new();
    for (context, plans) in by_context {
        let bit = query_set.context_bit(&context).expect("checked above") as u8;
        let ordered = topo_sort(plans, &context)?;
        combined.push(CombinedPlan::new(context, bit, ordered));
    }

    Ok(TranslationOutput {
        combined,
        context_names: query_set.context_names.clone(),
        default_bit,
    })
}

/// Registers the output schema of every `DERIVE` clause. Schema inference
/// may need the schemas of *other* derived types (a pattern over a
/// derived event), so passes repeat until a fixpoint.
fn register_derived_types(
    query_set: &QuerySet,
    registry: &mut SchemaRegistry,
) -> Result<(), TranslateError> {
    let mut pending: Vec<&CompiledQuery> = query_set
        .queries
        .iter()
        .filter(|q| q.query.derive.is_some())
        .collect();
    loop {
        let before = pending.len();
        let mut still_pending = Vec::new();
        for cq in pending {
            match try_register_derived(cq, registry)? {
                true => {}
                false => still_pending.push(cq),
            }
        }
        if still_pending.is_empty() {
            return Ok(());
        }
        if still_pending.len() == before {
            // No progress: some pattern type is genuinely unknown.
            let missing = still_pending
                .iter()
                .flat_map(|cq| cq.query.pattern.event_types())
                .find(|t| registry.lookup(t).is_err())
                .unwrap_or("<unknown>");
            return Err(TranslateError::UnknownEventType(missing.to_string()));
        }
        pending = still_pending;
    }
}

/// Attempts to register one query's derived type; `Ok(false)` when its
/// input types are not all known yet.
fn try_register_derived(
    cq: &CompiledQuery,
    registry: &mut SchemaRegistry,
) -> Result<bool, TranslateError> {
    let derive = cq.query.derive.as_ref().expect("filtered");
    // All pattern types known?
    let vars = pattern_vars(&cq.query.pattern, registry);
    let Ok(vars) = vars else { return Ok(false) };

    let mut names: Vec<String> = Vec::with_capacity(derive.args.len());
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut attrs: Vec<(String, AttrType)> = Vec::new();
    for (i, arg) in derive.args.iter().enumerate() {
        let base = match arg {
            Expr::Attr { attr, .. } => attr.clone(),
            _ => format!("arg{i}"),
        };
        let mut name = base.clone();
        let mut k = 2;
        while !used.insert(name.clone()) {
            name = format!("{base}_{k}");
            k += 1;
        }
        let ty = infer_expr_type(arg, &vars, registry);
        attrs.push((name.clone(), ty));
        names.push(name);
    }
    let refs: Vec<(&str, AttrType)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::new(&derive.event_type, &refs);
    match registry.register(schema) {
        Ok(_) => Ok(true),
        Err(_) => {
            // Already registered: multiple instances of the same source
            // query (or replicated workloads) re-declare the type. Accept
            // if the arity matches; reject genuine conflicts.
            let existing = registry
                .schema_by_name(&derive.event_type)
                .expect("registration failed means the name exists");
            if existing.arity() == derive.args.len() {
                Ok(true)
            } else {
                Err(TranslateError::ConflictingDerivedType(
                    derive.event_type.clone(),
                ))
            }
        }
    }
}

/// Resolves the positive pattern variables to `(name, TypeId)` pairs;
/// fails if any pattern type is unregistered.
fn pattern_vars(
    pattern: &Pattern,
    registry: &SchemaRegistry,
) -> Result<Vec<(String, TypeId)>, TranslateError> {
    let mut vars = Vec::new();
    for (i, el) in pattern.elements().into_iter().enumerate() {
        let Pattern::Event {
            event_type,
            var,
            negated,
        } = el
        else {
            continue;
        };
        if *negated {
            continue;
        }
        let type_id = registry
            .lookup(event_type)
            .map_err(|_| TranslateError::UnknownEventType(event_type.clone()))?;
        let name = var.clone().unwrap_or_else(|| format!("$e{i}"));
        vars.push((name, type_id));
    }
    Ok(vars)
}

/// Infers the value domain of an expression over the given variables.
fn infer_expr_type(expr: &Expr, vars: &[(String, TypeId)], registry: &SchemaRegistry) -> AttrType {
    match expr {
        Expr::Const(Value::Int(_)) => AttrType::Int,
        Expr::Const(Value::Float(_)) => AttrType::Float,
        Expr::Const(Value::Str(_)) => AttrType::Str,
        Expr::Const(Value::Bool(_)) => AttrType::Bool,
        Expr::Const(Value::Null) => AttrType::Int,
        Expr::Attr { var, attr } => {
            let found = match var {
                Some(v) => vars
                    .iter()
                    .find(|(name, _)| name == v)
                    .and_then(|(_, tid)| {
                        registry
                            .schema(*tid)
                            .attrs
                            .iter()
                            .find(|a| a.name.as_ref() == attr)
                    }),
                None => vars.iter().find_map(|(_, tid)| {
                    registry
                        .schema(*tid)
                        .attrs
                        .iter()
                        .find(|a| a.name.as_ref() == attr)
                }),
            };
            found.map_or(AttrType::Int, |a| a.ty)
        }
        Expr::Binary { op, lhs, rhs } => {
            if op.is_comparison() || op.is_logical() {
                AttrType::Bool
            } else {
                let (l, r) = (
                    infer_expr_type(lhs, vars, registry),
                    infer_expr_type(rhs, vars, registry),
                );
                if l == AttrType::Float || r == AttrType::Float {
                    AttrType::Float
                } else {
                    AttrType::Int
                }
            }
        }
    }
}

/// Translates one compiled query into its individual plan (Table 1).
/// `context_bits` maps context names to bit-vector positions
/// (alphabetical order over the query set's contexts).
pub fn translate_query(
    cq: &CompiledQuery,
    context_bit: u8,
    context_bits: &BTreeMap<String, u8>,
    registry: &mut SchemaRegistry,
    options: &TranslateOptions,
) -> Result<QueryPlan, TranslateError> {
    let query = &cq.query;
    let elements = query.pattern.elements();

    // Classify elements: positives in order; negations with positions.
    struct NegSpec {
        type_id: TypeId,
        var: Option<String>,
        position: NegPosition,
    }
    let mut positives: Vec<(TypeId, Option<String>)> = Vec::new();
    let mut negs: Vec<NegSpec> = Vec::new();
    let total_positives = elements
        .iter()
        .filter(|e| matches!(e, Pattern::Event { negated: false, .. }))
        .count();
    for el in &elements {
        let Pattern::Event {
            event_type,
            var,
            negated,
        } = el
        else {
            continue;
        };
        let type_id = registry
            .lookup(event_type)
            .map_err(|_| TranslateError::UnknownEventType(event_type.clone()))?;
        if *negated {
            let position = if positives.is_empty() {
                NegPosition::Before
            } else if positives.len() == total_positives {
                NegPosition::After
            } else {
                NegPosition::Between(positives.len() - 1)
            };
            negs.push(NegSpec {
                type_id,
                var: var.clone(),
                position,
            });
        } else {
            positives.push((type_id, var.clone()));
        }
    }

    // Variable slots: positives 0..k-1 (pattern order).
    let positive_vars: Vec<(String, TypeId)> = positives
        .iter()
        .enumerate()
        .map(|(i, (tid, var))| (var.clone().unwrap_or_else(|| format!("$e{i}")), *tid))
        .collect();

    // Split WHERE conjuncts into negation predicates and filter
    // predicates.
    let negated_var_names: Vec<Option<String>> = negs.iter().map(|n| n.var.clone()).collect();
    let mut filter_conjuncts: Vec<&Expr> = Vec::new();
    let mut neg_conjuncts: Vec<Vec<&Expr>> = vec![Vec::new(); negs.len()];
    if let Some(w) = &query.where_clause {
        for conjunct in w.conjuncts() {
            let referenced = conjunct.referenced_vars();
            let hit_negs: Vec<usize> = negated_var_names
                .iter()
                .enumerate()
                .filter_map(|(i, v)| {
                    v.as_deref()
                        .filter(|name| referenced.contains(&Some(name)))
                        .map(|_| i)
                })
                .collect();
            match hit_negs.len() {
                0 => filter_conjuncts.push(conjunct),
                1 => neg_conjuncts[hit_negs[0]].push(conjunct),
                _ => return Err(TranslateError::MultiNegatedPredicate(cq.id.to_string())),
            }
        }
    }

    // Binding layout for negation checks: positives at slots 0..k-1,
    // the negated candidate at slot k.
    let slot_layout_with = |neg: Option<(&str, TypeId)>| -> BindingLayout {
        let mut vars: Vec<LayoutVar> = positive_vars
            .iter()
            .enumerate()
            .map(|(i, (name, tid))| LayoutVar {
                name: name.clone(),
                type_id: *tid,
                source: SlotSource::EventSlot(i as u8),
            })
            .collect();
        if let Some((name, tid)) = neg {
            vars.push(LayoutVar {
                name: name.to_string(),
                type_id: tid,
                source: SlotSource::EventSlot(positive_vars.len() as u8),
            });
        }
        BindingLayout { vars }
    };

    // Compile negation checks.
    let mut negation_checks = Vec::with_capacity(negs.len());
    for (i, spec) in negs.iter().enumerate() {
        let layout = slot_layout_with(spec.var.as_deref().map(|name| (name, spec.type_id)));
        let predicates = neg_conjuncts[i]
            .iter()
            .map(|c| CompiledExpr::compile(c, &layout, registry))
            .collect::<Result<Vec<_>, _>>()?;
        negation_checks.push(NegationCheck {
            type_id: spec.type_id,
            position: spec.position,
            predicates,
        });
    }

    // Build the pattern operator and the layout seen by operators above
    // it.
    let passthrough = positives.len() == 1 && negation_checks.is_empty();
    let (pattern_op, above_layout) = if passthrough {
        let (tid, _) = positives[0];
        let layout = BindingLayout {
            vars: vec![LayoutVar {
                name: positive_vars[0].0.clone(),
                type_id: tid,
                source: SlotSource::CombinedOffset(0),
            }],
        };
        (PatternOp::passthrough(tid), layout)
    } else {
        let match_name = format!("$match:{}", cq.id);
        let (schema, offsets) = combined_schema(&match_name, &positive_vars, registry);
        let match_tid = registry
            .register(schema)
            .map_err(|_| TranslateError::ConflictingDerivedType(match_name.clone()))?;
        let layout = BindingLayout {
            vars: positive_vars
                .iter()
                .zip(offsets.iter())
                .map(|((name, tid), off)| LayoutVar {
                    name: name.clone(),
                    type_id: *tid,
                    source: SlotSource::CombinedOffset(*off),
                })
                .collect(),
        };
        let mut builder = PatternBuilder::new(match_tid);
        for (tid, _) in &positives {
            builder = builder.then(*tid);
        }
        for check in negation_checks {
            builder = match check.position {
                NegPosition::Before => builder.not_before(check.type_id, check.predicates),
                NegPosition::Between(k) => builder.not_between(k, check.type_id, check.predicates),
                NegPosition::After => builder.not_after(check.type_id, check.predicates),
            };
        }
        (
            builder
                // Per-query WITHIN clause overrides the global default.
                .within(query.within.unwrap_or(options.default_within))
                .offsets(offsets)
                .build(),
            layout,
        )
    };

    let input_types = pattern_op.input_types();

    // Assemble the chain in the initial (Figure 6a) order.
    let mut ops: Vec<Op> = vec![Op::Pattern(pattern_op)];
    if !filter_conjuncts.is_empty() {
        let compiled = filter_conjuncts
            .iter()
            .map(|c| CompiledExpr::compile(c, &above_layout, registry))
            .collect::<Result<Vec<_>, _>>()?;
        ops.push(Op::Filter(FilterOp::new(compiled)));
    }
    ops.push(Op::ContextWindow(ContextWindowOp::new(context_bit)));

    let mut output_type = None;
    let action_bit = |action: &ContextAction| -> Result<u8, TranslateError> {
        context_bits
            .get(action.target())
            .copied()
            .ok_or_else(|| TranslateError::UnknownContext(action.target().to_string()))
    };
    match (&query.action, &query.derive) {
        (Some(action), None) => match action {
            ContextAction::Initiate(_) => {
                ops.push(Op::ContextInit(ContextInitOp {
                    context_bit: action_bit(action)?,
                }));
            }
            ContextAction::Terminate(_) => {
                ops.push(Op::ContextTerm(ContextTermOp {
                    context_bit: action_bit(action)?,
                }));
            }
            ContextAction::Switch(_) => {
                // Table 1: SWITCH CONTEXT c → CI_c, CT_curr — in exactly
                // this order. Initiating first matters when the current
                // context is the DEFAULT: terminating it first would
                // empty the window set, reopen the default (CT's
                // empty-set rule) and let the subsequent CI close it
                // again with a degenerate `(t, t]` span, destroying the
                // closing window's right to admit events at the switch
                // timestamp.
                ops.push(Op::ContextInit(ContextInitOp {
                    context_bit: action_bit(action)?,
                }));
                ops.push(Op::ContextTerm(ContextTermOp { context_bit }));
            }
        },
        (None, Some(derive)) => {
            let out_tid = registry
                .lookup(&derive.event_type)
                .map_err(|_| TranslateError::UnknownEventType(derive.event_type.clone()))?;
            let args = derive
                .args
                .iter()
                .map(|a| CompiledExpr::compile(a, &above_layout, registry))
                .collect::<Result<Vec<_>, _>>()?;
            ops.push(Op::Project(ProjectOp::new(out_tid, args)));
            output_type = Some(out_tid);
        }
        _ => unreachable!("model validation enforces exactly one of action/derive"),
    }

    Ok(QueryPlan {
        query_id: cq.id,
        context: cq.context.clone(),
        context_bit,
        ops,
        input_types,
        output_type,
        is_deriving: query.is_deriving(),
        source: Arc::new(cq.clone()),
    })
}

/// Topologically sorts plans so producers precede consumers; errors on
/// cycles.
fn topo_sort(plans: Vec<QueryPlan>, context: &str) -> Result<Vec<QueryPlan>, TranslateError> {
    let n = plans.len();
    // Edge u → v when u's output type is consumed by v.
    let mut indegree = vec![0usize; n];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, pu) in plans.iter().enumerate() {
        let Some(out) = pu.output_type else { continue };
        for (v, pv) in plans.iter().enumerate() {
            if u != v && pv.consumes(out) {
                edges[u].push(v);
                indegree[v] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // Stable order: lowest query id first among ready plans.
    queue.sort_by_key(|&i| plans[i].query_id);
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::from(queue);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in &edges[u] {
            indegree[v] -= 1;
            if indegree[v] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() != n {
        return Err(TranslateError::CyclicDependency(context.to_string()));
    }
    let mut slots: Vec<Option<QueryPlan>> = plans.into_iter().map(Some).collect();
    Ok(order
        .into_iter()
        .map(|i| slots[i].take().expect("each index once"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{Event, PartitionId};
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    fn lr_registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        ))
        .unwrap();
        reg.register(Schema::new("ManySlowCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("FewFastCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg
    }

    fn translate_figure_three() -> (TranslationOutput, SchemaRegistry) {
        let model = parse_model(
            r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
            }
            CONTEXT congestion {
                DERIVE TollNotification(p.vid, p.sec, 5) PATTERN NewTravelingCar p
                DERIVE NewTravelingCar(p2.vid, p2.sec, p2.lane)
                    PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
                    WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != "exit"
                SWITCH CONTEXT clear PATTERN FewFastCars
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = lr_registry();
        let out =
            translate_query_set(&qs, &mut reg, &TranslateOptions { default_within: 60 }).unwrap();
        (out, reg)
    }

    #[test]
    fn figure_six_initial_plan_shape() {
        let (out, _reg) = translate_figure_three();
        let congestion = out.plan_for("congestion").unwrap();
        // Combined plan: NewTravelingCar producer must precede the
        // TollNotification consumer.
        let producer_idx = congestion
            .plans
            .iter()
            .position(|p| {
                p.source
                    .query
                    .derive
                    .as_ref()
                    .is_some_and(|d| d.event_type == "NewTravelingCar")
            })
            .unwrap();
        let consumer_idx = congestion
            .plans
            .iter()
            .position(|p| {
                p.source
                    .query
                    .derive
                    .as_ref()
                    .is_some_and(|d| d.event_type == "TollNotification")
            })
            .unwrap();
        assert!(producer_idx < consumer_idx, "topological order");

        // Initial chain order (Fig. 6a): Pattern, Filter, CW, Project.
        let producer = &congestion.plans[producer_idx];
        let tags: Vec<&str> = producer.ops.iter().map(Op::tag).collect();
        assert_eq!(tags, vec!["Pattern", "Filter", "ContextWindow", "Project"]);
        assert!(!producer.is_context_window_pushed_down());
    }

    #[test]
    fn negation_predicates_live_in_pattern_not_filter() {
        let (out, _reg) = translate_figure_three();
        let congestion = out.plan_for("congestion").unwrap();
        let producer = congestion
            .plans
            .iter()
            .find(|p| {
                p.source
                    .query
                    .derive
                    .as_ref()
                    .is_some_and(|d| d.event_type == "NewTravelingCar")
            })
            .unwrap();
        // Filter holds only the p2.lane != "exit" conjunct.
        let filter = producer
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Filter(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert_eq!(filter.predicates.len(), 1);
        // Pattern holds the two negation conjuncts.
        let pattern = producer
            .ops
            .iter()
            .find_map(|o| match o {
                Op::Pattern(p) => Some(p),
                _ => None,
            })
            .unwrap();
        assert!(!pattern.is_passthrough());
        assert_eq!(pattern.arity(), 1);
    }

    #[test]
    fn switch_compiles_to_init_then_term() {
        // Table 1 order: CI_c, CT_curr.
        let (out, _reg) = translate_figure_three();
        let clear = out.plan_for("clear").unwrap();
        let switch = &clear.plans[0];
        let tags: Vec<&str> = switch.ops.iter().map(Op::tag).collect();
        assert_eq!(
            tags,
            vec!["Pattern", "ContextWindow", "ContextInit", "ContextTerm"]
        );
        assert!(switch.is_deriving);
    }

    #[test]
    fn derived_type_registered_with_inferred_schema() {
        let (_out, reg) = translate_figure_three();
        let toll = reg.schema_by_name("TollNotification").unwrap();
        assert_eq!(toll.arity(), 3);
        assert_eq!(toll.attrs[0].name.as_ref(), "vid");
        assert_eq!(toll.attrs[1].name.as_ref(), "sec");
        assert_eq!(toll.attrs[2].name.as_ref(), "arg2");
        assert_eq!(toll.attrs[2].ty, AttrType::Int);
        // NewTravelingCar: vid, sec, lane (string preserved).
        let ntc = reg.schema_by_name("NewTravelingCar").unwrap();
        assert_eq!(ntc.attrs[2].ty, AttrType::Str);
    }

    #[test]
    fn end_to_end_congestion_toll_flow() {
        let (mut out, reg) = translate_figure_three();
        let mut table = crate::context_table::ContextTable::new(2, out.default_bit);
        // Activate congestion (bit = index of "congestion").
        let congestion_bit = out
            .context_names
            .iter()
            .position(|c| c == "congestion")
            .unwrap() as u8;
        table
            .partition_mut(PartitionId(0))
            .initiate(congestion_bit, 0);

        let pr_tid = reg.lookup("PositionReport").unwrap();
        let toll_tid = reg.lookup("TollNotification").unwrap();
        let plan = out
            .combined
            .iter_mut()
            .find(|c| c.context == "congestion")
            .unwrap();
        let mut sink = crate::plan::PlanOutput::default();
        // A car reporting at t=30 with no prior report is new → toll.
        let e = Event::simple(
            pr_tid,
            30,
            PartitionId(0),
            vec![
                Value::Int(77),
                Value::Int(30),
                Value::Int(55),
                Value::str("travel"),
            ],
        );
        plan.process(&e, &table, &mut sink);
        let tolls: Vec<&Event> = sink
            .events
            .iter()
            .filter(|e| e.type_id == toll_tid)
            .collect();
        assert_eq!(tolls.len(), 1);
        assert_eq!(tolls[0].attrs.as_ref()[0], Value::Int(77));
        assert_eq!(tolls[0].attrs.as_ref()[2], Value::Int(5));

        // The same car reporting 30s later is NOT new → no new toll.
        sink.clear();
        let e2 = Event::simple(
            pr_tid,
            60,
            PartitionId(0),
            vec![
                Value::Int(77),
                Value::Int(60),
                Value::Int(50),
                Value::str("travel"),
            ],
        );
        plan.process(&e2, &table, &mut sink);
        assert!(sink.events.iter().all(|e| e.type_id != toll_tid));
    }

    #[test]
    fn exit_lane_cars_are_not_tolled() {
        let (mut out, reg) = translate_figure_three();
        let mut table = crate::context_table::ContextTable::new(2, out.default_bit);
        let congestion_bit = out
            .context_names
            .iter()
            .position(|c| c == "congestion")
            .unwrap() as u8;
        table
            .partition_mut(PartitionId(0))
            .initiate(congestion_bit, 0);
        let pr_tid = reg.lookup("PositionReport").unwrap();
        let toll_tid = reg.lookup("TollNotification").unwrap();
        let plan = out
            .combined
            .iter_mut()
            .find(|c| c.context == "congestion")
            .unwrap();
        let mut sink = crate::plan::PlanOutput::default();
        let e = Event::simple(
            pr_tid,
            30,
            PartitionId(0),
            vec![
                Value::Int(9),
                Value::Int(30),
                Value::Int(55),
                Value::str("exit"),
            ],
        );
        plan.process(&e, &table, &mut sink);
        assert!(sink.events.iter().all(|ev| ev.type_id != toll_tid));
    }

    #[test]
    fn context_window_suspends_out_of_context_processing() {
        let (mut out, reg) = translate_figure_three();
        // Default context (clear) — congestion never initiated.
        let table = crate::context_table::ContextTable::new(2, out.default_bit);
        let pr_tid = reg.lookup("PositionReport").unwrap();
        let plan = out
            .combined
            .iter_mut()
            .find(|c| c.context == "congestion")
            .unwrap();
        let mut sink = crate::plan::PlanOutput::default();
        let e = Event::simple(
            pr_tid,
            30,
            PartitionId(0),
            vec![
                Value::Int(1),
                Value::Int(30),
                Value::Int(55),
                Value::str("travel"),
            ],
        );
        plan.process(&e, &table, &mut sink);
        assert!(
            sink.events.is_empty(),
            "congestion plan inactive in clear context"
        );
    }

    #[test]
    fn switch_transition_flow() {
        let (mut out, reg) = translate_figure_three();
        let table = crate::context_table::ContextTable::new(2, out.default_bit);
        let msc_tid = reg.lookup("ManySlowCars").unwrap();
        let clear_plan = out
            .combined
            .iter_mut()
            .find(|c| c.context == "clear")
            .unwrap();
        let mut sink = crate::plan::PlanOutput::default();
        let e = Event::simple(msc_tid, 100, PartitionId(0), vec![Value::Int(3)]);
        clear_plan.process(&e, &table, &mut sink);
        assert_eq!(sink.transitions.len(), 2);
        use crate::context_table::TransitionKind;
        assert_eq!(sink.transitions[0].kind, TransitionKind::Initiate);
        assert_eq!(sink.transitions[1].kind, TransitionKind::Terminate);
    }

    #[test]
    fn cyclic_derivation_is_rejected() {
        let model = parse_model(
            r#"
            MODEL m DEFAULT c
            CONTEXT c {
                DERIVE B(a.v) PATTERN A a
                DERIVE A(b.v) PATTERN B b
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        // Neither A nor B pre-registered: both derive from each other.
        let err = translate_query_set(&qs, &mut reg, &TranslateOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn unknown_pattern_type_is_reported() {
        let model = parse_model(
            r#"
            MODEL m DEFAULT c
            CONTEXT c {
                DERIVE B(a.v) PATTERN Ghost a
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        let err = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap_err();
        assert_eq!(err, TranslateError::UnknownEventType("Ghost".into()));
    }
}
