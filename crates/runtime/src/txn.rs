//! Stream transactions (§6.2, "Correct Context Management").
//!
//! "We define a stream transaction as a sequence of operations that are
//! triggered by all input events with the same time stamp. [...] An
//! algorithm for scheduling read and write operations on the shared
//! context data is correct if conflicting operations are processed
//! sorted by time stamps." Two operations conflict when they touch the
//! same context value and at least one writes.

use caesar_events::{EventBatch, PartitionId, Time};

/// The operations a stream transaction performs on shared context data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextOp {
    /// Context derivation reads the vector and may write transitions.
    DeriveWrite,
    /// Context-window routing reads the vector.
    RouteRead,
}

/// One stream transaction: all events of one timestamp in one partition,
/// wrapped with the operations they trigger.
#[derive(Debug, Clone)]
pub struct StreamTransaction {
    /// Application timestamp shared by every triggering event.
    pub time: Time,
    /// The stream partition (one transaction per road segment in the
    /// traffic use case).
    pub partition: PartitionId,
    /// The triggering events.
    pub batch: EventBatch,
}

impl StreamTransaction {
    /// Wraps a batch into a transaction.
    #[must_use]
    pub fn new(partition: PartitionId, batch: EventBatch) -> Self {
        Self {
            time: batch.time,
            partition,
            batch,
        }
    }

    /// Conflict test (§6.2 footnote): same partition's context data, at
    /// least one side writing. Derivation writes; routing reads; within
    /// one partition any pair involving derivation conflicts.
    #[must_use]
    pub fn conflicts_with(&self, other: &StreamTransaction, a: ContextOp, b: ContextOp) -> bool {
        self.partition == other.partition
            && (a == ContextOp::DeriveWrite || b == ContextOp::DeriveWrite)
    }

    /// Correct schedules process conflicting transactions in timestamp
    /// order; this helper checks a proposed order.
    #[must_use]
    pub fn is_correct_order(transactions: &[StreamTransaction]) -> bool {
        // For each partition, timestamps must be non-decreasing.
        let mut last: std::collections::HashMap<PartitionId, Time> =
            std::collections::HashMap::new();
        for t in transactions {
            if let Some(&prev) = last.get(&t.partition) {
                if t.time < prev {
                    return false;
                }
            }
            last.insert(t.partition, t.time);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::{Event, TypeId, Value};

    fn txn(p: u32, t: Time) -> StreamTransaction {
        let batch = EventBatch::new(
            t,
            vec![Event::simple(
                TypeId(0),
                t,
                PartitionId(p),
                vec![Value::Int(0)],
            )],
        );
        StreamTransaction::new(PartitionId(p), batch)
    }

    #[test]
    fn transaction_time_matches_batch() {
        let t = txn(0, 42);
        assert_eq!(t.time, 42);
        assert_eq!(t.batch.len(), 1);
    }

    #[test]
    fn derive_conflicts_with_everything_same_partition() {
        let a = txn(0, 1);
        let b = txn(0, 2);
        assert!(a.conflicts_with(&b, ContextOp::DeriveWrite, ContextOp::RouteRead));
        assert!(a.conflicts_with(&b, ContextOp::RouteRead, ContextOp::DeriveWrite));
        assert!(a.conflicts_with(&b, ContextOp::DeriveWrite, ContextOp::DeriveWrite));
        assert!(!a.conflicts_with(&b, ContextOp::RouteRead, ContextOp::RouteRead));
    }

    #[test]
    fn cross_partition_transactions_never_conflict() {
        let a = txn(0, 1);
        let b = txn(1, 1);
        assert!(!a.conflicts_with(&b, ContextOp::DeriveWrite, ContextOp::DeriveWrite));
    }

    #[test]
    fn order_check_is_per_partition() {
        // Interleaved partitions are fine as long as each partition's
        // own timestamps are sorted.
        let ok = vec![txn(0, 1), txn(1, 5), txn(0, 2), txn(1, 6)];
        assert!(StreamTransaction::is_correct_order(&ok));
        let bad = vec![txn(0, 2), txn(0, 1)];
        assert!(!StreamTransaction::is_correct_order(&bad));
    }

    #[test]
    fn same_timestamp_is_allowed() {
        let ok = vec![txn(0, 1), txn(0, 1)];
        assert!(StreamTransaction::is_correct_order(&ok));
    }
}
