//! Synthetic overlapping-context workload (§7.3.2, Figure 14).
//!
//! `windows` context types (`w0 … wN-1`) open staggered windows on the
//! timeline: window `i` spans `[i·step, i·step + length]`, so smaller
//! steps mean more windows open simultaneously. Every context carries
//! the *same* `queries_per_context` processing queries (pair patterns
//! over kind-tagged readings), which is exactly the sharing opportunity
//! the context window grouping of Listing 1 exploits: shared execution
//! runs each distinct query once per time slice, the non-shared baseline
//! runs one copy per open window.

use caesar_core::prelude::*;
use caesar_core::CaesarSystem;
use caesar_events::generator::rng;
use caesar_query::parser::parse_model;
use rand::Rng;
use std::fmt::Write;

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct OverlapConfig {
    /// Number of context types / windows.
    pub windows: usize,
    /// Window length in ticks.
    pub length: Time,
    /// Start-to-start distance of consecutive windows
    /// (`overlap = length − step` when positive).
    pub step: Time,
    /// Identical (shareable) queries per context.
    pub queries_per_context: usize,
    /// Context-specific (non-shareable) queries per context — the fixed
    /// per-window work against which Figure 14(c)'s growing shareable
    /// workload is contrasted.
    pub unique_queries_per_context: usize,
    /// Readings per tick.
    pub readings_per_tick: usize,
    /// Quiet ticks after the last window closes.
    pub tail: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        // The paper's §7.3.2 default: 30 windows of length 15 minutes
        // overlapping by 10 minutes (step 5), 4 queries each — scaled
        // to ticks (1 tick = 1 second, 1 "minute" = 4 ticks keeps runs
        // fast while preserving every ratio).
        Self {
            windows: 30,
            length: 60,
            step: 20,
            queries_per_context: 4,
            unique_queries_per_context: 0,
            readings_per_tick: 3,
            tail: 40,
            seed: 5,
        }
    }
}

impl OverlapConfig {
    /// Total experiment duration.
    #[must_use]
    pub fn duration(&self) -> Time {
        self.last_window_end() + self.tail
    }

    fn window_span(&self, i: usize) -> (Time, Time) {
        let start = i as Time * self.step;
        (start, start + self.length)
    }

    fn last_window_end(&self) -> Time {
        self.window_span(self.windows.saturating_sub(1)).1
    }

    /// Maximum number of windows open at any instant.
    #[must_use]
    pub fn max_simultaneous(&self) -> usize {
        if self.step == 0 {
            return self.windows;
        }
        ((self.length / self.step) as usize + 1).min(self.windows)
    }
}

/// Builds the workload's CAESAR model.
#[must_use]
pub fn overlap_model(config: &OverlapConfig) -> CaesarModel {
    let mut quiet = String::new();
    for i in 0..config.windows {
        // Window i may open from quiet or while the previous window is
        // still active.
        let scope = if i == 0 {
            "quiet".to_string()
        } else {
            format!("quiet, w{}", i - 1)
        };
        let _ = writeln!(
            quiet,
            "INITIATE CONTEXT w{i} PATTERN Start s WHERE s.idx = {i} CONTEXT {scope}"
        );
    }
    let mut contexts = String::new();
    for i in 0..config.windows {
        let mut body = format!("TERMINATE CONTEXT w{i} PATTERN End e WHERE e.idx = {i}\n");
        for j in 0..config.queries_per_context {
            // Identical across contexts → shareable; distinct per j via
            // the projected constant only, so every query pays the full
            // pair-matching cost over the whole reading stream.
            let _ = writeln!(
                body,
                "DERIVE Out{j}(b.v, b.sec, {j}) PATTERN SEQ(R a, R b) \
                 WHERE a.v = b.v"
            );
        }
        for u in 0..config.unique_queries_per_context {
            // The window index in the predicate makes the query unique
            // to its context: never shared.
            let _ = writeln!(
                body,
                "DERIVE Uniq{i}_{u}(b.v, b.sec) PATTERN SEQ(R a, R b) \
                 WHERE a.v = b.v AND a.v = {m}",
                m = (i + u) % 8
            );
        }
        let _ = writeln!(contexts, "CONTEXT w{i} {{\n{body}\n}}");
    }
    let text = format!("MODEL overlap DEFAULT quiet\nCONTEXT quiet {{\n{quiet}\n}}\n{contexts}");
    parse_model(&text).expect("generated overlap model is valid")
}

/// Builds a runnable system for the workload.
///
/// # Panics
/// Never for valid configurations.
#[must_use]
pub fn build_system(config: &OverlapConfig, sharing: bool) -> CaesarSystem {
    build_system_clocked(config, sharing, EngineConfig::default().ns_per_tick)
}

/// [`build_system`] with an explicit arrival-clock scale.
#[must_use]
pub fn build_system_clocked(
    config: &OverlapConfig,
    sharing: bool,
    ns_per_tick: u64,
) -> CaesarSystem {
    Caesar::builder()
        .model(overlap_model(config))
        .schema(
            "R",
            &[
                ("v", AttrType::Int),
                ("kind", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        )
        .schema("Start", &[("idx", AttrType::Int), ("sec", AttrType::Int)])
        .schema("End", &[("idx", AttrType::Int), ("sec", AttrType::Int)])
        .within(20)
        .engine_config(
            EngineConfig::builder()
                .sharing(sharing)
                .ns_per_tick(ns_per_tick)
                .build(),
        )
        .build()
        .expect("overlap model builds")
}

/// Generates the workload stream: window markers plus kind-tagged
/// readings at the configured rate.
#[must_use]
pub fn overlap_stream(config: &OverlapConfig, system: &CaesarSystem) -> Vec<Event> {
    let mut r = rng(config.seed);
    let mut events = Vec::new();
    for (i, (start, end)) in (0..config.windows).map(|i| (i, config.window_span(i))) {
        events.push(
            system
                .event("Start", start)
                .expect("Start registered")
                .attr("idx", i as i64)
                .expect("idx")
                .attr("sec", start as i64)
                .expect("sec")
                .build()
                .expect("valid"),
        );
        events.push(
            system
                .event("End", end)
                .expect("End registered")
                .attr("idx", i as i64)
                .expect("idx")
                .attr("sec", end as i64)
                .expect("sec")
                .build()
                .expect("valid"),
        );
    }
    let kinds = config.queries_per_context.max(1) as i64;
    for t in 0..config.duration() {
        for _ in 0..config.readings_per_tick {
            let e = system
                .event("R", t)
                .expect("R registered")
                .attr("v", r.gen_range(0..8i64))
                .expect("v")
                .attr("kind", r.gen_range(0..kinds))
                .expect("kind")
                .attr("sec", t as i64)
                .expect("sec")
                .build()
                .expect("valid");
            events.push(e);
        }
    }
    events.sort_by_key(Event::time);
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OverlapConfig {
        OverlapConfig {
            windows: 3,
            length: 30,
            step: 10,
            queries_per_context: 2,
            unique_queries_per_context: 1,
            readings_per_tick: 2,
            tail: 10,
            seed: 1,
        }
    }

    #[test]
    fn model_builds_and_counts_match() {
        let config = tiny();
        let model = overlap_model(&config);
        assert_eq!(model.contexts.len(), 4, "quiet + 3 windows");
        // 2 shareable + 1 context-unique query per window.
        assert_eq!(model.context("w1").unwrap().processing.len(), 3);
        assert_eq!(config.max_simultaneous(), 3);
    }

    #[test]
    fn shared_mode_deduplicates_overlap_results() {
        // With overlapping windows the non-shared baseline emits one
        // copy of each result per covering window; grouping "deletes
        // duplicate event queries" (Listing 1), so shared counts are
        // strictly smaller but never zero.
        let config = tiny();
        let mut shared = build_system(&config, true);
        let mut plain = build_system(&config, false);
        let events = overlap_stream(&config, &shared);
        let rs = shared
            .run_stream(&mut VecStream::new(events.clone()))
            .unwrap();
        let rp = plain.run_stream(&mut VecStream::new(events)).unwrap();
        for j in 0..config.queries_per_context {
            let ty = format!("Out{j}");
            assert!(rs.outputs_of(&ty) > 0, "{ty} produced nothing");
            assert!(
                rs.outputs_of(&ty) <= rp.outputs_of(&ty),
                "shared must not out-produce non-shared for {ty}"
            );
        }
    }

    #[test]
    fn without_overlap_shared_and_non_shared_agree_exactly() {
        let config = OverlapConfig {
            windows: 3,
            length: 30,
            step: 50, // disjoint windows
            tail: 20,
            ..tiny()
        };
        let mut shared = build_system(&config, true);
        let mut plain = build_system(&config, false);
        let events = overlap_stream(&config, &shared);
        let rs = shared
            .run_stream(&mut VecStream::new(events.clone()))
            .unwrap();
        let rp = plain.run_stream(&mut VecStream::new(events)).unwrap();
        for j in 0..config.queries_per_context {
            let ty = format!("Out{j}");
            assert_eq!(rs.outputs_of(&ty), rp.outputs_of(&ty), "{ty}");
            assert!(rs.outputs_of(&ty) > 0);
        }
    }

    #[test]
    fn outputs_only_inside_windows() {
        let config = OverlapConfig {
            windows: 1,
            length: 20,
            step: 100,
            tail: 60,
            ..tiny()
        };
        let mut system = build_system(&config, true);
        let events = overlap_stream(&config, &system);
        let report = system.run_stream(&mut VecStream::new(events)).unwrap();
        // Readings continue through the tail; pairs must only have
        // formed inside the single window.
        assert!(report.outputs_of("Out0") > 0);
        assert!(report.plans_suspended > 0, "tail must suspend the plans");
    }

    #[test]
    fn stream_is_deterministic() {
        let config = tiny();
        let system = build_system(&config, true);
        let a = overlap_stream(&config, &system);
        let b = overlap_stream(&config, &system);
        assert_eq!(a, b);
    }
}
