//! Crash/recovery integration tests on a small hand-built model: every
//! crash point, plus corruption and version-mismatch handling.

use caesar_core::{Caesar, CaesarBuilder};
use caesar_events::{AttrType, Event};
use caesar_recovery::{
    crash_and_recover, read_snapshot, snapshot_path, CheckpointManager, RecoveryError,
};
use caesar_runtime::Engine;
use caesar_runtime::EngineConfig;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "caesar-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn builder() -> CaesarBuilder {
    Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        )
        .schema("ManySlowCars", &[("seg", AttrType::Int)])
        .schema("FewFastCars", &[("seg", AttrType::Int)])
        .model_text(
            r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
            }
            CONTEXT congestion {
                SWITCH CONTEXT clear PATTERN FewFastCars
                DERIVE TollNotification(p.vid, p.sec, 5)
                    PATTERN PositionReport p WHERE p.lane != "exit"
            }
        "#,
        )
        .engine_config(EngineConfig::builder().collect_outputs(true).build())
}

fn build_engine() -> Engine {
    builder().build().expect("model builds").engine
}

/// An input stream that switches contexts a few times so the snapshot
/// has to carry non-trivial context histories and pattern state.
fn stream() -> Vec<Event> {
    let system = builder().build().expect("model builds");
    let mut events = Vec::new();
    let mut push = |type_name: &str, t: u64, attrs: &[(&str, i64)], lane: Option<&str>| {
        let mut b = system.event(type_name, t).expect("known type");
        for (name, v) in attrs {
            b = b.attr(name, *v).expect("known attr");
        }
        if let Some(lane) = lane {
            b = b.attr("lane", lane).expect("known attr");
        }
        events.push(b.build().expect("complete event"));
    };
    let mut t = 1;
    for round in 0..4i64 {
        push("ManySlowCars", t, &[("seg", round)], None);
        t += 1;
        for i in 0..6i64 {
            let lane = if i % 3 == 0 { "exit" } else { "travel" };
            push(
                "PositionReport",
                t,
                &[("vid", 100 + i), ("sec", t as i64)],
                Some(lane),
            );
            t += 1;
        }
        push("FewFastCars", t, &[("seg", round)], None);
        t += 2;
    }
    events
}

#[test]
fn every_crash_point_recovers_byte_identically() {
    let events = stream();
    for every in [3u64, 7] {
        for crash_after in 0..=events.len() {
            let dir = temp_dir("allpoints");
            let report = crash_and_recover(build_engine, &events, &dir, every, crash_after)
                .expect("crash/recover runs");
            assert!(
                report.is_equivalent(),
                "crash at {crash_after}/{} with cadence {every}: \
                 baseline {} outputs vs recovered {}",
                events.len(),
                report.baseline_outputs.len(),
                report.recovered_outputs.len(),
            );
            assert!(
                !report.baseline_outputs.is_empty(),
                "test stream is trivial"
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn recovery_skips_wal_prefix_covered_by_snapshot() {
    // Simulate a crash *between* snapshot write and log rebase: take a
    // checkpoint manually, then overwrite the log with one whose base is
    // older than the snapshot position. Resume must skip the covered
    // prefix instead of double-applying it.
    let events = stream();
    let dir = temp_dir("prefix");
    let mut manager = CheckpointManager::create(&dir, 0).expect("create");
    let mut engine = build_engine();
    for event in &events[..10] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("ingest");
    }
    manager.checkpoint(&engine).expect("checkpoint at 10");
    drop(manager);
    drop(engine);

    // Forge the pre-rebase log: base 0, all 10 events still present.
    let mut stale =
        caesar_recovery::WalWriter::create(&caesar_recovery::wal_path(&dir), 0).expect("stale wal");
    for event in &events[..10] {
        stale.append(event).expect("append");
    }
    stale.sync().expect("sync");
    drop(stale);

    let mut revived = build_engine();
    let manager = CheckpointManager::resume(&dir, 0, &mut revived).expect("resume");
    assert_eq!(manager.position(), 10, "snapshot position wins");
    assert_eq!(revived.events_in(), 10, "no event was double-applied");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_a_checksum_error() {
    let events = stream();
    let dir = temp_dir("corrupt");
    let mut manager = CheckpointManager::create(&dir, 0).expect("create");
    let mut engine = build_engine();
    for event in &events[..8] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("ingest");
    }
    manager.checkpoint(&engine).expect("checkpoint");
    drop(manager);

    let snap = snapshot_path(&dir);
    let mut data = fs::read(&snap).expect("snapshot exists");
    let mid = 40 + (data.len() - 40) / 2;
    data[mid] ^= 0xFF;
    fs::write(&snap, &data).expect("rewrite");

    assert!(matches!(
        read_snapshot(&snap),
        Err(RecoveryError::ChecksumMismatch { .. })
    ));
    let mut revived = build_engine();
    assert!(matches!(
        CheckpointManager::resume(&dir, 0, &mut revived),
        Err(RecoveryError::ChecksumMismatch { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn future_snapshot_version_is_a_version_error() {
    let events = stream();
    let dir = temp_dir("version");
    let mut manager = CheckpointManager::create(&dir, 0).expect("create");
    let mut engine = build_engine();
    for event in &events[..5] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("ingest");
    }
    manager.checkpoint(&engine).expect("checkpoint");
    drop(manager);

    let snap = snapshot_path(&dir);
    let mut data = fs::read(&snap).expect("snapshot exists");
    let future = caesar_recovery::SNAPSHOT_VERSION + 1;
    data[8..12].copy_from_slice(&future.to_le_bytes());
    fs::write(&snap, &data).expect("rewrite");

    match read_snapshot(&snap) {
        Err(RecoveryError::VersionMismatch {
            found, expected, ..
        }) => {
            assert_eq!(found, future);
            assert_eq!(expected, caesar_recovery::SNAPSHOT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_from_different_model_is_incompatible() {
    let events = stream();
    let dir = temp_dir("incompat");
    let mut manager = CheckpointManager::create(&dir, 0).expect("create");
    let mut engine = build_engine();
    for event in &events[..5] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("ingest");
    }
    manager.checkpoint(&engine).expect("checkpoint");
    drop(manager);

    // An engine with a different configuration must refuse the snapshot.
    let mut other = builder()
        .engine_config(
            EngineConfig::builder()
                .collect_outputs(true)
                .gc_every(777)
                .build(),
        )
        .build()
        .expect("model builds")
        .engine;
    assert!(matches!(
        CheckpointManager::resume(&dir, 0, &mut other),
        Err(RecoveryError::Incompatible(_))
    ));
    let _ = fs::remove_dir_all(&dir);
}
