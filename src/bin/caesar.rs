//! `caesar` — command-line driver for the CAESAR engine.
//!
//! ```text
//! caesar check   --model traffic.caesar
//! caesar explain --model traffic.caesar --schema traffic.schema
//! caesar run     --model traffic.caesar --schema traffic.schema \
//!                --events day1.events [--mode ci] [--no-sharing] \
//!                [--within 60]
//! ```

use caesar::cli::{build_system, run, RunOptions};
use caesar::prelude::*;
use caesar::query::dot::model_to_dot;
use caesar::query::parse_model;
use caesar::query::pretty::model_to_string;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  caesar check   --model FILE
  caesar dot     --model FILE            (Graphviz transition network)
  caesar explain --model FILE --schema FILE [--within N]
  caesar run     --model FILE --schema FILE --events FILE
                 [--mode ca|ci] [--no-sharing] [--within N]
                 [--batch-size N] [--no-vectorize]
                 [--checkpoint-dir DIR] [--checkpoint-every-events N]

--batch-size caps how many same-timestamp events the hot path groups
into one dispatch (default: uncapped batching; 1 = event-at-a-time,
the comparison baseline). Results are identical for every setting.

--no-vectorize disables the vectorized predicate kernels of the batch
path, falling back to the batched row interpreter. Results are
identical either way.

with --checkpoint-dir, the run writes durable snapshots + an event log
to DIR every N events (default 10000; 0 = snapshot only at the end) and
resumes from DIR if a previous run of the same model was interrupted";

fn dispatch(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("no command given")?;
    let flag = |name: &str| -> Option<&str> {
        args.windows(2)
            .find(|w| w[0] == name)
            .map(|w| w[1].as_str())
    };
    let read = |name: &str| -> Result<String, String> {
        let path = flag(name).ok_or_else(|| format!("missing {name} FILE"))?;
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let mut options = RunOptions::default();
    if let Some(w) = flag("--within") {
        options.within = w.parse().map_err(|e| format!("--within: {e}"))?;
    }
    if flag("--mode") == Some("ci") {
        options.mode = ExecutionMode::ContextIndependent;
    }
    if args.iter().any(|a| a == "--no-sharing") {
        options.sharing = false;
    }
    if let Some(dir) = flag("--checkpoint-dir") {
        options.checkpoint_dir = Some(dir.into());
    }
    if let Some(n) = flag("--checkpoint-every-events") {
        options.checkpoint_every = n
            .parse()
            .map_err(|e| format!("--checkpoint-every-events: {e}"))?;
    }
    if let Some(n) = flag("--batch-size") {
        options.batch_size = Some(n.parse().map_err(|e| format!("--batch-size: {e}"))?);
    }
    if args.iter().any(|a| a == "--no-vectorize") {
        options.vectorize = false;
    }

    match command.as_str() {
        "check" => {
            let model_text = read("--model")?;
            let model = parse_model(&model_text).map_err(|e| e.to_string())?;
            Ok(format!(
                "model '{}' is valid: {} contexts, {} queries\n\n{}",
                model.name,
                model.contexts.len(),
                model.query_count(),
                model_to_string(&model)
            ))
        }
        "dot" => {
            let model_text = read("--model")?;
            let model = parse_model(&model_text).map_err(|e| e.to_string())?;
            Ok(model_to_dot(&model))
        }
        "explain" => {
            let model_text = read("--model")?;
            let schema_text = read("--schema")?;
            let system =
                build_system(&model_text, &schema_text, &options).map_err(|e| e.to_string())?;
            Ok(system.explain)
        }
        "run" => {
            let model_text = read("--model")?;
            let schema_text = read("--schema")?;
            let events_text = read("--events")?;
            run(&model_text, &schema_text, &events_text, &options).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
