//! Multi-tenant server loopback load generator.
//!
//! Starts an in-process `caesar-server` hosting independent tenants
//! (one traffic model each, sharded), then drives one framed TCP
//! connection per tenant with windowed pipelined `INGEST` frames and
//! measures sustained acknowledged throughput. Every tenant is
//! `FINISH`ed at the end and its report must account for every event
//! sent — an ack that outruns processing would show up here.
//!
//! Defaults: 8 tenants × 2 shards, 128 partitions per tenant (1024
//! concurrent partitions), 150k events per tenant (1.2M total), frames
//! of 512 events, ack window of 8 frames.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin server_load
//! ```
//!
//! Besides the printed table, results are written to
//! `BENCH_server.json` in the current directory; EXPERIMENTS.md
//! records a committed run. Knobs (environment variables):
//! `CAESAR_LOAD_TENANTS`, `CAESAR_LOAD_SHARDS`,
//! `CAESAR_LOAD_PARTITIONS` (per tenant), `CAESAR_LOAD_EVENTS` (per
//! tenant), `CAESAR_LOAD_FRAME` (events per frame),
//! `CAESAR_LOAD_WINDOW` (frames in flight).

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_server::{Client, Request, Response, Server, ServerConfig, TenantConfig};
use std::time::Instant;

const MODEL: &str = r#"
    MODEL traffic DEFAULT clear
    CONTEXT clear {
        SWITCH CONTEXT congestion PATTERN ManySlowCars
    }
    CONTEXT congestion {
        SWITCH CONTEXT clear PATTERN FewFastCars
        DERIVE TollNotification(p.vid, p.sec, 5)
            PATTERN PositionReport p WHERE p.lane != "exit"
    }
"#;

fn builder() -> CaesarBuilder {
    Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        )
        .schema("ManySlowCars", &[("seg", AttrType::Int)])
        .schema("FewFastCars", &[("seg", AttrType::Int)])
        .model_text(MODEL)
}

/// Deterministic timestamp-ordered stream over `partitions` partitions
/// with periodic context switches (seeded per tenant so tenants do not
/// send identical bytes).
fn gen_events(n: usize, partitions: u32, salt: u64) -> Vec<Event> {
    let sys = builder().build().expect("load model builds");
    let mut out = Vec::with_capacity(n + n / 10);
    for t in 1..=n as u64 {
        let p = PartitionId(
            ((t.wrapping_mul(2654435761).wrapping_add(salt)) % u64::from(partitions)) as u32,
        );
        if t % 40 == 1 {
            let e = sys
                .event("ManySlowCars", t)
                .unwrap()
                .partition(p)
                .attr("seg", 1i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        if t % 40 == 25 {
            let e = sys
                .event("FewFastCars", t)
                .unwrap()
                .partition(p)
                .attr("seg", 1i64)
                .unwrap()
                .build()
                .unwrap();
            out.push(e);
        }
        let lane = if t % 7 == 0 { "exit" } else { "travel" };
        let e = sys
            .event("PositionReport", t)
            .unwrap()
            .partition(p)
            .attr("vid", ((t ^ salt) % 997) as i64)
            .unwrap()
            .attr("sec", t as i64)
            .unwrap()
            .attr("lane", lane)
            .unwrap()
            .build()
            .unwrap();
        out.push(e);
    }
    out
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(default)
}

struct ConnResult {
    tenant: String,
    events: u64,
    events_out: u64,
    elapsed_s: f64,
}

/// Drives one tenant over one connection: windowed pipelined ingest,
/// then `FINISH`, asserting the report covers every event sent.
fn drive(
    addr: std::net::SocketAddr,
    tenant: String,
    events: Vec<Event>,
    frame: usize,
    window: usize,
) -> ConnResult {
    let mut client = Client::connect(addr).expect("connect");
    let total = events.len() as u64;
    let chunks: Vec<&[Event]> = events.chunks(frame.max(1)).collect();
    let start = Instant::now();
    let mut in_flight = 0usize;
    for chunk in &chunks {
        client
            .send(&Request::Ingest {
                tenant: tenant.clone(),
                events: chunk.to_vec(),
            })
            .expect("send");
        in_flight += 1;
        if in_flight >= window.max(1) {
            expect_ack(&mut client, &tenant);
            in_flight -= 1;
        }
    }
    for _ in 0..in_flight {
        expect_ack(&mut client, &tenant);
    }
    let elapsed_s = start.elapsed().as_secs_f64();
    let report = match client.roundtrip(&Request::Finish {
        tenant: tenant.clone(),
    }) {
        Ok(Response::Report(report)) => report,
        other => panic!("tenant {tenant}: finish reply {other:?}"),
    };
    assert_eq!(
        report.events_in, total,
        "tenant {tenant}: report must account for every acked event"
    );
    ConnResult {
        tenant,
        events: total,
        events_out: report.events_out,
        elapsed_s,
    }
}

fn expect_ack(client: &mut Client, tenant: &str) {
    match client.recv_control() {
        Ok(Some(Response::Ack)) => {}
        other => panic!("tenant {tenant}: expected ack, got {other:?}"),
    }
}

fn main() {
    let tenants = env_usize("CAESAR_LOAD_TENANTS", 8).max(1);
    let shards = env_usize("CAESAR_LOAD_SHARDS", 2).max(1);
    let partitions = env_usize("CAESAR_LOAD_PARTITIONS", 128).max(1) as u32;
    let events_per_tenant = env_usize("CAESAR_LOAD_EVENTS", 150_000).max(1);
    let frame = env_usize("CAESAR_LOAD_FRAME", 512);
    let window = env_usize("CAESAR_LOAD_WINDOW", 8);

    let mut configs = Vec::with_capacity(tenants);
    for i in 0..tenants {
        let (program, registry, _explain) = builder().build_program().expect("load model builds");
        let mut tc = TenantConfig::new(format!("t{i}"), program, registry);
        tc.shards = shards;
        tc.queue_capacity = 4096;
        configs.push(tc);
    }
    let handle = Server::start(ServerConfig {
        tenants: configs,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = handle.addr();

    println!(
        "loopback load: {tenants} tenants x {shards} shards, {} partitions total, \
         {events_per_tenant} events/tenant, frames of {frame}, window {window}",
        tenants as u32 * partitions
    );

    let start = Instant::now();
    let threads: Vec<_> = (0..tenants)
        .map(|i| {
            let tenant = format!("t{i}");
            let events = gen_events(events_per_tenant, partitions, 0x9E37 * (i as u64 + 1));
            std::thread::spawn(move || drive(addr, tenant, events, frame, window))
        })
        .collect();
    let results: Vec<ConnResult> = threads
        .into_iter()
        .map(|t| t.join().expect("connection thread"))
        .collect();
    let wall_s = start.elapsed().as_secs_f64();

    handle.shutdown();
    let summary = handle.join();
    assert!(summary.clean(), "{:?}", summary.tenants);

    let events_total: u64 = results.iter().map(|r| r.events).sum();
    let aggregate_evs = events_total as f64 / wall_s;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.tenant.clone(),
                r.events.to_string(),
                r.events_out.to_string(),
                format!("{:.3}", r.elapsed_s),
                format!("{:.0}", r.events as f64 / r.elapsed_s),
            ]
        })
        .collect();
    print_table(
        "multi-tenant loopback ingest (acked, processed-on-finish)",
        &["tenant", "events", "outputs", "secs", "events/s"],
        &rows,
    );
    println!(
        "\naggregate: {events_total} events in {wall_s:.3}s = {aggregate_evs:.0} events/s sustained"
    );

    let json_rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                " {{\"tenant\": \"{}\", \"events\": {}, \"events_out\": {}, \"elapsed_s\": {:.3}, \"events_per_sec\": {:.1}}}",
                r.tenant,
                r.events,
                r.events_out,
                r.elapsed_s,
                r.events as f64 / r.elapsed_s
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"multi-tenant server loopback ingest\",\n\
         \"unit\": \"acknowledged events per second of wall time; every ack verified against the FINISH report\",\n\
         \"config\": {{\"tenants\": {tenants}, \"shards_per_tenant\": {shards}, \
         \"partitions_per_tenant\": {partitions}, \"partitions_total\": {}, \
         \"connections\": {tenants}, \"events_per_tenant\": {events_per_tenant}, \
         \"frame_events\": {frame}, \"window_frames\": {window}}},\n\
         \"rows\": [\n{}\n],\n\
         \"aggregate\": {{\"events\": {events_total}, \"elapsed_s\": {wall_s:.3}, \"events_per_sec\": {aggregate_evs:.1}}}\n}}\n",
        tenants as u32 * partitions,
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
