//! End-to-end tests of the statistics-gatherer feedback loop (observe →
//! re-optimize with measured statistics) and of the sharded parallel
//! executor on the Linear Road workload.

use caesar::linear_road::{expected_outputs, lr_model, lr_registry, LinearRoadConfig, TrafficSim};
use caesar::optimizer::{Optimizer, OptimizerConfig};
use caesar::prelude::*;
use caesar::query::QuerySet;
use caesar::runtime::{run_sharded, Engine};

fn lr_program(registry: &mut SchemaRegistry) -> caesar::optimizer::optimizer::OptimizedProgram {
    let model = lr_model(2);
    let qs = QuerySet::from_model(&model).unwrap();
    let translation = caesar::algebra::translate::translate_query_set(
        &qs,
        registry,
        &caesar::algebra::translate::TranslateOptions { default_within: 60 },
    )
    .unwrap();
    Optimizer::default().optimize(translation, registry)
}

fn lr_stream(seed: u64) -> (Vec<Event>, SchemaRegistry) {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        segments_per_road: 5,
        duration: 600,
        seed,
        ..Default::default()
    });
    let events = sim.generate();
    (events, sim.registry().clone())
}

#[test]
fn gathered_stats_reflect_the_stream() {
    let (events, _) = lr_stream(3);
    let mut registry = lr_registry();
    let program = lr_program(&mut registry);
    let mut engine = Engine::new(program, &registry, EngineConfig::default());
    let _ = engine.run_stream(&mut VecStream::new(events)).unwrap();
    let obs = engine.gather_stats();

    // Position reports dominate the input.
    let pr = registry.lookup("PositionReport").unwrap();
    let pr_count = obs.inputs_by_type.get(&pr).copied().unwrap_or(0);
    assert!(pr_count > 100, "position reports observed: {pr_count}");
    assert!(obs.progress > 0);

    let stats = obs.to_stats();
    assert!(stats.rate(pr) > 0.1, "rate {:.4}", stats.rate(pr));
    // Context activities observed for at least one bit, all in [0, 1].
    assert!(!obs.window_counts.is_empty());
    for &bit in obs.window_counts.keys() {
        let a = stats.activity(bit);
        assert!((0.0..=1.0).contains(&a));
    }
    // Filter selectivities observed (lane != "exit" accepts most).
    assert!(!obs.filter_selectivities.is_empty());
    let summary = obs.summary();
    assert!(summary.contains("rate["), "{summary}");
}

#[test]
fn reoptimizing_with_observed_stats_preserves_results() {
    let (events, _) = lr_stream(4);
    let mut registry = lr_registry();
    let program = lr_program(&mut registry);
    let mut engine = Engine::new(program, &registry, EngineConfig::default());
    let first = engine
        .run_stream(&mut VecStream::new(events.clone()))
        .unwrap();
    let observed = engine.gather_stats().to_stats();

    // Adaptive loop: re-translate and re-optimize with observed stats.
    let mut registry2 = lr_registry();
    let model = lr_model(2);
    let qs = QuerySet::from_model(&model).unwrap();
    let translation = caesar::algebra::translate::translate_query_set(
        &qs,
        &mut registry2,
        &caesar::algebra::translate::TranslateOptions { default_within: 60 },
    )
    .unwrap();
    let program2 =
        Optimizer::new(OptimizerConfig::default(), observed).optimize(translation, &registry2);
    assert!(program2.cost_after <= program2.cost_before);
    let mut engine2 = Engine::new(program2, &registry2, EngineConfig::default());
    let second = engine2.run_stream(&mut VecStream::new(events)).unwrap();
    assert_eq!(
        first.outputs_of("TollNotification"),
        second.outputs_of("TollNotification")
    );
    assert_eq!(first.outputs_of("ZeroToll"), second.outputs_of("ZeroToll"));
}

#[test]
fn sharded_execution_matches_oracle() {
    let (events, sim_registry) = lr_stream(5);
    let oracle = expected_outputs(&events, &sim_registry);
    let mut registry = lr_registry();
    let program = lr_program(&mut registry);
    for shards in [1usize, 2, 5] {
        let report = run_sharded(
            &program,
            &registry,
            EngineConfig::default(),
            shards,
            &mut VecStream::new(events.clone()),
        )
        .unwrap();
        assert_eq!(
            report.outputs_of("TollNotification"),
            oracle.real_tolls,
            "{shards} shards"
        );
        assert_eq!(report.outputs_of("ZeroToll"), oracle.zero_tolls);
        assert_eq!(
            report.outputs_of("AccidentWarning"),
            oracle.accident_warnings
        );
        // Replicated copies too.
        assert_eq!(report.outputs_of("TollNotification_1"), oracle.real_tolls);
    }
}
