//! CAESAR — Context-Aware Event Stream Analytics in Real time.
//!
//! This crate is the public facade of the CAESAR reproduction (Poppe,
//! Lei, Rundensteiner, Dougherty — EDBT 2016): specify a context-aware
//! application model, let the optimizer push context windows down and
//! share overlapping workloads, and run event streams through the
//! runtime.
//!
//! ```
//! use caesar_core::prelude::*;
//!
//! let mut system = Caesar::builder()
//!     .schema("PositionReport", &[
//!         ("vid", AttrType::Int),
//!         ("sec", AttrType::Int),
//!         ("lane", AttrType::Str),
//!     ])
//!     .schema("ManySlowCars", &[("seg", AttrType::Int)])
//!     .schema("FewFastCars", &[("seg", AttrType::Int)])
//!     .model_text(r#"
//!         MODEL traffic DEFAULT clear
//!         CONTEXT clear {
//!             SWITCH CONTEXT congestion PATTERN ManySlowCars
//!         }
//!         CONTEXT congestion {
//!             SWITCH CONTEXT clear PATTERN FewFastCars
//!             DERIVE TollNotification(p.vid, p.sec, 5)
//!                 PATTERN PositionReport p
//!                 WHERE p.lane != "exit"
//!         }
//!     "#)
//!     .build()
//!     .unwrap();
//!
//! // Drive the stream: congestion starts at t=5, a car reports at t=6.
//! let congested = system.event("ManySlowCars", 5).unwrap()
//!     .attr("seg", 1).unwrap().build().unwrap();
//! let car = system.event("PositionReport", 6).unwrap()
//!     .attr("vid", 42).unwrap()
//!     .attr("sec", 6).unwrap()
//!     .attr("lane", "travel").unwrap()
//!     .build().unwrap();
//! system.ingest(congested).unwrap();
//! system.ingest(car).unwrap();
//! let report = system.finish();
//! assert_eq!(report.outputs_of("TollNotification"), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

use caesar_algebra::translate::{translate_query_set, TranslateError, TranslateOptions};
use caesar_events::{
    AttrType, EventBuilder, EventError, EventStream, Schema, SchemaRegistry, Time,
};
use caesar_optimizer::{Optimizer, OptimizerConfig};
use caesar_query::{parse_model, CaesarModel, QueryError};
use caesar_runtime::{Engine, EngineConfig, RunReport};
use std::fmt;

/// Convenience re-exports for users of the facade.
pub mod prelude {
    pub use crate::{Caesar, CaesarBuilder, CaesarError, CaesarSystem};
    pub use caesar_events::{
        AttrType, BatchPolicy, Event, EventBatch, EventBuilder, EventStream, Interval, PartitionId,
        Schema, SchemaRegistry, Time, Value, VecStream,
    };
    pub use caesar_optimizer::OptimizerConfig;
    pub use caesar_query::{CaesarModel, ModelBuilder};
    pub use caesar_runtime::{
        Consistency, EngineConfig, EngineConfigBuilder, ExecutionMode, MetricsSnapshot,
        ObservabilityLevel, RunReport,
    };
}

pub use caesar_algebra as algebra;
pub use caesar_events as events;
pub use caesar_optimizer as optimizer;
pub use caesar_query as query;
pub use caesar_runtime as runtime;

/// Unified error of the facade.
#[derive(Debug)]
pub enum CaesarError {
    /// Specification-layer error (parsing, validation).
    Query(QueryError),
    /// Translation-layer error.
    Translate(TranslateError),
    /// Event-model error.
    Event(EventError),
    /// Builder misuse (e.g. missing model).
    Builder(String),
}

impl fmt::Display for CaesarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaesarError::Query(e) => write!(f, "query error: {e}"),
            CaesarError::Translate(e) => write!(f, "translation error: {e}"),
            CaesarError::Event(e) => write!(f, "event error: {e}"),
            CaesarError::Builder(m) => write!(f, "builder error: {m}"),
        }
    }
}

impl std::error::Error for CaesarError {}

impl From<QueryError> for CaesarError {
    fn from(e: QueryError) -> Self {
        CaesarError::Query(e)
    }
}

impl From<TranslateError> for CaesarError {
    fn from(e: TranslateError) -> Self {
        CaesarError::Translate(e)
    }
}

impl From<EventError> for CaesarError {
    fn from(e: EventError) -> Self {
        CaesarError::Event(e)
    }
}

/// Entry point: `Caesar::builder()`.
pub struct Caesar;

impl Caesar {
    /// Starts building a CAESAR system.
    #[must_use]
    pub fn builder() -> CaesarBuilder {
        CaesarBuilder::new()
    }
}

/// Fluent builder assembling model, schemas and configuration into a
/// runnable [`CaesarSystem`].
pub struct CaesarBuilder {
    model: Option<CaesarModel>,
    registry: SchemaRegistry,
    optimizer_config: OptimizerConfig,
    engine_config: EngineConfig,
    translate_options: TranslateOptions,
    errors: Vec<CaesarError>,
}

impl Default for CaesarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CaesarBuilder {
    /// Creates a builder with default configuration.
    #[must_use]
    pub fn new() -> Self {
        Self {
            model: None,
            registry: SchemaRegistry::new(),
            optimizer_config: OptimizerConfig::default(),
            engine_config: EngineConfig::default(),
            translate_options: TranslateOptions::default(),
            errors: Vec::new(),
        }
    }

    /// Registers an input event type.
    #[must_use]
    pub fn schema(mut self, name: &str, attrs: &[(&str, AttrType)]) -> Self {
        if let Err(e) = self.registry.register(Schema::new(name, attrs)) {
            self.errors.push(e.into());
        }
        self
    }

    /// Sets the model from its textual `MODEL` block.
    #[must_use]
    pub fn model_text(mut self, text: &str) -> Self {
        match parse_model(text) {
            Ok(m) => self.model = Some(m),
            Err(e) => self.errors.push(e.into()),
        }
        self
    }

    /// Sets the model directly (e.g. from
    /// [`ModelBuilder`](caesar_query::ModelBuilder)).
    #[must_use]
    pub fn model(mut self, model: CaesarModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Overrides the optimizer configuration.
    #[must_use]
    pub fn optimizer_config(mut self, config: OptimizerConfig) -> Self {
        self.optimizer_config = config;
        self
    }

    /// Overrides the engine configuration.
    #[must_use]
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.engine_config = config;
        self
    }

    /// Sets the pattern `within` horizon (sequence span bound and
    /// negation buffer horizon) in application ticks.
    #[must_use]
    pub fn within(mut self, ticks: Time) -> Self {
        self.translate_options.default_within = ticks;
        self
    }

    /// Builds the system: Phase 1 + Phase 2 translation, optimization,
    /// engine construction.
    pub fn build(self) -> Result<CaesarSystem, CaesarError> {
        let engine_config = self.engine_config;
        let (program, registry, explain) = self.build_program()?;
        let engine = Engine::new(program, &registry, engine_config);
        Ok(CaesarSystem {
            engine,
            registry,
            explain,
        })
    }

    /// Builds just the optimized program (translation + optimization)
    /// without constructing an engine, returning the program, the
    /// post-translation registry (inputs plus derived/match types) and
    /// the optimizer's explain report.
    ///
    /// This is the entry point for hosts that instantiate *several*
    /// engines from one model — e.g. `caesar-server`, which builds one
    /// engine per shard of a tenant's partition-hash-sharded runtime.
    pub fn build_program(
        mut self,
    ) -> Result<(caesar_optimizer::OptimizedProgram, SchemaRegistry, String), CaesarError> {
        if let Some(e) = self.errors.pop() {
            return Err(e);
        }
        let model = self
            .model
            .take()
            .ok_or_else(|| CaesarError::Builder("no model supplied".into()))?;
        let query_set = caesar_query::QuerySet::from_model(&model)?;
        let translation =
            translate_query_set(&query_set, &mut self.registry, &self.translate_options)?;
        let optimizer = Optimizer::new(self.optimizer_config, Default::default());
        let program = optimizer.optimize(translation, &self.registry);
        let explain = program.explain();
        Ok((program, self.registry, explain))
    }
}

/// A built, runnable CAESAR system.
#[derive(Debug)]
pub struct CaesarSystem {
    /// The execution engine.
    pub engine: Engine,
    /// The schema registry (inputs + derived + match types).
    pub registry: SchemaRegistry,
    /// The optimizer's explain report captured at build time.
    pub explain: String,
}

impl CaesarSystem {
    /// Starts building an event of a registered type at time `t`.
    pub fn event(&self, type_name: &str, t: Time) -> Result<EventBuilder<'_>, CaesarError> {
        Ok(EventBuilder::new(&self.registry, type_name, t)?)
    }

    /// Ingests one event or a whole same-timestamp batch (anything
    /// convertible into an [`caesar_events::EventBatch`]).
    pub fn ingest(
        &mut self,
        input: impl Into<caesar_events::EventBatch>,
    ) -> Result<(), CaesarError> {
        Ok(self.engine.ingest(input)?)
    }

    /// Runs a whole stream.
    pub fn run_stream(&mut self, stream: &mut dyn EventStream) -> Result<RunReport, CaesarError> {
        Ok(self.engine.run_stream(stream)?)
    }

    /// Finishes the run and returns the report.
    pub fn finish(&mut self) -> RunReport {
        self.engine.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_events::Value;

    fn traffic_builder() -> CaesarBuilder {
        Caesar::builder()
            .schema(
                "PositionReport",
                &[
                    ("vid", AttrType::Int),
                    ("sec", AttrType::Int),
                    ("lane", AttrType::Str),
                ],
            )
            .schema("ManySlowCars", &[("seg", AttrType::Int)])
            .schema("FewFastCars", &[("seg", AttrType::Int)])
            .model_text(
                r#"
                MODEL traffic DEFAULT clear
                CONTEXT clear {
                    SWITCH CONTEXT congestion PATTERN ManySlowCars
                }
                CONTEXT congestion {
                    SWITCH CONTEXT clear PATTERN FewFastCars
                    DERIVE TollNotification(p.vid, p.sec, 5)
                        PATTERN PositionReport p WHERE p.lane != "exit"
                }
            "#,
            )
    }

    #[test]
    fn end_to_end_builder_flow() {
        let mut system = traffic_builder().build().unwrap();
        assert!(system.explain.contains("estimated cost"));
        let switch = system
            .event("ManySlowCars", 5)
            .unwrap()
            .attr("seg", 1)
            .unwrap()
            .build()
            .unwrap();
        let car = system
            .event("PositionReport", 6)
            .unwrap()
            .attr("vid", 42)
            .unwrap()
            .attr("sec", 6)
            .unwrap()
            .attr("lane", "travel")
            .unwrap()
            .build()
            .unwrap();
        system.ingest(switch).unwrap();
        system.ingest(car).unwrap();
        let report = system.finish();
        assert_eq!(report.outputs_of("TollNotification"), 1);
        assert_eq!(report.events_in, 2);
    }

    #[test]
    fn missing_model_is_builder_error() {
        let err = Caesar::builder().build().unwrap_err();
        assert!(matches!(err, CaesarError::Builder(_)));
    }

    #[test]
    fn parse_errors_surface_at_build() {
        let err = Caesar::builder()
            .model_text("MODEL broken")
            .build()
            .unwrap_err();
        assert!(matches!(err, CaesarError::Query(_)));
    }

    #[test]
    fn unknown_event_type_at_event_building() {
        let system = traffic_builder().build().unwrap();
        assert!(system.event("Ghost", 0).is_err());
    }

    #[test]
    fn derived_types_are_queryable_from_registry() {
        let system = traffic_builder().build().unwrap();
        let toll = system.registry.schema_by_name("TollNotification").unwrap();
        assert_eq!(toll.arity(), 3);
        let v = Value::Int(1);
        let _ = v;
    }
}
