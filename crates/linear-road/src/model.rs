//! The Linear Road CAESAR model: the three traffic contexts of Figure 1
//! (*clear*, *congestion*, *accident*) and their workloads (Figure 3),
//! with the workload replication knob of §7.1 ("we simulate low, average
//! and high query workloads by replicating the event queries of the
//! benchmark").

use crate::types::register_schemas;
use caesar_events::SchemaRegistry;
use caesar_query::parser::parse_model;
use caesar_query::CaesarModel;
use std::fmt::Write;

/// Builds the registry pre-loaded with the Linear Road input schemas.
#[must_use]
pub fn lr_registry() -> SchemaRegistry {
    let mut registry = SchemaRegistry::new();
    register_schemas(&mut registry);
    registry
}

/// Builds the Linear Road CAESAR model with `replication` copies of each
/// context-processing query (1 = the benchmark subset of Figure 3;
/// 10 ≈ the paper's "average workload of 10 event queries").
///
/// Per context:
/// * **clear** (default): switch to congestion on `ManySlowCars`,
///   initiate accident on `StoppedCars`, and derive zero-toll
///   notifications for newly traveling cars (the benchmark requires
///   zero tolls outside congestion).
/// * **congestion**: switch back on `FewFastCars`, initiate accident,
///   derive `NewTravelingCar` via the `SEQ(NOT ..)` negation pattern of
///   Figure 3 and charge real toll.
/// * **accident**: terminate on `StoppedCarsRemoved`, derive accident
///   warnings for every traveling car in the segment.
///
/// # Panics
/// Never for `replication >= 1`; the generated text is parsed by the
/// crate's own grammar.
#[must_use]
pub fn lr_model(replication: usize) -> CaesarModel {
    lr_model_weighted(replication, replication, replication)
}

/// [`lr_model`] with per-context replication: the §7.3.1 experiments
/// replicate only the *critical-window* workload ("2 critical context
/// windows ... process 10 event queries each; these queries can be
/// suspended in other contexts"), so the default context keeps one copy
/// while congestion/accident carry the suspendable load.
#[must_use]
pub fn lr_model_weighted(
    clear_rep: usize,
    congestion_rep: usize,
    accident_rep: usize,
) -> CaesarModel {
    let replication = clear_rep.max(congestion_rep).max(accident_rep);
    assert!(
        clear_rep >= 1 && congestion_rep >= 1 && accident_rep >= 1,
        "at least one copy of each query"
    );
    let mut clear_queries = String::new();
    let mut congestion_queries = String::new();
    let mut accident_queries = String::new();
    for i in 0..replication {
        let suffix = if i == 0 {
            String::new()
        } else {
            format!("_{i}")
        };
        if i < clear_rep {
            // Zero toll for cars newly seen in a clear segment.
            let _ = writeln!(
                clear_queries,
                r#"DERIVE ZeroToll{suffix}(p2.vid, p2.sec, 0)
                   PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
                   WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != "exit""#
            );
        }
        if i < congestion_rep {
            // Figure 3 queries 1+2: new traveling car -> real toll.
            let _ = writeln!(
                congestion_queries,
                r#"DERIVE NewTravelingCar{suffix}(p2.vid, p2.xway, p2.dir, p2.seg, p2.lane, p2.pos, p2.sec)
                   PATTERN SEQ(NOT PositionReport p1, PositionReport p2)
                   WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != "exit""#
            );
            let _ = writeln!(
                congestion_queries,
                "DERIVE TollNotification{suffix}(p.vid, p.sec, 5) PATTERN NewTravelingCar{suffix} p"
            );
        }
        if i < accident_rep {
            // Accident warnings for traveling cars in the accident segment.
            let _ = writeln!(
                accident_queries,
                r#"DERIVE AccidentWarning{suffix}(p.vid, p.seg, p.sec)
                   PATTERN PositionReport p WHERE p.lane != "exit""#
            );
        }
    }

    let text = format!(
        r#"
        MODEL linear_road DEFAULT clear
        CONTEXT clear {{
            SWITCH CONTEXT congestion PATTERN ManySlowCars
            INITIATE CONTEXT accident PATTERN StoppedCars CONTEXT clear, congestion
            {clear_queries}
        }}
        CONTEXT congestion {{
            SWITCH CONTEXT clear PATTERN FewFastCars
            {congestion_queries}
        }}
        CONTEXT accident {{
            TERMINATE CONTEXT accident PATTERN StoppedCarsRemoved
            {accident_queries}
        }}
        "#
    );
    parse_model(&text).expect("generated linear road model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_model_shape() {
        let model = lr_model(1);
        assert_eq!(model.default_context, "clear");
        assert_eq!(model.contexts.len(), 3);
        let clear = model.context("clear").unwrap();
        assert_eq!(clear.deriving.len(), 2, "switch + accident initiation");
        assert_eq!(clear.processing.len(), 1);
        let congestion = model.context("congestion").unwrap();
        assert_eq!(congestion.processing.len(), 2, "NewTravelingCar + Toll");
        let accident = model.context("accident").unwrap();
        assert_eq!(accident.deriving.len(), 1);
        assert_eq!(accident.processing.len(), 1);
    }

    #[test]
    fn accident_initiation_spans_clear_and_congestion() {
        let model = lr_model(1);
        let clear = model.context("clear").unwrap();
        let initiate = clear
            .deriving
            .iter()
            .find(|q| q.action.as_ref().is_some_and(|a| a.target() == "accident"))
            .unwrap();
        assert_eq!(initiate.contexts, vec!["clear", "congestion"]);
    }

    #[test]
    fn replication_scales_processing_workload() {
        for n in [1, 5, 10] {
            let model = lr_model(n);
            let congestion = model.context("congestion").unwrap();
            assert_eq!(congestion.processing.len(), 2 * n);
            let accident = model.context("accident").unwrap();
            assert_eq!(accident.processing.len(), n);
        }
    }

    #[test]
    fn replicated_model_translates_end_to_end() {
        use caesar_algebra::translate::{translate_query_set, TranslateOptions};
        use caesar_query::queryset::QuerySet;
        let model = lr_model(3);
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = lr_registry();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions { default_within: 60 });
        assert!(t.is_ok(), "{t:?}");
    }
}
