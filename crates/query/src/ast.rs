//! Abstract syntax of context-aware event queries (Definition 3).
//!
//! A context-aware event query consists of clauses performing one task
//! each: context initiation / switch / termination, complex event
//! derivation (`DERIVE`), event pattern matching (`PATTERN`), event
//! filtering (`WHERE`) and context window specification (`CONTEXT`).

use caesar_events::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a query within one compiled query set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Index into query-ordered arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// What a context-deriving query does when its pattern matches (§3.4):
/// initiate a new window, terminate an existing one, or switch
/// (terminate current + initiate new, for non-overlapping sequences).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextAction {
    /// `INITIATE CONTEXT c` — starts window `w_c` (may overlap others).
    Initiate(String),
    /// `SWITCH CONTEXT c` — terminates the current window, starts `w_c`.
    Switch(String),
    /// `TERMINATE CONTEXT c` — ends window `w_c`.
    Terminate(String),
}

impl ContextAction {
    /// The context named by the action.
    #[must_use]
    pub fn target(&self) -> &str {
        match self {
            ContextAction::Initiate(c) | ContextAction::Switch(c) | ContextAction::Terminate(c) => {
                c
            }
        }
    }

    /// The clause keyword.
    #[must_use]
    pub fn keyword(&self) -> &'static str {
        match self {
            ContextAction::Initiate(_) => "INITIATE",
            ContextAction::Switch(_) => "SWITCH",
            ContextAction::Terminate(_) => "TERMINATE",
        }
    }
}

/// `DERIVE EventType(arg, arg, ...)` — complex event derivation.
///
/// Arguments are full expressions: `DERIVE TollNotification(p.vid, p.sec, 5)`
/// mixes attribute references and constants (Figure 3, query 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeriveClause {
    /// Name of the derived (complex) event type.
    pub event_type: String,
    /// Expressions computing the derived event's attributes.
    pub args: Vec<Expr>,
}

/// An event pattern (`PATTERN` clause, grammar Figure 4):
/// `Patt := NOT? EventType Var? | SEQ( (Patt ,?)+ )`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// A (possibly negated) single event of a named type, optionally
    /// bound to a variable.
    Event {
        /// Event type name.
        event_type: String,
        /// Variable binding the event for `WHERE` / `DERIVE` references.
        var: Option<String>,
        /// `true` for `NOT E` — the event must be *absent*.
        negated: bool,
    },
    /// `SEQ(p1, ..., pn)` — a temporally ordered sequence.
    Seq(Vec<Pattern>),
}

impl Pattern {
    /// Convenience constructor for a plain positive event pattern.
    #[must_use]
    pub fn event(event_type: impl Into<String>, var: impl Into<String>) -> Self {
        Pattern::Event {
            event_type: event_type.into(),
            var: Some(var.into()),
            negated: false,
        }
    }

    /// Convenience constructor for an unbound positive event pattern.
    #[must_use]
    pub fn event_unbound(event_type: impl Into<String>) -> Self {
        Pattern::Event {
            event_type: event_type.into(),
            var: None,
            negated: false,
        }
    }

    /// Convenience constructor for a negated event pattern.
    #[must_use]
    pub fn not_event(event_type: impl Into<String>, var: impl Into<String>) -> Self {
        Pattern::Event {
            event_type: event_type.into(),
            var: Some(var.into()),
            negated: true,
        }
    }

    /// Flattens the pattern into its element list (a single event pattern
    /// is a one-element sequence). Nested `SEQ`s are flattened too, since
    /// `SEQ(a, SEQ(b, c))` ≡ `SEQ(a, b, c)` under the sequence semantics
    /// of §4.1.
    #[must_use]
    pub fn elements(&self) -> Vec<&Pattern> {
        match self {
            Pattern::Event { .. } => vec![self],
            Pattern::Seq(items) => items.iter().flat_map(Pattern::elements).collect(),
        }
    }

    /// All variables bound by the pattern, positive and negated.
    #[must_use]
    pub fn variables(&self) -> Vec<(&str, bool)> {
        self.elements()
            .into_iter()
            .filter_map(|p| match p {
                Pattern::Event {
                    var: Some(v),
                    negated,
                    ..
                } => Some((v.as_str(), *negated)),
                _ => None,
            })
            .collect()
    }

    /// All event type names referenced by the pattern.
    #[must_use]
    pub fn event_types(&self) -> BTreeSet<&str> {
        self.elements()
            .into_iter()
            .filter_map(|p| match p {
                Pattern::Event { event_type, .. } => Some(event_type.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Returns `true` if every element of the pattern is negated — such a
    /// pattern can never match and is rejected by validation.
    #[must_use]
    pub fn all_negated(&self) -> bool {
        self.elements().iter().all(|p| match p {
            Pattern::Event { negated, .. } => *negated,
            _ => false,
        })
    }
}

/// Binary operators of the expression grammar (Figure 4):
/// `+ - * / = ≠ > ≥ < ≤ AND OR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `!=` / `≠`
    Ne,
    /// `<`
    Lt,
    /// `<=` / `≤`
    Le,
    /// `>`
    Gt,
    /// `>=` / `≥`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }

    /// Returns `true` for comparison operators producing booleans.
    #[must_use]
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Returns `true` for `AND` / `OR`.
    #[must_use]
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An expression (`Expr` of Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// An attribute reference `var.attr`, or a bare `attr` resolved
    /// against the query's only pattern variable (`var == None`).
    Attr {
        /// Pattern variable, if qualified.
        var: Option<String>,
        /// Attribute name.
        attr: String,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Builds an integer constant.
    #[must_use]
    pub fn int(v: i64) -> Self {
        Expr::Const(Value::Int(v))
    }

    /// Builds a string constant.
    #[must_use]
    pub fn string(s: impl AsRef<str>) -> Self {
        Expr::Const(Value::str(s))
    }

    /// Builds a qualified attribute reference `var.attr`.
    #[must_use]
    pub fn attr(var: impl Into<String>, attr: impl Into<String>) -> Self {
        Expr::Attr {
            var: Some(var.into()),
            attr: attr.into(),
        }
    }

    /// Builds a bare attribute reference.
    #[must_use]
    pub fn bare(attr: impl Into<String>) -> Self {
        Expr::Attr {
            var: None,
            attr: attr.into(),
        }
    }

    /// Combines two expressions with a binary operator.
    #[must_use]
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Conjunction helper.
    #[must_use]
    pub fn and(self, rhs: Expr) -> Self {
        Expr::bin(BinOp::And, self, rhs)
    }

    /// Splits a conjunction tree into its conjuncts: `a AND (b AND c)`
    /// yields `[a, b, c]`. Non-`AND` expressions yield themselves.
    #[must_use]
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                let mut out = lhs.conjuncts();
                out.extend(rhs.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuilds a conjunction from conjuncts; `None` for an empty list.
    #[must_use]
    pub fn conjoin(exprs: Vec<Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(|a, b| a.and(b))
    }

    /// All pattern variables referenced by the expression
    /// (`None` entries are bare references).
    #[must_use]
    pub fn referenced_vars(&self) -> BTreeSet<Option<&str>> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut BTreeSet<Option<&'a str>>) {
        match self {
            Expr::Const(_) => {}
            Expr::Attr { var, .. } => {
                out.insert(var.as_deref());
            }
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
        }
    }
}

/// A context-aware event query (Definition 3).
///
/// Exactly one of `action` (context-deriving query) or `derive`
/// (context-processing query) is set; validation enforces this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventQuery {
    /// Optional human-readable name.
    pub name: Option<String>,
    /// Context transition performed on match (deriving queries only).
    pub action: Option<ContextAction>,
    /// Complex event derivation (processing queries only).
    pub derive: Option<DeriveClause>,
    /// The event pattern to match.
    pub pattern: Pattern,
    /// Optional filter predicate.
    pub where_clause: Option<Expr>,
    /// Optional temporal constraint: maximum span (in ticks) of a
    /// sequence match, and the negation-buffer horizon. `None` falls
    /// back to the translation default.
    pub within: Option<u64>,
    /// Contexts the query belongs to. Optional in the surface syntax
    /// (implied by the model); made mandatory by Phase-1 translation.
    pub contexts: Vec<String>,
}

impl EventQuery {
    /// Returns `true` for context-deriving queries.
    #[must_use]
    pub fn is_deriving(&self) -> bool {
        self.action.is_some()
    }

    /// Returns `true` for context-processing queries.
    #[must_use]
    pub fn is_processing(&self) -> bool {
        self.derive.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_where() -> Expr {
        // p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != "exit"
        Expr::bin(
            BinOp::Eq,
            Expr::bin(BinOp::Add, Expr::attr("p1", "sec"), Expr::int(30)),
            Expr::attr("p2", "sec"),
        )
        .and(Expr::bin(
            BinOp::Eq,
            Expr::attr("p1", "vid"),
            Expr::attr("p2", "vid"),
        ))
        .and(Expr::bin(
            BinOp::Ne,
            Expr::attr("p2", "lane"),
            Expr::string("exit"),
        ))
    }

    #[test]
    fn conjuncts_flatten_left_and_right_nesting() {
        let e = sample_where();
        assert_eq!(e.conjuncts().len(), 3);
        let nested = Expr::int(1).and(Expr::int(2).and(Expr::int(3)));
        assert_eq!(nested.conjuncts().len(), 3);
    }

    #[test]
    fn conjoin_round_trips() {
        let e = sample_where();
        let parts: Vec<Expr> = e.conjuncts().into_iter().cloned().collect();
        let rebuilt = Expr::conjoin(parts).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
        assert!(Expr::conjoin(vec![]).is_none());
    }

    #[test]
    fn referenced_vars_collects_all() {
        let w = sample_where();
        let vars = w.referenced_vars();
        assert!(vars.contains(&Some("p1")));
        assert!(vars.contains(&Some("p2")));
        assert_eq!(vars.len(), 2);
        let bare = Expr::bin(BinOp::Gt, Expr::bare("X"), Expr::int(10));
        assert!(bare.referenced_vars().contains(&None));
    }

    #[test]
    fn pattern_flattening_and_vars() {
        // SEQ(NOT PositionReport p1, PositionReport p2)
        let p = Pattern::Seq(vec![
            Pattern::not_event("PositionReport", "p1"),
            Pattern::event("PositionReport", "p2"),
        ]);
        assert_eq!(p.elements().len(), 2);
        assert_eq!(p.variables(), vec![("p1", true), ("p2", false)]);
        assert_eq!(p.event_types().len(), 1);
        assert!(!p.all_negated());
    }

    #[test]
    fn nested_seq_flattens() {
        let p = Pattern::Seq(vec![
            Pattern::event("A", "a"),
            Pattern::Seq(vec![Pattern::event("B", "b"), Pattern::event("C", "c")]),
        ]);
        assert_eq!(p.elements().len(), 3);
    }

    #[test]
    fn all_negated_pattern_detected() {
        let p = Pattern::Seq(vec![Pattern::not_event("A", "a")]);
        assert!(p.all_negated());
    }

    #[test]
    fn context_action_accessors() {
        let a = ContextAction::Switch("congestion".into());
        assert_eq!(a.target(), "congestion");
        assert_eq!(a.keyword(), "SWITCH");
    }

    #[test]
    fn query_kind_predicates() {
        let deriving = EventQuery {
            name: None,
            action: Some(ContextAction::Initiate("accident".into())),
            derive: None,
            pattern: Pattern::event_unbound("Accident"),
            where_clause: None,
            within: None,
            contexts: vec![],
        };
        assert!(deriving.is_deriving());
        assert!(!deriving.is_processing());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert_eq!(BinOp::Ne.symbol(), "!=");
    }
}
