//! Out-of-order ingestion: a shuffled (bounded-disorder) Linear Road
//! stream through an engine with `reorder_slack` must produce exactly
//! the ordered run's results; without slack the same stream is rejected.

use caesar::linear_road::{build_lr_system, expected_outputs, LinearRoadConfig, TrafficSim};
use caesar::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Locally shuffles a time-sorted stream within windows of `window`
/// events — disorder bounded by the largest timestamp span of a window.
fn jumble(mut events: Vec<Event>, window: usize, seed: u64) -> (Vec<Event>, Time) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut max_disorder: Time = 0;
    for chunk in events.chunks_mut(window) {
        let before: Vec<Time> = chunk.iter().map(Event::time).collect();
        let span = before.iter().max().unwrap() - before.iter().min().unwrap();
        max_disorder = max_disorder.max(span);
        chunk.shuffle(&mut rng);
    }
    (events, max_disorder)
}

#[test]
fn reorder_slack_repairs_bounded_disorder() {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        segments_per_road: 4,
        duration: 500,
        seed: 8,
        ..Default::default()
    });
    let ordered = sim.generate();
    let oracle = expected_outputs(&ordered, sim.registry());
    let (shuffled, max_disorder) = jumble(ordered, 16, 42);
    assert!(max_disorder > 0, "test needs actual disorder");

    let mut system = build_lr_system(
        1,
        OptimizerConfig::default(),
        EngineConfig::builder()
            .reorder_slack(max_disorder + 1)
            .build(),
    );
    let report = system
        .run_stream(&mut ShuffledStream(shuffled.into_iter()))
        .expect("slack covers the disorder");
    assert_eq!(report.outputs_of("TollNotification"), oracle.real_tolls);
    assert_eq!(report.outputs_of("ZeroToll"), oracle.zero_tolls);
    assert_eq!(
        report.outputs_of("AccidentWarning"),
        oracle.accident_warnings
    );
}

#[test]
fn without_slack_disorder_is_rejected() {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        segments_per_road: 2,
        duration: 200,
        seed: 9,
        ..Default::default()
    });
    let ordered = sim.generate();
    let (shuffled, max_disorder) = jumble(ordered, 16, 43);
    assert!(max_disorder > 0);
    let mut system = build_lr_system(
        1,
        OptimizerConfig::default(),
        EngineConfig::default(), // slack 0
    );
    let mut failed = false;
    for e in shuffled {
        if system.ingest(e).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "out-of-order stream must be rejected without slack");
}

/// Helper: an `EventStream` over a pre-shuffled vector (VecStream
/// requires order, so this wraps a plain iterator).
struct ShuffledStream(std::vec::IntoIter<Event>);

impl EventStream for ShuffledStream {
    fn next_event(&mut self) -> Option<Event> {
        self.0.next()
    }
}
