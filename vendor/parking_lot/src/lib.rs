//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free API:
//! `lock()`/`read()`/`write()` return guards directly, and poisoning is
//! ignored (a poisoned std lock yields its inner guard), matching
//! parking_lot's no-poisoning semantics.

use std::sync;

/// Mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
