//! Speculative out-of-order processing: emit now, retract if wrong.
//!
//! Strict consistency buys §6.2's in-order assumption by holding every
//! event in the reorder buffer until the stream's high-watermark passes
//! it by `reorder_slack` — so *all* output on a disordered stream pays
//! worst-case latency. The CEDR lineage (Barga et al., "Consistent
//! Streaming Through Time") shows the alternative this module
//! implements: process events the moment they arrive, and when a late
//! event (still within slack) invalidates what was emitted, issue
//! compensating retractions followed by the corrected output.
//!
//! # The revision ledger
//!
//! The engine keeps its strict internals untouched — the reorder buffer
//! still decides *settlement* (it becomes a revision tracker instead of
//! a gate), and the settled core still produces the byte-identical
//! strict output. On top sits a [`Speculation`] overlay:
//!
//! * `spec` — a fork of the settled core, advanced eagerly over the
//!   arrival stream. Its outputs are emitted immediately as
//!   [`OutputRecord::Emit`] records.
//! * `unsettled` — the events released to the fork but not yet past the
//!   slack, in `(time, arrival)` order (mirroring the reorder heap).
//! * `books` — the per-window emitted-output index: a multiset, keyed
//!   by wire encoding, of outputs emitted speculatively but not yet
//!   confirmed by the settled core.
//!
//! The invariant after every arrival: *fold(records) = settled outputs
//! ⊎ books* — cancelling each retraction against a prior emission of
//! the same event leaves exactly the settled core's outputs so far plus
//! the outstanding speculative ones. At `finish()` everything settles,
//! `books` drains to empty, and the fold equals the strict output — the
//! equality the testkit's differential gate checks byte-for-byte.
//!
//! An arrival is one of three cases:
//!
//! 1. **Too late** (beyond slack): counted and dropped, exactly like
//!    strict mode. Nothing was ever speculated on it, so nothing is
//!    retracted.
//! 2. **Append** (in arrival order so far): the fork processes it, its
//!    new outputs are emitted and booked, and whatever the reorder
//!    buffer released settles into the core (confirming books entries).
//! 3. **Revision** (late but within slack): the overlay re-forks from
//!    the settled core and replays the unsettled suffix with the late
//!    event spliced into its `(time, arrival)` position. The multiset
//!    difference between the old books and the replay's outputs becomes
//!    the compensation: retractions for emissions the replay no longer
//!    produces, then the corrected emissions. Outputs untouched by the
//!    late event cancel in the diff, so unaffected windows produce no
//!    record traffic.
//!
//! Correctness leans on engine determinism (same state + same settled
//! order ⇒ same outputs), the property the batch-equivalence and
//! snapshot tests already pin down.

use super::{Consistency as C, Engine, EngineConfig};
use crate::obs::{CounterId, MetricsRegistry, ObservabilityLevel, Stage};
use caesar_events::{Event, EventError, OutputRecord, ReorderBuffer, Time};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// When outputs become visible relative to the reorder slack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Consistency {
    /// Wait out the slack: output is emitted only once no late arrival
    /// can change it (today's behavior, the default).
    #[default]
    Strict,
    /// Emit output the moment its inputs are processed; compensate late
    /// arrivals with retraction records. The settled result is
    /// identical to `Strict` — only visibility latency differs.
    Speculative,
}

impl Consistency {
    /// The level's lower-case name (`strict` / `speculative`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Consistency::Strict => "strict",
            Consistency::Speculative => "speculative",
        }
    }
}

impl std::str::FromStr for Consistency {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(Consistency::Strict),
            "speculative" => Ok(Consistency::Speculative),
            other => Err(format!(
                "unknown consistency level `{other}` (expected strict or speculative)"
            )),
        }
    }
}

/// One outstanding entry of the emitted-output books.
#[derive(Debug)]
struct BookEntry {
    /// Emitted-but-unsettled copies of this event.
    count: u64,
    /// The event itself (the key is its wire encoding).
    event: Event,
    /// Stream high-watermark at first emission — settling at watermark
    /// `h` means speculation led strictness by `h − emit_high` ticks.
    emit_high: Time,
}

/// The speculative overlay of an [`Engine`] (see the module docs).
#[derive(Debug)]
pub(super) struct Speculation {
    /// Fork of the settled core, advanced eagerly over arrival order.
    spec: Box<Engine>,
    /// Events released to the fork but not yet settled, `(time,
    /// arrival)`-ordered — a mirror of the reorder buffer's contents.
    unsettled: Vec<Event>,
    /// Emitted-but-unsettled outputs, keyed by wire encoding.
    books: BTreeMap<Vec<u8>, BookEntry>,
}

fn record_key(event: &Event) -> Vec<u8> {
    caesar_events::encode_to_vec(event)
}

impl Engine {
    /// (Re-)creates the speculative overlay to match the configured
    /// consistency level; called on construction and after a restore.
    pub(super) fn init_speculation(&mut self) {
        self.speculation = if self.config.consistency == C::Speculative {
            Some(Box::new(Speculation {
                spec: self.fork_core(),
                unsettled: Vec::new(),
                books: BTreeMap::new(),
            }))
        } else {
            None
        };
    }

    /// True when no speculative state is outstanding (trivially true in
    /// strict mode) — the precondition of [`snapshot_state`](Self::snapshot_state).
    #[must_use]
    pub fn speculation_settled(&self) -> bool {
        self.speculation
            .as_ref()
            .is_none_or(|sp| sp.unsettled.is_empty() && sp.books.is_empty())
    }

    /// A strict fork of the settled core: same semantic state, fresh
    /// non-semantic machinery (no reorder buffer — it is fed in settled
    /// order; outputs collected so emission deltas can be drained).
    fn fork_core(&self) -> Box<Engine> {
        Box::new(Engine {
            config: EngineConfig {
                consistency: C::Strict,
                reorder_slack: 0,
                collect_outputs: true,
                observability: ObservabilityLevel::Off,
                ..self.config
            },
            table: self.table.clone(),
            template: self.template.clone(),
            default_bit: self.default_bit,
            partitions: self.partitions.clone(),
            scheduler: self.scheduler.clone(),
            router: self.router.clone(),
            clock: self.clock,
            latency: self.latency.clone(),
            type_names: self.type_names.clone(),
            outputs_by_type: self.outputs_by_type.clone(),
            inputs_by_type: self.inputs_by_type.clone(),
            events_in: self.events_in,
            events_out: self.events_out,
            transitions_applied: self.transitions_applied,
            peak_partials: self.peak_partials,
            last_gc: self.last_gc,
            started: None,
            busy: Duration::ZERO,
            reorder: None,
            obs: MetricsRegistry::new(ObservabilityLevel::Off),
            late_dropped: 0,
            collected_outputs: Vec::new(),
            speculation: None,
            spec_capture: None,
            collected_records: Vec::new(),
            spec_emits: 0,
            spec_retractions: 0,
            spec_rebuilds: 0,
        })
    }

    /// The stream position new emissions are stamped with.
    fn emission_watermark(&self) -> Time {
        self.reorder
            .as_ref()
            .map_or_else(|| self.scheduler.progress(), ReorderBuffer::high_watermark)
    }

    /// One speculative arrival (the distributor entry point in
    /// speculative mode).
    pub(super) fn ingest_speculative(&mut self, event: Event) -> Result<(), EventError> {
        // The reorder buffer is now a revision tracker: it still judges
        // lateness and decides what settles, but visibility no longer
        // waits for it.
        let released = if let Some(mut reorder) = self.reorder.take() {
            let reorder_span = self.obs.span_start();
            let result = reorder.push(event.clone());
            self.obs.span_end(Stage::Reorder, reorder_span);
            self.late_dropped = reorder.late_dropped;
            self.reorder = Some(reorder);
            match result {
                Ok(ready) => ready,
                // Beyond slack: counted and dropped, like strict mode.
                // Nothing was speculated on it, so nothing to retract.
                Err(_late) => return Ok(()),
            }
        } else {
            vec![event.clone()]
        };
        let mut sp = self.speculation.take().expect("speculative mode");
        let result = self.speculative_arrival(&mut sp, event, released);
        self.speculation = Some(sp);
        result
    }

    fn speculative_arrival(
        &mut self,
        sp: &mut Speculation,
        event: Event,
        released: Vec<Event>,
    ) -> Result<(), EventError> {
        let t = event.time();
        // Equal timestamps append (arrival order is the tie-break, so
        // the newest event sorts after every buffered equal-time one).
        let in_order = sp.unsettled.last().is_none_or(|last| t >= last.time());
        if in_order {
            // Fast path: the fork simply advances; new outputs are
            // emitted and booked.
            sp.spec.ingest(event.clone())?;
            let delta = std::mem::take(&mut sp.spec.collected_outputs);
            self.emit_outputs(sp, delta);
            sp.unsettled.push(event);
            let settled = self.settle_into_core(&released)?;
            let leftover = self.confirm_settled(sp, settled);
            debug_assert!(
                leftover.is_empty(),
                "append-path settled outputs were all emitted before"
            );
            sp.unsettled.drain(..released.len());
        } else {
            // Revision: splice the late event into its settled position
            // and replay the unsettled suffix on a fresh fork.
            self.spec_rebuilds += 1;
            self.obs.inc(CounterId::SpeculativeRebuilds);
            let pos = sp.unsettled.partition_point(|e| e.time() <= t);
            sp.unsettled.insert(pos, event);
            // Settle first: `released` is exactly the (time, arrival)
            // prefix of the spliced list, and may include outputs never
            // emitted (the late event can release immediately).
            let settled = self.settle_into_core(&released)?;
            sp.unsettled.drain(..released.len());
            let mut spec = self.fork_core();
            for e in &sp.unsettled {
                spec.ingest(e.clone())?;
            }
            let replay = std::mem::take(&mut spec.collected_outputs);
            sp.spec = spec;
            self.revise_books(sp, settled, replay);
        }
        Ok(())
    }

    /// Feeds released (settled-order) events into the strict core,
    /// returning every output the core produced while doing so — which
    /// may include outputs of *earlier*-settled events whose
    /// transactions only now matured.
    fn settle_into_core(&mut self, released: &[Event]) -> Result<Vec<Event>, EventError> {
        if released.is_empty() {
            return Ok(Vec::new());
        }
        self.spec_capture = Some(Vec::new());
        let mut outcome = Ok(());
        for e in released {
            outcome = self.ingest_one_ordered(e.clone());
            if outcome.is_err() {
                break;
            }
        }
        let captured = self.spec_capture.take().unwrap_or_default();
        outcome.map(|()| captured)
    }

    /// Emits `delta` as speculative output: one `Emit` record each,
    /// booked as outstanding.
    fn emit_outputs(&mut self, sp: &mut Speculation, delta: Vec<Event>) {
        if delta.is_empty() {
            return;
        }
        let high = self.emission_watermark();
        self.spec_emits += delta.len() as u64;
        self.obs
            .add(CounterId::SpeculativeEmits, delta.len() as u64);
        for event in delta {
            if self.config.collect_outputs {
                self.collected_records
                    .push(OutputRecord::Emit(event.clone()));
            }
            sp.books
                .entry(record_key(&event))
                .and_modify(|b| b.count += 1)
                .or_insert(BookEntry {
                    count: 1,
                    event,
                    emit_high: high,
                });
        }
    }

    /// Cancels settled outputs against the books (they are confirmed,
    /// no longer outstanding), crediting the speculation-lead metric.
    /// Returns the settled outputs that were never emitted — empty on
    /// the append path, revision fodder on the rebuild path.
    fn confirm_settled(&mut self, sp: &mut Speculation, settled: Vec<Event>) -> Vec<Event> {
        let high = self.emission_watermark();
        let mut leftover = Vec::new();
        for event in settled {
            let key = record_key(&event);
            if let Some(entry) = sp.books.get_mut(&key) {
                self.obs.add(
                    CounterId::SpeculationLeadTicks,
                    high.saturating_sub(entry.emit_high),
                );
                entry.count -= 1;
                if entry.count == 0 {
                    sp.books.remove(&key);
                }
            } else {
                leftover.push(event);
            }
        }
        leftover
    }

    /// The revision step: reconcile the old books against what the
    /// settle produced plus what the replay now says the unsettled
    /// suffix derives. Emissions the replay no longer produces are
    /// retracted; new ones (including never-emitted settled outputs)
    /// are emitted after the retractions; the books become the replay's
    /// outputs. Outputs the late event did not disturb cancel here, so
    /// they cause no record traffic.
    fn revise_books(&mut self, sp: &mut Speculation, settled: Vec<Event>, replay: Vec<Event>) {
        let corrected = self.confirm_settled(sp, settled);
        let high = self.emission_watermark();
        let old = std::mem::take(&mut sp.books);
        let mut new_books: BTreeMap<Vec<u8>, BookEntry> = BTreeMap::new();
        for event in replay {
            new_books
                .entry(record_key(&event))
                .and_modify(|b| b.count += 1)
                .or_insert(BookEntry {
                    count: 1,
                    event,
                    emit_high: high,
                });
        }
        let mut retractions: Vec<(Event, u64)> = Vec::new();
        let mut emissions: Vec<(Event, u64)> = Vec::new();
        // BTreeMap order keys both walks, so the record stream is
        // deterministic for a given arrival sequence.
        for (key, entry) in &old {
            let kept = new_books.get(key).map_or(0, |b| b.count);
            if entry.count > kept {
                retractions.push((entry.event.clone(), entry.count - kept));
            }
        }
        for (key, entry) in &mut new_books {
            if let Some(prior) = old.get(key) {
                // Still outstanding from before the revision: keep the
                // original emission watermark for the lead metric.
                entry.emit_high = prior.emit_high;
                if entry.count > prior.count {
                    emissions.push((entry.event.clone(), entry.count - prior.count));
                }
            } else {
                emissions.push((entry.event.clone(), entry.count));
            }
        }
        sp.books = new_books;
        for (event, n) in retractions {
            self.spec_retractions += n;
            self.obs.add(CounterId::SpeculativeRetractions, n);
            if self.config.collect_outputs {
                for _ in 0..n {
                    self.collected_records
                        .push(OutputRecord::Retract(event.clone()));
                }
            }
        }
        // Corrected output strictly after the retractions it replaces.
        let emitted = corrected.len() as u64 + emissions.iter().map(|(_, n)| n).sum::<u64>();
        self.spec_emits += emitted;
        self.obs.add(CounterId::SpeculativeEmits, emitted);
        if self.config.collect_outputs {
            for event in corrected {
                self.collected_records.push(OutputRecord::Emit(event));
            }
            for (event, n) in emissions {
                for _ in 0..n {
                    self.collected_records
                        .push(OutputRecord::Emit(event.clone()));
                }
            }
        }
    }

    /// Forces full settlement of the speculative overlay: every
    /// buffered event settles into the strict core and every books
    /// entry is confirmed. Afterwards the engine's state is a plain
    /// strict state — the precondition for
    /// [`snapshot_state`](Self::snapshot_state), which is why the
    /// checkpoint paths call this first.
    ///
    /// No records are emitted (everything settling was already emitted
    /// speculatively). Note the settlement advances the lateness
    /// watermark: events arriving after a settle that are older than
    /// the settled horizon are dropped, exactly as if the slack had
    /// been waited out. A no-op in strict mode.
    pub fn settle(&mut self) {
        let Some(mut sp) = self.speculation.take() else {
            return;
        };
        if let Some(mut reorder) = self.reorder.take() {
            let flushed = reorder.flush();
            self.reorder = Some(reorder);
            self.spec_capture = Some(Vec::new());
            for e in flushed {
                let _ = self.ingest_one_ordered(e);
            }
            let settled = self.spec_capture.take().unwrap_or_default();
            let leftover = self.confirm_settled(&mut sp, settled);
            debug_assert!(leftover.is_empty(), "settle outputs were all emitted");
        }
        sp.unsettled.clear();
        debug_assert!(
            sp.books.is_empty(),
            "fork and core agree once everything settled"
        );
        sp.books.clear();
        self.speculation = Some(sp);
    }

    /// Speculative end-of-stream: the fork finishes first (its trailing
    /// outputs are emitted as records), then the strict core finishes
    /// and confirms everything outstanding. Returns the strict report.
    pub(super) fn finish_speculative(&mut self) -> super::RunReport {
        let mut sp = self.speculation.take().expect("speculative mode");
        let _ = sp.spec.finish();
        let delta = std::mem::take(&mut sp.spec.collected_outputs);
        self.emit_outputs(&mut sp, delta);
        self.spec_capture = Some(Vec::new());
        let report = self.finish_strict();
        let settled = self.spec_capture.take().unwrap_or_default();
        let leftover = self.confirm_settled(&mut sp, settled);
        debug_assert!(leftover.is_empty(), "finish outputs were all emitted");
        debug_assert!(sp.books.is_empty(), "books drain to empty at finish");
        sp.unsettled.clear();
        sp.books.clear();
        self.speculation = Some(sp);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{build_engine_with, marker, pr, registry};
    use super::*;
    use crate::engine::ExecutionMode as Mode;
    use caesar_events::SchemaRegistry;

    fn spec_config(slack: Time) -> EngineConfig {
        EngineConfig::builder()
            .reorder_slack(slack)
            .collect_outputs(true)
            .consistency(Consistency::Speculative)
            .build()
    }

    fn strict_config(slack: Time) -> EngineConfig {
        EngineConfig::builder()
            .reorder_slack(slack)
            .collect_outputs(true)
            .build()
    }

    /// Folds a record stream: retractions cancel a prior emission of the
    /// same event. Returns the surviving multiset as sorted keys.
    fn fold(records: &[OutputRecord]) -> Vec<Vec<u8>> {
        let mut counts: BTreeMap<Vec<u8>, i64> = BTreeMap::new();
        for record in records {
            let entry = counts.entry(record_key(record.event())).or_default();
            if record.is_retraction() {
                *entry -= 1;
                assert!(*entry >= 0, "retraction without a prior emission");
            } else {
                *entry += 1;
            }
        }
        let mut out = Vec::new();
        for (key, n) in counts {
            for _ in 0..n {
                out.push(key.clone());
            }
        }
        out
    }

    fn canonical(events: &[Event]) -> Vec<Vec<u8>> {
        let mut keys: Vec<Vec<u8>> = events.iter().map(record_key).collect();
        keys.sort();
        keys
    }

    /// A disordered arrival sequence exercising ties, a within-slack
    /// straggler, and a beyond-slack drop.
    fn disordered_arrivals(reg: &SchemaRegistry) -> Vec<Event> {
        vec![
            pr(reg, 1, 1, "travel", 0),
            marker(reg, "ManySlowCars", 5, 0),
            pr(reg, 6, 2, "travel", 0),
            pr(reg, 4, 3, "travel", 0), // straggler: within slack, forces a revision
            pr(reg, 6, 4, "travel", 0), // equal-timestamp tie: appends
            marker(reg, "FewFastCars", 10, 0),
            pr(reg, 11, 5, "travel", 0),
            pr(reg, 2, 6, "travel", 0), // beyond slack: dropped, never retracted
            pr(reg, 12, 7, "travel", 0),
        ]
    }

    #[test]
    fn consistency_level_parses_and_names() {
        assert_eq!(
            "strict".parse::<Consistency>().unwrap(),
            Consistency::Strict
        );
        assert_eq!(
            "speculative".parse::<Consistency>().unwrap(),
            Consistency::Speculative
        );
        assert!("eventual".parse::<Consistency>().is_err());
        assert_eq!(Consistency::Speculative.name(), "speculative");
        assert_eq!(Consistency::default(), Consistency::Strict);
    }

    #[test]
    fn speculative_settles_to_strict_on_disordered_stream() {
        let (mut strict, reg) = build_engine_with(Mode::ContextAware, strict_config(4));
        let (mut spec, _) = build_engine_with(Mode::ContextAware, spec_config(4));
        for event in disordered_arrivals(&reg) {
            strict.ingest(event.clone()).unwrap();
            spec.ingest(event).unwrap();
        }
        let a = strict.finish();
        let b = spec.finish();
        assert_eq!(a.events_in, b.events_in);
        assert_eq!(a.events_out, b.events_out);
        assert_eq!(a.transitions_applied, b.transitions_applied);
        assert_eq!(a.outputs_by_type, b.outputs_by_type);
        assert_eq!(strict.late_dropped, spec.late_dropped);
        assert_eq!(strict.late_dropped, 1);
        // Settled outputs are byte-identical, in the same order.
        assert_eq!(
            canonical(&strict.collected_outputs),
            canonical(&spec.collected_outputs)
        );
        // Folding the record stream recovers exactly the settled outputs.
        assert_eq!(
            fold(&spec.collected_records),
            canonical(&spec.collected_outputs)
        );
        assert!(spec.spec_emits > 0, "something was emitted speculatively");
        assert!(spec.spec_rebuilds >= 1, "the straggler forced a revision");
        assert!(spec.speculation_settled());
    }

    #[test]
    fn late_context_switch_retracts_speculative_output() {
        let (mut engine, reg) = build_engine_with(Mode::ContextAware, spec_config(10));
        engine.ingest(marker(&reg, "ManySlowCars", 5, 0)).unwrap();
        engine.ingest(pr(&reg, 8, 1, "travel", 0)).unwrap();
        // Advancing past t=8 makes the fork produce the toll speculatively.
        engine.ingest(pr(&reg, 12, 2, "travel", 0)).unwrap();
        assert_eq!(engine.spec_emits, 1, "toll emitted before settlement");
        assert_eq!(engine.spec_retractions, 0);
        // Late congestion end at t=6: the toll at t=8 never happened.
        engine.ingest(marker(&reg, "FewFastCars", 6, 0)).unwrap();
        assert_eq!(engine.spec_rebuilds, 1);
        assert_eq!(engine.spec_retractions, 1, "the toll was retracted");
        let report = engine.finish();
        assert_eq!(report.outputs_of("TollNotification"), 0);
        assert!(engine.collected_outputs.is_empty());
        let toll = reg.lookup("TollNotification").unwrap();
        assert_eq!(engine.collected_records.len(), 2);
        assert!(!engine.collected_records[0].is_retraction());
        assert!(engine.collected_records[1].is_retraction());
        assert_eq!(engine.collected_records[0].event().type_id, toll);
        assert_eq!(
            engine.collected_records[0].event(),
            engine.collected_records[1].event(),
            "the retraction names the exact event it cancels"
        );
        assert!(fold(&engine.collected_records).is_empty());
    }

    #[test]
    fn unaffected_windows_produce_no_record_traffic() {
        // A straggler that does not change any derivation: the revision
        // replays, the books diff cancels, and no retraction is emitted.
        let (mut engine, reg) = build_engine_with(Mode::ContextAware, spec_config(10));
        engine.ingest(marker(&reg, "ManySlowCars", 5, 0)).unwrap();
        engine.ingest(pr(&reg, 8, 1, "travel", 0)).unwrap();
        engine.ingest(pr(&reg, 12, 2, "travel", 0)).unwrap();
        assert_eq!(engine.spec_emits, 1);
        // Late, but an exit-lane report derives nothing.
        engine.ingest(pr(&reg, 7, 3, "exit", 0)).unwrap();
        assert_eq!(engine.spec_rebuilds, 1);
        assert_eq!(engine.spec_retractions, 0, "no output changed");
        assert_eq!(engine.spec_emits, 1, "no re-emission either");
        // Congestion never ends here, so the report at t=12 also derives
        // a toll — produced (and emitted) when the stream finishes.
        let report = engine.finish();
        assert_eq!(report.outputs_of("TollNotification"), 2);
        assert_eq!(engine.spec_emits, 2);
        assert_eq!(
            fold(&engine.collected_records),
            canonical(&engine.collected_outputs)
        );
    }

    #[test]
    fn settle_forces_strict_state_for_snapshots() {
        let (mut engine, reg) = build_engine_with(Mode::ContextAware, spec_config(8));
        engine.ingest(pr(&reg, 1, 1, "travel", 0)).unwrap();
        engine.ingest(marker(&reg, "ManySlowCars", 5, 0)).unwrap();
        engine.ingest(pr(&reg, 6, 2, "travel", 0)).unwrap();
        assert!(!engine.speculation_settled(), "events are in flight");
        engine.settle();
        assert!(engine.speculation_settled());

        // The snapshot restores into a second speculative engine, which
        // then finishes exactly like the original.
        let state: super::super::EngineState =
            serde::from_bytes(&serde::to_bytes(&engine.snapshot_state())).unwrap();
        let (mut restored, _) = build_engine_with(Mode::ContextAware, spec_config(8));
        restored.restore_state(state).unwrap();
        for target in [&mut engine, &mut restored] {
            target.ingest(pr(&reg, 7, 3, "travel", 0)).unwrap();
            target.ingest(marker(&reg, "FewFastCars", 10, 0)).unwrap();
        }
        let a = engine.finish();
        let b = restored.finish();
        assert_eq!(a.events_out, b.events_out);
        assert_eq!(a.outputs_by_type, b.outputs_by_type);
        assert_eq!(
            canonical(&engine.collected_outputs),
            canonical(&restored.collected_outputs)
        );
    }

    #[test]
    fn strict_and_speculative_snapshots_interchange() {
        // Consistency is a latency knob, not a semantic one: a strict
        // snapshot restores into a speculative engine and vice versa.
        let (strict, reg) = build_engine_with(Mode::ContextAware, strict_config(4));
        let state = strict.snapshot_state();
        let (mut spec, _) = build_engine_with(Mode::ContextAware, spec_config(4));
        spec.restore_state(state).unwrap();
        spec.ingest(pr(&reg, 1, 1, "travel", 0)).unwrap();
        spec.finish();

        let (mut spec2, _) = build_engine_with(Mode::ContextAware, spec_config(4));
        spec2.ingest(pr(&reg, 1, 1, "travel", 0)).unwrap();
        spec2.settle();
        let (mut strict2, _) = build_engine_with(Mode::ContextAware, strict_config(4));
        strict2.restore_state(spec2.snapshot_state()).unwrap();
    }

    #[test]
    fn settle_advances_the_lateness_floor() {
        // After a settle, events older than the settled horizon are
        // dropped (the checkpoint documented trade-off), not revised.
        let (mut engine, reg) = build_engine_with(Mode::ContextAware, spec_config(8));
        engine.ingest(pr(&reg, 10, 1, "travel", 0)).unwrap();
        engine.settle();
        engine.ingest(pr(&reg, 3, 2, "travel", 0)).unwrap();
        assert_eq!(engine.late_dropped, 1);
        assert_eq!(engine.spec_rebuilds, 0, "a dropped event never revises");
        engine.finish();
    }

    #[test]
    fn equal_timestamp_ties_append_in_arrival_order() {
        let (mut engine, reg) = build_engine_with(Mode::ContextAware, spec_config(6));
        engine.ingest(pr(&reg, 5, 1, "travel", 0)).unwrap();
        engine.ingest(pr(&reg, 5, 2, "travel", 0)).unwrap();
        engine.ingest(pr(&reg, 5, 3, "travel", 0)).unwrap();
        assert_eq!(engine.spec_rebuilds, 0, "ties are in-order, not revisions");
        engine.finish();
    }

    #[test]
    fn zero_slack_speculation_is_a_passthrough() {
        // Degenerate but legal: with no slack nothing is ever revised,
        // and every output is emitted exactly once then confirmed.
        let (mut engine, reg) = build_engine_with(Mode::ContextAware, spec_config(0));
        engine.ingest(marker(&reg, "ManySlowCars", 5, 0)).unwrap();
        engine.ingest(pr(&reg, 8, 1, "travel", 0)).unwrap();
        engine.ingest(pr(&reg, 12, 2, "travel", 0)).unwrap();
        let report = engine.finish();
        assert_eq!(report.outputs_of("TollNotification"), 2);
        assert_eq!(engine.spec_retractions, 0);
        assert_eq!(engine.spec_rebuilds, 0);
        assert_eq!(
            fold(&engine.collected_records),
            canonical(&engine.collected_outputs)
        );
    }

    /// A stateful pair model (the TRAFFIC toll pattern is a stateless
    /// passthrough, so it never exercises the partial slab).
    fn build_pair_engine(config: EngineConfig) -> (Engine, SchemaRegistry) {
        use caesar_algebra::translate::{translate_query_set, TranslateOptions};
        use caesar_optimizer::{Optimizer, OptimizerConfig};
        use caesar_query::{parser::parse_model, queryset::QuerySet};
        const PAIRS: &str = r#"
            MODEL pairs DEFAULT on
            CONTEXT on {
                DERIVE Pair(a.vid, b.vid)
                    PATTERN SEQ(PositionReport a, PositionReport b) WITHIN 10
            }
        "#;
        let model = parse_model(PAIRS).unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = registry();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        let program =
            Optimizer::new(OptimizerConfig::default(), Default::default()).optimize(t, &reg);
        let engine = Engine::new(program, &reg, config);
        (engine, reg)
    }

    /// Every partial-slab slot of the settled core satisfies the
    /// generation-index invariants.
    fn pools_consistent(engine: &Engine) -> bool {
        engine.partitions.values().all(|programs| {
            programs
                .deriving
                .iter()
                .chain(programs.processing.iter().flat_map(|c| c.plans.iter()))
                .chain(programs.redundant.iter())
                .all(|plan| {
                    plan.ops.iter().all(|op| match op {
                        caesar_algebra::ops::Op::Pattern(pat) => pat.pool_consistent(),
                        _ => true,
                    })
                })
        })
    }

    /// Hand-computed pool accounting across a speculative splice+replay.
    ///
    /// `SEQ(PositionReport a, PositionReport b) WITHIN 10`, slack 6,
    /// arrivals `t = 1, 20, 22` then straggler `t = 18`:
    ///
    /// * t=1  (vid 1): opens partial P1 → slot 0. Live 1.
    /// * t=20 (vid 2): P1 is outside the window (20−1 > 10), so it is
    ///   expired and its slot freed around this transaction; P2 opens.
    /// * t=22 (vid 3): extends P2 → `Pair(2,3)`; P3 opens on a recycled
    ///   slot. The fork emitted `Pair(2,3)` speculatively.
    /// * t=18 (vid 4): within slack (watermark 22−6 = 16), forces a
    ///   revision; the replay of `18, 20, 22` derives `Pair(4,2)`,
    ///   `Pair(4,3)` and `Pair(2,3)` — the books diff re-emits the two
    ///   new pairs and retracts nothing.
    ///
    /// Settled-core slab timeline (strict order `1, 18, 20, 22`): P1 is
    /// the only partial ever freed, and P(18), P(20), P(22) are live
    /// together at t=22. Exactly **one** slot reuse and a **peak of 3**
    /// live partials — in both the speculative engine's settled core and
    /// the strict twin — and the metrics counters report them.
    #[test]
    fn splice_replay_reuses_pooled_partials() {
        let spec_cfg = spec_config(6)
            .to_builder()
            .observability(ObservabilityLevel::Counters)
            .build();
        let strict_cfg = strict_config(6)
            .to_builder()
            .observability(ObservabilityLevel::Counters)
            .build();
        let (mut spec, reg) = build_pair_engine(spec_cfg);
        let (mut strict, _) = build_pair_engine(strict_cfg);
        let arrivals = [
            pr(&reg, 1, 1, "travel", 0),
            pr(&reg, 20, 2, "travel", 0),
            pr(&reg, 22, 3, "travel", 0),
            pr(&reg, 18, 4, "travel", 0), // straggler: splice + replay
        ];
        for event in arrivals {
            spec.ingest(event.clone()).unwrap();
            strict.ingest(event).unwrap();
        }
        assert!(spec.spec_rebuilds >= 1, "the straggler forced a revision");
        let a = spec.finish();
        let b = strict.finish();

        // The replay over recycled slots produced exactly the strict
        // outputs: no match ever assembled from a stale partial.
        assert_eq!(a.outputs_of("Pair"), 3);
        assert_eq!(a.outputs_by_type, b.outputs_by_type);
        assert_eq!(
            canonical(&spec.collected_outputs),
            canonical(&strict.collected_outputs)
        );
        assert_eq!(
            fold(&spec.collected_records),
            canonical(&spec.collected_outputs)
        );
        assert_eq!(spec.spec_retractions, 0, "old pairs all survived replay");

        // Hand-computed slab accounting, surfaced through the metrics.
        for engine in [&spec, &strict] {
            assert!(pools_consistent(engine));
            let counters = &engine.metrics_snapshot().counters;
            assert_eq!(counters["spec_pool_reuse"], 1, "P1's slot reused once");
            assert_eq!(counters["partials_peak"], 3, "P18, P20, P22 live at t=22");
        }
    }
}
