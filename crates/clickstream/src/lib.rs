//! Clickstream/funnel substrate: a web-analytics workload where the
//! *session state* of each user is the application context.
//!
//! The paper's use cases derive contexts from the physical world (road
//! conditions, activity phases). This crate models the same idea for a
//! web shop: every user is one stream partition, and the per-user
//! session state — *browsing* (the default), *engaged* (items in the
//! cart), *abandoning* (cart going stale), *bot_suspect* (rate alarm
//! raised) — is the context. Funnel analytics attach per state:
//! browse-path pairs while browsing, funnel conversion and
//! cart-abandonment (a negated `Purchase` between cart and session end)
//! while engaged, win-back detection while abandoning, and burst
//! detection while bot-suspect. Out of every state, those queries are
//! suspended — exactly the §6.2 suspension opportunity, on a workload
//! whose partition count scales to millions of user keys.
//!
//! The generator scripts whole sessions (view → cart → purchase
//! funnels, churn/abandonment, bot bursts) per user, with Zipf-skewed
//! user sampling over a configurable key population, an optional
//! coverage floor that pins leading sessions to distinct users (so
//! partition-cardinality floors hold by construction), an optional
//! id-scattering mode that spreads partition ids over the full `u32`
//! space (exercising sparse partition structures), and an optional
//! disorder pass. Sessions of the same user never overlap, so the
//! scripted ground truth ([`ClickSummary`]) stays exact.
//!
//! The model stays inside the reference-oracle envelope (flat `SEQ`,
//! at most one negated element whose type differs from every positive
//! element), so the whole substrate runs through the differential
//! harness byte-for-byte.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

use caesar_events::generator::rng;
use caesar_events::{AttrType, Event, PartitionId, Schema, SchemaRegistry, Time, Value};
use caesar_query::parser::parse_model;
use caesar_query::CaesarModel;
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt::Write;

/// Queries the model gains per replication step (one browse-path, one
/// conversion, one cart-abandonment, one win-back, one bot-burst).
pub const QUERIES_PER_REPLICATION: usize = 5;

/// `WITHIN` horizon of the browse-path query (ticks).
pub const BROWSE_WITHIN: Time = 30;
/// `WITHIN` horizon of the conversion query.
pub const CONVERSION_WITHIN: Time = 120;
/// `WITHIN` horizon of the cart-abandonment query.
pub const ABANDON_WITHIN: Time = 240;
/// `WITHIN` horizon of the win-back query.
pub const WINBACK_WITHIN: Time = 60;
/// `WITHIN` horizon of the bot-burst query.
pub const BOT_WITHIN: Time = 5;
/// Translation fallback for queries without an explicit horizon (all
/// clickstream queries carry one; this only matters as a default).
pub const DEFAULT_WITHIN: Time = 60;

/// Input schemas of the clickstream substrate (attribute lists shared
/// with the CLI example files and tests).
pub const SCHEMAS: &[(&str, &[(&str, AttrType)])] = &[
    (
        "View",
        &[
            ("user", AttrType::Int),
            ("page", AttrType::Int),
            ("dwell", AttrType::Int),
        ],
    ),
    (
        "CartAdd",
        &[
            ("user", AttrType::Int),
            ("item", AttrType::Int),
            ("value", AttrType::Int),
        ],
    ),
    (
        "Purchase",
        &[
            ("user", AttrType::Int),
            ("value", AttrType::Int),
            ("items", AttrType::Int),
        ],
    ),
    (
        "IdleTick",
        &[("user", AttrType::Int), ("sec", AttrType::Int)],
    ),
    (
        "SessionEnd",
        &[("user", AttrType::Int), ("sec", AttrType::Int)],
    ),
    (
        "BotAlarm",
        &[("user", AttrType::Int), ("rate", AttrType::Int)],
    ),
    (
        "CaptchaOk",
        &[("user", AttrType::Int), ("sec", AttrType::Int)],
    ),
];

/// Registers the input event schemas.
pub fn register_schemas(registry: &mut SchemaRegistry) {
    for (name, attrs) in SCHEMAS {
        registry
            .register(Schema::new(*name, attrs))
            .expect("clickstream schemas are consistent");
    }
}

/// Builds the registry pre-loaded with the clickstream input schemas.
#[must_use]
pub fn clickstream_registry() -> SchemaRegistry {
    let mut registry = SchemaRegistry::new();
    register_schemas(&mut registry);
    registry
}

/// Builds the clickstream CAESAR model with `replication` copies of
/// each funnel query ([`QUERIES_PER_REPLICATION`] per copy).
///
/// Replicas differ only in a predicate on the *last* pattern variable,
/// so predicate push-down leaves the pattern prefixes identical and the
/// optimizer's prefix sharing applies across the whole replica set.
#[must_use]
pub fn clickstream_model(replication: usize) -> CaesarModel {
    assert!(replication >= 1);
    let mut browsing = String::new();
    let mut engaged = String::new();
    let mut abandoning = String::new();
    let mut bot = String::new();
    for i in 0..replication {
        let sfx = if i == 0 {
            String::new()
        } else {
            format!("_{i}")
        };
        let _ = writeln!(
            browsing,
            "DERIVE BrowsePath{sfx}(a.page, b.page) PATTERN SEQ(View a, View b) \
             WHERE b.dwell > {} WITHIN {BROWSE_WITHIN}",
            2 + i
        );
        let _ = writeln!(
            engaged,
            "DERIVE Conversion{sfx}(c.value, p.value) PATTERN SEQ(CartAdd c, Purchase p) \
             WHERE p.value >= {} WITHIN {CONVERSION_WITHIN}",
            5 + i
        );
        let _ = writeln!(
            engaged,
            "DERIVE CartAbandoned{sfx}(c.value, e.sec) \
             PATTERN SEQ(CartAdd c, NOT Purchase n, SessionEnd e) \
             WHERE e.sec >= {i} WITHIN {ABANDON_WITHIN}"
        );
        let _ = writeln!(
            abandoning,
            "DERIVE WinBack{sfx}(t.sec, c.item) PATTERN SEQ(IdleTick t, CartAdd c) \
             WHERE c.value > {} WITHIN {WINBACK_WITHIN}",
            5 * i
        );
        let _ = writeln!(
            bot,
            "DERIVE BotBurst{sfx}(a.page, c.page) PATTERN SEQ(View a, View b, View c) \
             WHERE c.dwell < {} WITHIN {BOT_WITHIN}",
            5 + i
        );
    }
    let text = format!(
        r#"
        MODEL clickstream DEFAULT browsing
        CONTEXT browsing {{
            SWITCH CONTEXT engaged PATTERN CartAdd
            SWITCH CONTEXT bot_suspect PATTERN BotAlarm
            {browsing}
        }}
        CONTEXT engaged {{
            SWITCH CONTEXT browsing PATTERN Purchase
            SWITCH CONTEXT browsing PATTERN SessionEnd
            SWITCH CONTEXT abandoning PATTERN IdleTick
            SWITCH CONTEXT bot_suspect PATTERN BotAlarm
            {engaged}
        }}
        CONTEXT abandoning {{
            SWITCH CONTEXT engaged PATTERN CartAdd
            SWITCH CONTEXT browsing PATTERN SessionEnd
            {abandoning}
        }}
        CONTEXT bot_suspect {{
            SWITCH CONTEXT browsing PATTERN CaptchaOk
            {bot}
        }}
        "#
    );
    parse_model(&text).expect("generated clickstream model is valid")
}

/// Derived output type names of [`clickstream_model`] at the given
/// replication (what a differential workload lists as `output_types`).
#[must_use]
pub fn output_types(replication: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..replication {
        let sfx = if i == 0 {
            String::new()
        } else {
            format!("_{i}")
        };
        for base in [
            "BrowsePath",
            "Conversion",
            "CartAbandoned",
            "WinBack",
            "BotBurst",
        ] {
            out.push(format!("{base}{sfx}"));
        }
    }
    out
}

/// A [`CaesarBuilder`] pre-loaded with the clickstream model at the
/// given replication, all seven input schemas and the default horizon.
///
/// [`CaesarBuilder`]: caesar_core::CaesarBuilder
#[must_use]
pub fn clickstream_builder(replication: usize) -> caesar_core::CaesarBuilder {
    let mut builder = caesar_core::Caesar::builder()
        .model(clickstream_model(replication))
        .within(DEFAULT_WITHIN);
    for (name, attrs) in SCHEMAS {
        builder = builder.schema(name, attrs);
    }
    builder
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ClickConfig {
    /// User-key population the Zipf sampler draws from (up to millions;
    /// must fit in `u32`).
    pub users: u64,
    /// Number of sessions to script.
    pub sessions: usize,
    /// Leading sessions pinned to distinct sequential users, so a
    /// partition-cardinality floor holds regardless of Zipf collisions.
    pub coverage_floor: usize,
    /// Zipf exponent for user sampling (`0.0` = uniform; `~1.1` = the
    /// classic heavy head where a few hot users dominate traffic).
    pub zipf_s: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of sessions that are bot bursts.
    pub bot_fraction: f64,
    /// Fraction of sessions that convert (view → cart → purchase).
    pub buy_fraction: f64,
    /// Fraction of sessions that add to cart and abandon.
    pub abandon_fraction: f64,
    /// Minimum page views per session.
    pub min_views: u32,
    /// Maximum page views per session.
    pub max_views: u32,
    /// Mean inter-session spacing (scales the scripted horizon).
    pub mean_gap: Time,
    /// Per-event probability of being displaced by one slot per
    /// disorder pass (`0.0` = in-order stream).
    pub disorder: f64,
    /// Number of adjacent-displacement passes (bounds max lateness).
    pub disorder_passes: u32,
    /// Scatter partition ids over the full `u32` space instead of
    /// using dense `0..users` ranks — exercises sparse partition
    /// structures end to end.
    pub scatter_ids: bool,
}

impl Default for ClickConfig {
    fn default() -> Self {
        Self {
            users: 10_000,
            sessions: 2_000,
            coverage_floor: 0,
            zipf_s: 1.1,
            seed: 7,
            bot_fraction: 0.08,
            buy_fraction: 0.25,
            abandon_fraction: 0.25,
            min_views: 1,
            max_views: 4,
            mean_gap: 8,
            disorder: 0.0,
            disorder_passes: 3,
            scatter_ids: false,
        }
    }
}

/// Exact scripted ground truth of one generated stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClickSummary {
    /// Total sessions scripted.
    pub sessions: usize,
    /// Sessions that only browse (views, then session end).
    pub browse_sessions: usize,
    /// Sessions that convert (cart adds followed by a purchase).
    pub buyer_sessions: usize,
    /// Sessions that add to cart and never purchase.
    pub abandon_sessions: usize,
    /// Abandoning sessions that end while still *engaged* (the session
    /// end terminates the engaged window, so cart-abandonment fires).
    pub direct_abandons: usize,
    /// Abandoning sessions that go idle and then add to cart again
    /// (the win-back pattern fires in the *abandoning* context).
    pub winback_sessions: usize,
    /// Bot sessions (alarm, view burst, captcha).
    pub bot_sessions: usize,
    /// Distinct partition ids touched.
    pub partitions_touched: usize,
    /// Total events scripted.
    pub events: usize,
    /// Largest event timestamp.
    pub max_time: Time,
}

/// Maps a uniform draw `u ∈ [0, 1)` to a Zipf(`s`) rank in `0..n`
/// (rank 0 is the hottest key), via the continuous inverse-CDF
/// approximation of the Zipf mass function — exact enough for workload
/// skew, and O(1) per draw with no precomputed table over millions of
/// keys.
#[must_use]
pub fn zipf_rank(u: f64, n: u64, s: f64) -> u64 {
    debug_assert!((0.0..1.0).contains(&u));
    let n_f = n.max(1) as f64;
    let k = if (s - 1.0).abs() < 1e-9 {
        // s → 1: CDF ~ ln(k)/ln(n), inverse k = n^u.
        n_f.powf(u)
    } else {
        let one_s = 1.0 - s;
        ((u * ((n_f + 1.0).powf(one_s) - 1.0)) + 1.0).powf(1.0 / one_s)
    };
    (k.floor() as u64).clamp(1, n.max(1)) - 1
}

/// SplitMix64 finalizer — scatters a dense rank over the id space.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The partition id of a sampled user rank.
#[must_use]
pub fn partition_for(rank: u64, scatter: bool) -> PartitionId {
    if scatter {
        PartitionId((mix(rank) >> 32) as u32)
    } else {
        PartitionId(rank as u32)
    }
}

/// What a scripted session does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionKind {
    Browse,
    Buyer,
    AbandonDirect,
    AbandonIdle { winback: bool },
    Bot,
}

/// Generates the clickstream; returns the events (time-sorted, then
/// optionally disordered) and the exact scripted ground truth.
///
/// Panics if `config.users` does not fit in `u32`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate(config: &ClickConfig, registry: &SchemaRegistry) -> (Vec<Event>, ClickSummary) {
    assert!(config.users <= u64::from(u32::MAX), "partition ids are u32");
    let view = registry.lookup("View").expect("registered");
    let cart = registry.lookup("CartAdd").expect("registered");
    let purchase = registry.lookup("Purchase").expect("registered");
    let idle = registry.lookup("IdleTick").expect("registered");
    let end = registry.lookup("SessionEnd").expect("registered");
    let alarm = registry.lookup("BotAlarm").expect("registered");
    let captcha = registry.lookup("CaptchaOk").expect("registered");

    let mut r = rng(config.seed);
    let mut events = Vec::new();
    let mut summary = ClickSummary {
        sessions: config.sessions,
        ..ClickSummary::default()
    };
    // Next timestamp at which each user is free again — sessions of the
    // same user never overlap, so per-state ground truth stays exact.
    let mut next_free: BTreeMap<u32, Time> = BTreeMap::new();
    let horizon: Time = (config.sessions as Time).saturating_mul(config.mean_gap.max(1)) + 2;
    let min_views = config.min_views.max(1);
    let max_views = config.max_views.max(min_views);

    for s in 0..config.sessions {
        let rank = if s < config.coverage_floor {
            (s as u64) % config.users.max(1)
        } else {
            zipf_rank(r.gen_range(0.0..1.0f64), config.users, config.zipf_s)
        };
        let pid = partition_for(rank, config.scatter_ids);
        let user = i64::from(pid.0);
        let free = next_free.get(&pid.0).copied().unwrap_or(0);
        let mut t = r.gen_range(1..horizon).max(free);

        let roll: f64 = r.gen_range(0.0..1.0);
        let kind = if roll < config.bot_fraction {
            SessionKind::Bot
        } else if roll < config.bot_fraction + config.buy_fraction {
            SessionKind::Buyer
        } else if roll < config.bot_fraction + config.buy_fraction + config.abandon_fraction {
            if r.gen_bool(0.5) {
                SessionKind::AbandonDirect
            } else {
                SessionKind::AbandonIdle {
                    winback: r.gen_bool(0.4),
                }
            }
        } else {
            SessionKind::Browse
        };

        let int = Value::Int;
        let mut session = Vec::new();
        let mut push = |ty, t: Time, attrs: Vec<Value>| {
            session.push(Event::simple(ty, t, pid, attrs));
        };
        let views = |r: &mut caesar_events::generator::WorkloadRng,
                     push: &mut dyn FnMut(caesar_events::TypeId, Time, Vec<Value>),
                     t: &mut Time,
                     n: u32,
                     bot: bool| {
            for _ in 0..n {
                let (dwell, page, dt) = if bot {
                    (
                        r.gen_range(0..3i64),
                        r.gen_range(1..9i64),
                        r.gen_range(0..2),
                    )
                } else {
                    (
                        r.gen_range(3..30i64),
                        r.gen_range(1..41i64),
                        r.gen_range(1..5),
                    )
                };
                *t += dt;
                push(
                    view,
                    *t,
                    vec![Value::Int(user), Value::Int(page), Value::Int(dwell)],
                );
            }
        };

        match kind {
            SessionKind::Browse => {
                summary.browse_sessions += 1;
                let n = r.gen_range(min_views..=max_views);
                views(&mut r, &mut push, &mut t, n, false);
                t += r.gen_range(1..5);
                push(end, t, vec![int(user), int(t as i64)]);
            }
            SessionKind::Buyer => {
                summary.buyer_sessions += 1;
                let n = r.gen_range(min_views..=max_views);
                views(&mut r, &mut push, &mut t, n, false);
                // First cart add switches browsing → engaged; initiation
                // is exclusive, so a second in-window cart add carries
                // the conversion match.
                t += r.gen_range(1..4);
                push(
                    cart,
                    t,
                    vec![int(user), int(r.gen_range(1..41)), int(r.gen_range(5..200))],
                );
                t += r.gen_range(1..4);
                let value = r.gen_range(5..200i64);
                push(
                    cart,
                    t,
                    vec![int(user), int(r.gen_range(1..41)), int(value)],
                );
                t += r.gen_range(1..8);
                push(
                    purchase,
                    t,
                    vec![int(user), int(value + r.gen_range(5..50)), int(2)],
                );
                t += r.gen_range(1..5);
                push(end, t, vec![int(user), int(t as i64)]);
            }
            SessionKind::AbandonDirect => {
                summary.abandon_sessions += 1;
                summary.direct_abandons += 1;
                let n = r.gen_range(min_views..=max_views);
                views(&mut r, &mut push, &mut t, n, false);
                t += r.gen_range(1..4);
                push(
                    cart,
                    t,
                    vec![int(user), int(r.gen_range(1..41)), int(r.gen_range(5..200))],
                );
                t += r.gen_range(1..4);
                push(
                    cart,
                    t,
                    vec![int(user), int(r.gen_range(1..41)), int(r.gen_range(5..200))],
                );
                // Session ends while still engaged: the end terminates
                // the engaged window (inclusive), so the negated-pattern
                // abandonment query fires.
                t += r.gen_range(2..30);
                push(end, t, vec![int(user), int(t as i64)]);
            }
            SessionKind::AbandonIdle { winback } => {
                summary.abandon_sessions += 1;
                let n = r.gen_range(min_views..=max_views);
                views(&mut r, &mut push, &mut t, n, false);
                t += r.gen_range(1..4);
                push(
                    cart,
                    t,
                    vec![int(user), int(r.gen_range(1..41)), int(r.gen_range(5..200))],
                );
                // Idle tick switches engaged → abandoning (the switching
                // tick itself is excluded from the abandoning window).
                t += r.gen_range(2..10);
                push(idle, t, vec![int(user), int(t as i64)]);
                for _ in 0..r.gen_range(1..3) {
                    t += r.gen_range(3..10);
                    push(idle, t, vec![int(user), int(t as i64)]);
                }
                if winback {
                    summary.winback_sessions += 1;
                    // The cart add terminates abandoning (inclusive), so
                    // it pairs with an in-window idle tick: WinBack.
                    t += r.gen_range(1..8);
                    push(
                        cart,
                        t,
                        vec![int(user), int(r.gen_range(1..41)), int(r.gen_range(6..200))],
                    );
                    t += r.gen_range(1..4);
                    push(
                        cart,
                        t,
                        vec![int(user), int(r.gen_range(1..41)), int(r.gen_range(5..200))],
                    );
                    // ... and the session still ends unbought while
                    // engaged, so abandonment fires here too.
                    summary.direct_abandons += 1;
                    t += r.gen_range(2..20);
                    push(end, t, vec![int(user), int(t as i64)]);
                } else {
                    t += r.gen_range(1..8);
                    push(end, t, vec![int(user), int(t as i64)]);
                }
            }
            SessionKind::Bot => {
                summary.bot_sessions += 1;
                push(alarm, t, vec![int(user), int(r.gen_range(50..200))]);
                t += 1;
                let n = r.gen_range(4..7u32);
                views(&mut r, &mut push, &mut t, n, true);
                t += 1;
                push(captcha, t, vec![int(user), int(t as i64)]);
                t += 1;
                push(end, t, vec![int(user), int(t as i64)]);
            }
        }
        events.extend(session);
        next_free.insert(pid.0, t + r.gen_range(20..120));
    }

    events.sort_by_key(Event::time);
    if config.disorder > 0.0 {
        for _ in 0..config.disorder_passes.max(1) {
            for i in 1..events.len() {
                if r.gen_bool(config.disorder) {
                    events.swap(i - 1, i);
                }
            }
        }
    }
    summary.partitions_touched = next_free.len();
    summary.events = events.len();
    summary.max_time = events.iter().map(Event::time).max().unwrap_or(0);
    (events, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_core::prelude::*;

    #[test]
    fn model_shape_and_replication() {
        let model = clickstream_model(1);
        assert_eq!(model.default_context, "browsing");
        assert_eq!(model.contexts.len(), 4);
        assert_eq!(model.context("browsing").unwrap().processing.len(), 1);
        assert_eq!(model.context("engaged").unwrap().processing.len(), 2);
        assert_eq!(model.context("abandoning").unwrap().processing.len(), 1);
        assert_eq!(model.context("bot_suspect").unwrap().processing.len(), 1);
        let model3 = clickstream_model(3);
        let queries: usize = model3.contexts.iter().map(|c| c.processing.len()).sum();
        assert_eq!(queries, 3 * QUERIES_PER_REPLICATION);
        assert_eq!(output_types(3).len(), 3 * QUERIES_PER_REPLICATION);
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let reg = clickstream_registry();
        let config = ClickConfig {
            sessions: 300,
            ..ClickConfig::default()
        };
        let (a, sa) = generate(&config, &reg);
        let (b, sb) = generate(&config, &reg);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(a.windows(2).all(|w| w[0].time() <= w[1].time()));
        assert_eq!(sa.events, a.len());
        assert_eq!(
            sa.browse_sessions + sa.buyer_sessions + sa.abandon_sessions + sa.bot_sessions,
            sa.sessions
        );
    }

    #[test]
    fn disorder_permutes_without_losing_events() {
        let reg = clickstream_registry();
        let ordered = ClickConfig {
            sessions: 200,
            ..ClickConfig::default()
        };
        let (a, _) = generate(&ordered, &reg);
        let disordered = ClickConfig {
            disorder: 0.3,
            ..ordered
        };
        let (mut b, _) = generate(&disordered, &reg);
        assert!(
            caesar_events::max_lateness(&b) > 0,
            "disorder had no effect"
        );
        b.sort_by_key(Event::time);
        let key = |e: &Event| {
            format!(
                "{}/{}/{:?}/{:?}",
                e.time(),
                e.partition.0,
                e.type_id,
                e.attrs
            )
        };
        let mut ka: Vec<_> = a.iter().map(key).collect();
        let mut kb: Vec<_> = b.iter().map(key).collect();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
    }

    #[test]
    fn coverage_floor_guarantees_distinct_partitions() {
        let reg = clickstream_registry();
        let config = ClickConfig {
            users: 10_000,
            sessions: 700,
            coverage_floor: 500,
            ..ClickConfig::default()
        };
        let (_, summary) = generate(&config, &reg);
        assert!(summary.partitions_touched >= 500);
    }

    #[test]
    fn zipf_skews_hot_keys() {
        let mut r = rng(3);
        let n = 1_000u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..20_000 {
            counts[zipf_rank(r.gen_range(0.0..1.0f64), n, 1.2) as usize] += 1;
        }
        assert!(
            counts[0] > 50 * counts[200].max(1),
            "head not heavy: {} vs {}",
            counts[0],
            counts[200]
        );
        // Uniform at s = 0: the head holds no outsized share.
        let mut uniform = vec![0u64; n as usize];
        for _ in 0..20_000 {
            uniform[zipf_rank(r.gen_range(0.0..1.0f64), n, 0.0) as usize] += 1;
        }
        assert!(
            uniform[0] < 200,
            "s=0 should be near-uniform: {}",
            uniform[0]
        );
    }

    #[test]
    fn scatter_ids_spread_over_u32_space() {
        let reg = clickstream_registry();
        let config = ClickConfig {
            users: 1_000,
            sessions: 300,
            scatter_ids: true,
            ..ClickConfig::default()
        };
        let (events, _) = generate(&config, &reg);
        assert!(
            events.iter().any(|e| e.partition.0 > 1_000_000),
            "scattered ids should leave the dense range"
        );
    }

    #[test]
    fn model_translates_against_registry() {
        let system = clickstream_builder(3).build();
        assert!(system.is_ok(), "{:?}", system.err().map(|e| e.to_string()));
    }

    #[test]
    fn end_to_end_funnels_fire_per_state() {
        let reg = clickstream_registry();
        let config = ClickConfig {
            users: 200,
            sessions: 400,
            ..ClickConfig::default()
        };
        let (events, summary) = generate(&config, &reg);
        let mut system = clickstream_builder(1).build().unwrap();
        let report = system.run_stream(&mut VecStream::new(events)).unwrap();
        assert!(summary.buyer_sessions > 0 && summary.bot_sessions > 0);
        assert!(report.outputs_of("BrowsePath") > 0);
        assert!(report.outputs_of("Conversion") >= summary.buyer_sessions as u64);
        assert!(report.outputs_of("CartAbandoned") >= summary.direct_abandons as u64);
        assert!(report.outputs_of("WinBack") >= summary.winback_sessions as u64);
        assert!(report.outputs_of("BotBurst") > 0);
    }
}
