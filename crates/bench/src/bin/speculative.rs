//! Speculative vs strict visibility latency on disorder-biased Linear
//! Road streams.
//!
//! Strict consistency holds every derived event until the reorder
//! slack can no longer change it, so on a disordered stream *all*
//! output pays worst-case visibility latency. Speculative consistency
//! emits the moment inputs are processed and compensates late arrivals
//! with retractions. This bench quantifies the trade on the full
//! Linear Road query set: the traffic simulator's stream is
//! disorder-biased by a seeded bounded shuffle (each event may be
//! displaced up to `window` arrival slots), the slack is set to the
//! stream's exact maximum lateness (nothing drops, so both legs settle
//! to the identical output multiset — asserted), and both legs ingest
//! event-at-a-time while recording *when* each output became visible:
//!
//! * **first output** — arrival index at which the first derived event
//!   reached the subscriber; the headline latency win.
//! * **mean visibility lead** — per settled output, how many arrivals
//!   earlier speculation surfaced it than strict settlement did
//!   (matched per wire encoding, first-in-first-out).
//! * **retraction rate** — retractions per speculative emission; the
//!   price of the lead.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin speculative
//! ```
//!
//! Besides the printed table, results are written to
//! `BENCH_speculative.json` in the current directory.

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_events::generator::rng;
use caesar_events::{encode_to_vec, max_lateness};
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use caesar_runtime::Engine;
use rand::Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// Bounded-displacement shuffle: event `i` may trade places with any
/// event up to `window` slots ahead, giving a stream whose disorder is
/// bounded (in arrival slots) without touching timestamps.
fn bias_disorder(events: &mut [Event], window: usize, seed: u64) {
    if window == 0 {
        return;
    }
    let mut rng = rng(seed);
    for i in 0..events.len() {
        let hi = (i + window).min(events.len() - 1);
        let j = rng.gen_range(i..=hi);
        events.swap(i, j);
    }
}

/// One leg's visibility trace: per output encoding, the 1-based arrival
/// indices at which copies of it became visible, in visibility order.
#[derive(Default)]
struct Trace {
    seen: BTreeMap<Vec<u8>, Vec<usize>>,
    first_visible: Option<usize>,
    emissions: u64,
    retractions: u64,
    wall_secs: f64,
}

impl Trace {
    fn record(&mut self, event: &Event, at: usize) {
        self.first_visible.get_or_insert(at);
        self.emissions += 1;
        self.seen.entry(encode_to_vec(event)).or_default().push(at);
    }

    /// The settled multiset as sorted `(key, count)` pairs — for the
    /// strict leg this is everything seen; the speculative leg subtracts
    /// retractions before calling this.
    fn settled(&self) -> Vec<(Vec<u8>, usize)> {
        self.seen
            .iter()
            .filter(|(_, at)| !at.is_empty())
            .map(|(k, at)| (k.clone(), at.len()))
            .collect()
    }
}

fn engine_config(slack: Time, consistency: Consistency) -> EngineConfig {
    EngineConfig::builder()
        .reorder_slack(slack)
        .collect_outputs(true)
        .consistency(consistency)
        .build()
}

fn run_leg(events: &[Event], slack: Time, consistency: Consistency) -> Trace {
    let mut sys = build_lr_system(
        1,
        OptimizerConfig::default(),
        engine_config(slack, consistency),
    );
    let mut trace = Trace::default();
    let start = Instant::now();
    let speculative = consistency == Consistency::Speculative;
    for (i, event) in events.iter().enumerate() {
        sys.engine
            .ingest(event.clone())
            .expect("slack covers the disorder");
        drain(&mut sys.engine, speculative, i + 1, &mut trace);
    }
    sys.engine.finish();
    drain(&mut sys.engine, speculative, events.len(), &mut trace);
    trace.wall_secs = start.elapsed().as_secs_f64();
    trace
}

/// Moves this step's freshly visible outputs into the trace. Strict
/// visibility is the collected settled outputs; speculative visibility
/// is the emission records, with retractions cancelling the *earliest*
/// outstanding sighting of the same encoding (FIFO, matching how the
/// lead is scored).
fn drain(engine: &mut Engine, speculative: bool, at: usize, trace: &mut Trace) {
    if !speculative {
        for event in std::mem::take(&mut engine.collected_outputs) {
            trace.record(&event, at);
        }
        return;
    }
    engine.collected_outputs.clear();
    for record in std::mem::take(&mut engine.collected_records) {
        if record.is_retraction() {
            trace.retractions += 1;
            let key = encode_to_vec(record.event());
            let sightings = trace
                .seen
                .get_mut(&key)
                .expect("retraction had an emission");
            sightings.remove(0);
        } else {
            trace.record(record.event(), at);
        }
    }
}

struct Row {
    window: usize,
    events: u64,
    slack: Time,
    settled: u64,
    strict_first: usize,
    spec_first: usize,
    mean_lead: f64,
    retraction_rate: f64,
    strict_evs: f64,
    spec_evs: f64,
}

/// Mean per-output visibility lead in arrival slots: settled outputs
/// matched per encoding, k-th strict sighting against k-th surviving
/// speculative sighting.
fn mean_lead(strict: &Trace, spec: &Trace) -> f64 {
    let mut total: f64 = 0.0;
    let mut matched: u64 = 0;
    for (key, strict_at) in &strict.seen {
        let spec_at = spec.seen.get(key).map_or(&[][..], Vec::as_slice);
        for (s, e) in strict_at.iter().zip(spec_at) {
            total += *s as f64 - *e as f64;
            matched += 1;
        }
    }
    if matched == 0 {
        0.0
    } else {
        total / matched as f64
    }
}

fn measure(window: usize, base_events: &[Event], seed: u64) -> Row {
    let mut events = base_events.to_vec();
    bias_disorder(&mut events, window, seed);
    let slack = max_lateness(&events);
    let strict = run_leg(&events, slack, Consistency::Strict);
    let spec = run_leg(&events, slack, Consistency::Speculative);
    assert_eq!(
        strict.settled(),
        spec.settled(),
        "window {window}: speculative must settle to the strict multiset"
    );
    let settled: u64 = strict.seen.values().map(|v| v.len() as u64).sum();
    Row {
        window,
        events: events.len() as u64,
        slack,
        settled,
        strict_first: strict.first_visible.unwrap_or(0),
        spec_first: spec.first_visible.unwrap_or(0),
        mean_lead: mean_lead(&strict, &spec),
        retraction_rate: if spec.emissions == 0 {
            0.0
        } else {
            spec.retractions as f64 / spec.emissions as f64
        },
        strict_evs: events.len() as f64 / strict.wall_secs,
        spec_evs: events.len() as f64 / spec.wall_secs,
    }
}

fn main() {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 2,
        duration: 600,
        seed: 17,
        base_cars: 150.0,
        peak_cars: 250.0,
        ..Default::default()
    });
    let base = sim.generate();

    let rows: Vec<Row> = [4usize, 32, 128]
        .iter()
        .map(|&window| measure(window, &base, 0xD150_4DE5 ^ window as u64))
        .collect();

    print_table(
        "Speculative vs strict visibility on disorder-biased Linear Road",
        &[
            "disorder window",
            "events",
            "slack",
            "settled",
            "first output (strict)",
            "first output (spec)",
            "mean lead (events)",
            "retraction rate",
            "strict ev/s",
            "spec ev/s",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.window.to_string(),
                    r.events.to_string(),
                    r.slack.to_string(),
                    r.settled.to_string(),
                    r.strict_first.to_string(),
                    r.spec_first.to_string(),
                    format!("{:.1}", r.mean_lead),
                    format!("{:.4}", r.retraction_rate),
                    format!("{:.0}", r.strict_evs),
                    format!("{:.0}", r.spec_evs),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"disorder_window\": {}, \"events\": {}, \"slack_ticks\": {}, \
                 \"settled_outputs\": {}, \"strict_first_output_event\": {}, \
                 \"speculative_first_output_event\": {}, \"first_output_reduction_events\": {}, \
                 \"mean_visibility_lead_events\": {:.2}, \"retraction_rate\": {:.5}, \
                 \"strict_events_per_sec\": {:.1}, \"speculative_events_per_sec\": {:.1}}}",
                r.window,
                r.events,
                r.slack,
                r.settled,
                r.strict_first,
                r.spec_first,
                r.strict_first.saturating_sub(r.spec_first),
                r.mean_lead,
                r.retraction_rate,
                r.strict_evs,
                r.spec_evs,
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"speculative vs strict visibility latency, disorder-biased Linear Road\",\n\
         \"unit\": \"visibility measured in 1-based arrival slots; slack = exact max lateness (no drops)\",\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_speculative.json", &json).expect("write BENCH_speculative.json");
    println!("\nwrote BENCH_speculative.json");
}
