//! The pattern operator `P` (§4.1): event matching, sequences, and
//! sequences with negation.
//!
//! Semantics (paper, §4.1):
//! * `E()` — event matching returns input events of type `E`.
//! * `SEQ(E1,...,En)` — constructs *all* sequences of `n` events with
//!   strictly increasing timestamps, one per type position; the output
//!   event carries the attribute values of every constituent and the
//!   occurrence interval `[e1.time, en.time]`.
//! * `SEQ(S1, NOT E, S2)` — as above, with no event of type `E` strictly
//!   between the end of the `S1` sub-match and the start of the `S2`
//!   sub-match (predicates referencing the negated variable further
//!   constrain which events count). A negated element may also start or
//!   end the sequence; then temporal constraints (the `within` horizon
//!   plus the predicates) bound the interval within which the negated
//!   event may not occur — trailing negation delays emission until the
//!   watermark passes that horizon.
//!
//! State management: partial matches are pruned by the `within` horizon,
//! and [`PatternOp::reset`] / [`PatternOp::expire_started_at_or_before`]
//! implement the context-history lifecycle of §6.2 (partial matches are
//! discarded when their context window ends).

use crate::expr::CompiledExpr;
use caesar_events::{Event, Interval, Time, TypeId, Value};
use caesar_query::ast::BinOp;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Where a negated element sits relative to the positive elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegPosition {
    /// Before the first positive element (leading `NOT`).
    Before,
    /// Strictly between positive elements `i` and `i + 1`.
    Between(usize),
    /// After the last positive element (trailing `NOT`).
    After,
}

/// One negation constraint of a sequence pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NegationCheck {
    /// Type of the forbidden event.
    pub type_id: TypeId,
    /// Position relative to the positive elements.
    pub position: NegPosition,
    /// Predicates over `[positive events..., negated candidate]` —
    /// the negated candidate is bound at slot `positive_count`.
    /// An event only *counts* as forbidden if all predicates hold.
    pub predicates: Vec<CompiledExpr>,
}

/// One positive element of the (flattened) sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PositiveElement {
    /// Event type to match.
    pub type_id: TypeId,
    /// Predicates whose referenced slots are all bound once this element
    /// matches — evaluated eagerly to prune partial matches.
    pub step_predicates: Vec<CompiledExpr>,
}

/// Counters exposed for metrics and cost-model calibration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternStats {
    /// Full matches emitted.
    pub matches: u64,
    /// Partial matches created (including full ones).
    pub partials_created: u64,
    /// Candidate matches rejected by a negation check.
    pub negation_rejections: u64,
    /// Expression evaluation errors (counted as non-matches).
    pub eval_errors: u64,
    /// Events processed.
    pub events_processed: u64,
}

/// A partial match: the first `events.len()` positive elements bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Partial {
    events: Vec<Event>,
}

/// A full match waiting for a trailing-negation horizon to pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PendingMatch {
    events: Vec<Event>,
    /// Emit once the watermark exceeds this deadline, unless a negated
    /// event arrives in `(last positive, deadline]`.
    deadline: Time,
}

/// The pattern operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternOp {
    positives: Vec<PositiveElement>,
    negations: Vec<NegationCheck>,
    /// Negation buffers, parallel to `negations`.
    neg_buffers: Vec<VecDeque<Event>>,
    /// Maximum allowed span of a full match; also the negation-buffer
    /// horizon and the trailing-negation deadline.
    within: Time,
    /// Output type of assembled match events (`None` ⇒ pass-through:
    /// a single positive element without negation or step predicates).
    match_type: Option<TypeId>,
    /// Per-variable attribute offsets in the combined match event.
    offsets: Vec<u16>,
    /// Partial matches indexed by number of bound elements − 1.
    partials: Vec<Vec<Partial>>,
    pending: Vec<PendingMatch>,
    /// Observability counters.
    pub stats: PatternStats,
    /// Expected length of the same-time run currently flowing through
    /// the operator — set by the batched entry points; `0` (the
    /// per-event paths) disables the negation index.
    #[serde(skip)]
    batch_hint: u32,
    /// Counts every removal from any negation buffer; part of the
    /// negation index validity key (buffer indices shift on removal).
    #[serde(skip)]
    neg_evictions: u64,
    /// Per-batch hash index over one negation buffer (see
    /// [`violates_indexed`](Self::violates_indexed)).
    #[serde(skip)]
    neg_index: Option<Box<NegIndex>>,
}

/// Hashable projection of a [`Value`] usable as a negation-index key.
/// Floats and nulls are not hashable (NaN, null-comparison semantics) —
/// candidates carrying them stay in the always-scanned overflow list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum IndexKey {
    Int(i64),
    Bool(bool),
    Str(Arc<str>),
}

fn index_key(v: &Value) -> Option<IndexKey> {
    match v {
        Value::Int(i) => Some(IndexKey::Int(*i)),
        Value::Bool(b) => Some(IndexKey::Bool(*b)),
        Value::Str(s) => Some(IndexKey::Str(s.clone())),
        Value::Float(_) | Value::Null => None,
    }
}

/// A per-batch hash index over one negation buffer, keyed by one side of
/// an equality predicate. Amortizes the per-candidate-match buffer scan
/// of [`PatternOp::violates`] across a same-time run: the scan's
/// `any(time filter && all predicates)` is evaluated only on buffer
/// entries whose key equals the probe (the key equality fails everywhere
/// else, so the result is unchanged), plus the unkeyed `overflow`
/// entries and the un-indexed tail `covered..` (entries pushed since the
/// build — same-time events the filter excludes anyway, or out-of-order
/// feedback the index must not miss).
#[derive(Debug, Clone)]
struct NegIndex {
    /// Which negation check the index covers.
    check: usize,
    /// Upper time bound the index was built for.
    hi: Time,
    /// [`PatternOp::neg_evictions`] at build time — any later removal
    /// shifts buffer indices and invalidates the index.
    evictions: u64,
    /// Buffer length at build time; entries past it are scanned.
    covered: usize,
    /// Buffer indices by key value.
    buckets: HashMap<IndexKey, Vec<u32>>,
    /// Buffer indices whose key failed to evaluate or hash.
    overflow: Vec<u32>,
}

/// Splits an equality predicate into `(candidate side, positives side)`
/// when one operand is a pure function of the candidate slot and the
/// other never touches it.
fn split_equality(pred: &CompiledExpr, cand_slot: u8) -> Option<(&CompiledExpr, &CompiledExpr)> {
    let CompiledExpr::Bin {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = pred
    else {
        return None;
    };
    let (l_cand, l_other) = lhs.slot_usage(cand_slot);
    let (r_cand, r_other) = rhs.slot_usage(cand_slot);
    if l_cand && !l_other && !r_cand {
        Some((lhs, rhs))
    } else if r_cand && !r_other && !l_cand {
        Some((rhs, lhs))
    } else {
        None
    }
}

/// Picks the equality predicate to index on: prefer a bare
/// attribute-to-attribute join key (e.g. `p1.vid = p2.vid` — selective),
/// fall back to any splittable equality.
fn pick_index_pred(preds: &[CompiledExpr], cand_slot: u8) -> Option<usize> {
    let mut fallback = None;
    for (i, p) in preds.iter().enumerate() {
        if let Some((c, o)) = split_equality(p, cand_slot) {
            if matches!(c, CompiledExpr::Attr { .. }) && matches!(o, CompiledExpr::Attr { .. }) {
                return Some(i);
            }
            fallback.get_or_insert(i);
        }
    }
    fallback
}

/// Runs below this the index never pays for its build scan.
const NEG_INDEX_MIN_BATCH: u32 = 4;
/// Un-indexed tail length that triggers a rebuild.
const NEG_INDEX_MAX_TAIL: usize = 32;

impl PatternOp {
    /// Builds a pass-through pattern for a single positive element with
    /// no predicates: input events of the type flow through unchanged.
    #[must_use]
    pub fn passthrough(type_id: TypeId) -> Self {
        Self {
            positives: vec![PositiveElement {
                type_id,
                step_predicates: Vec::new(),
            }],
            negations: Vec::new(),
            neg_buffers: Vec::new(),
            within: Time::MAX,
            match_type: None,
            offsets: vec![0],
            partials: vec![Vec::new()],
            pending: Vec::new(),
            stats: PatternStats::default(),
            batch_hint: 0,
            neg_evictions: 0,
            neg_index: None,
        }
    }

    /// Builds a sequence pattern.
    ///
    /// `offsets[i]` is the attribute offset of positive element `i` in
    /// the combined match event of type `match_type`.
    #[must_use]
    pub fn sequence(
        positives: Vec<PositiveElement>,
        negations: Vec<NegationCheck>,
        within: Time,
        match_type: TypeId,
        offsets: Vec<u16>,
    ) -> Self {
        assert!(
            !positives.is_empty(),
            "pattern needs at least one positive element"
        );
        assert_eq!(offsets.len(), positives.len());
        let n = positives.len();
        let neg_buffers = negations.iter().map(|_| VecDeque::new()).collect();
        Self {
            positives,
            negations,
            neg_buffers,
            within,
            match_type: Some(match_type),
            offsets,
            partials: vec![Vec::new(); n],
            pending: Vec::new(),
            stats: PatternStats::default(),
            batch_hint: 0,
            neg_evictions: 0,
            neg_index: None,
        }
    }

    /// Hints the length of the same-time run about to flow through the
    /// operator. Called by the batched entry points; enables the
    /// per-batch negation index once the run is long enough to amortize
    /// its build. The per-event paths never call this, so event-at-a-time
    /// execution is untouched.
    pub fn set_batch_hint(&mut self, n: usize) {
        self.batch_hint = u32::try_from(n).unwrap_or(u32::MAX);
    }

    /// Event types this pattern consumes (positive and negated).
    #[must_use]
    pub fn input_types(&self) -> Vec<TypeId> {
        let mut types: Vec<TypeId> = self
            .positives
            .iter()
            .map(|p| p.type_id)
            .chain(self.negations.iter().map(|n| n.type_id))
            .collect();
        types.sort_unstable();
        types.dedup();
        types
    }

    /// Number of positive elements.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.positives.len()
    }

    /// Returns `true` for pass-through patterns.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.match_type.is_none()
    }

    /// The single consumed type of a pass-through pattern without
    /// negation, or `None`. Such a pattern is a pure type filter —
    /// [`process`] emits the input unchanged exactly when the type
    /// matches, touching no state — so a batch may be filtered
    /// stage-major with identical outputs and counters.
    ///
    /// [`process`]: PatternOp::process
    #[must_use]
    pub fn passthrough_type(&self) -> Option<TypeId> {
        if self.is_passthrough() && self.negations.is_empty() {
            Some(self.positives[0].type_id)
        } else {
            None
        }
    }

    /// Attribute offsets of the positive elements in the combined match
    /// event (offset 0 for pass-through patterns).
    #[must_use]
    pub fn offsets(&self) -> &[u16] {
        &self.offsets
    }

    /// Mutable access to the positive elements, used by the optimizer's
    /// predicate push-down to install step predicates.
    pub fn positives_mut(&mut self) -> &mut [PositiveElement] {
        &mut self.positives
    }

    /// Whether the pattern has a trailing negation (delayed emission).
    #[must_use]
    pub fn has_trailing_negation(&self) -> bool {
        self.negations
            .iter()
            .any(|n| n.position == NegPosition::After)
    }

    /// Number of live partial matches (for memory metrics).
    #[must_use]
    pub fn live_partials(&self) -> usize {
        self.partials.iter().map(Vec::len).sum::<usize>() + self.pending.len()
    }

    /// Returns `true` if the operator holds any time-sensitive state —
    /// when `false`, advancing the watermark is a no-op, so suspended
    /// idle plans can be skipped entirely.
    #[must_use]
    pub fn has_state(&self) -> bool {
        !self.pending.is_empty()
            || self.partials.iter().any(|l| !l.is_empty())
            || self.neg_buffers.iter().any(|b| !b.is_empty())
    }

    /// Processes one input event, appending emitted match events to `out`.
    pub fn process(&mut self, event: &Event, out: &mut Vec<Event>) {
        self.stats.events_processed += 1;
        let t = event.time();

        // 1. Feed negation buffers and check pending (trailing-negation)
        //    matches against the new event.
        for i in 0..self.negations.len() {
            if self.negations[i].type_id != event.type_id {
                continue;
            }
            if self.negations[i].position == NegPosition::After {
                self.reject_pending(i, event);
            }
            let within = self.within;
            let buf = &mut self.neg_buffers[i];
            buf.push_back(event.clone());
            // Prune by horizon.
            let mut evicted = 0;
            while buf.front().is_some_and(|e| e.time() + within < t) {
                buf.pop_front();
                evicted += 1;
            }
            self.neg_evictions += evicted;
        }

        if self.is_passthrough() {
            if self.positives[0].type_id == event.type_id {
                self.stats.matches += 1;
                out.push(event.clone());
            }
            return;
        }

        // 2. Extend partial matches, longest prefix first so a new
        //    partial is never re-extended by the event that created it.
        for i in (0..self.positives.len()).rev() {
            if self.positives[i].type_id != event.type_id {
                continue;
            }
            if i == 0 {
                let candidate = Partial {
                    events: vec![event.clone()],
                };
                self.try_store(candidate, 0, out);
            } else {
                // Take the shorter partials out to extend them without
                // aliasing; sequences require strictly increasing times
                // and a bounded total span.
                let prefixes = std::mem::take(&mut self.partials[i - 1]);
                for p in &prefixes {
                    let last_t = p.events.last().expect("non-empty").time();
                    let first_t = p.events[0].time();
                    if last_t < t && t.saturating_sub(first_t) <= self.within {
                        let mut events = p.events.clone();
                        events.push(event.clone());
                        self.try_store(Partial { events }, i, out);
                    }
                }
                self.partials[i - 1] = prefixes;
            }
        }
    }

    /// Applies step predicates; on success stores the partial or, if
    /// complete, runs negation checks and emits.
    fn try_store(&mut self, partial: Partial, position: usize, out: &mut Vec<Event>) {
        let binding: Vec<&Event> = partial.events.iter().collect();
        for pred in &self.positives[position].step_predicates {
            if !pred.matches(&binding, &mut self.stats.eval_errors) {
                return;
            }
        }
        self.stats.partials_created += 1;
        if position + 1 == self.positives.len() {
            self.complete(partial, out);
        } else {
            self.partials[position].push(partial);
        }
    }

    /// Runs non-trailing negation checks; emits or parks the full match.
    fn complete(&mut self, partial: Partial, out: &mut Vec<Event>) {
        for i in 0..self.negations.len() {
            let position = self.negations[i].position;
            if position == NegPosition::After {
                continue;
            }
            let (lo, hi) = match position {
                NegPosition::Before => (None, Some(partial.events[0].time())),
                NegPosition::Between(k) => (
                    Some(partial.events[k].time()),
                    Some(partial.events[k + 1].time()),
                ),
                NegPosition::After => unreachable!(),
            };
            if self.violates(i, &partial.events, lo, hi) {
                self.stats.negation_rejections += 1;
                return;
            }
        }
        if self.has_trailing_negation() {
            let last_t = partial.events.last().expect("non-empty").time();
            self.pending.push(PendingMatch {
                events: partial.events,
                deadline: last_t.saturating_add(self.within),
            });
        } else {
            out.push(self.assemble(&partial.events));
            self.stats.matches += 1;
        }
    }

    /// Does any buffered negated event of check `i` fall strictly inside
    /// `(lo, hi)` (`None` bounds are open) with all predicates holding?
    fn violates(
        &mut self,
        check: usize,
        positives: &[Event],
        lo: Option<Time>,
        hi: Option<Time>,
    ) -> bool {
        // Batched hot path: a leading negation of a single-positive
        // pattern shares its scan bound `hi` (the event's own time)
        // across a same-time run, so a hash index over the buffer
        // amortizes — see `violates_indexed`.
        if self.batch_hint >= NEG_INDEX_MIN_BATCH && lo.is_none() && self.positives.len() == 1 {
            if let Some(h) = hi {
                if let Some(hit) = self.violates_indexed(check, positives, h) {
                    return hit;
                }
            }
        }
        let neg = &self.negations[check];
        let buf = &self.neg_buffers[check];
        let mut errors = 0;
        let hit = buf.iter().any(|cand| {
            let t = cand.time();
            if lo.is_some_and(|l| t <= l) || hi.is_some_and(|h| t >= h) {
                return false;
            }
            let mut binding: Vec<&Event> = positives.iter().collect();
            binding.push(cand);
            neg.predicates
                .iter()
                .all(|p| p.matches(&binding, &mut errors))
        });
        self.stats.eval_errors += errors;
        hit
    }

    /// Index-accelerated [`violates`](Self::violates) for a leading
    /// negation with open lower bound. Returns `None` (fall back to the
    /// scan) when no predicate splits into an indexable equality or the
    /// probe key does not evaluate to a hashable value.
    ///
    /// Exactness: the scan computes `∃ candidate: time-filter ∧ all
    /// predicates`. Candidates outside the probe's bucket fail the key
    /// equality, hence the conjunction — restricting the scan to the
    /// bucket, the unkeyed overflow, and the un-indexed tail leaves the
    /// result (and therefore matches, rejections, and outputs)
    /// unchanged. Only `eval_errors` may count differently, since
    /// predicates are evaluated on fewer candidates.
    fn violates_indexed(&mut self, check: usize, positives: &[Event], hi: Time) -> Option<bool> {
        let cand_slot = self.positives.len() as u8;
        let key_pred = pick_index_pred(&self.negations[check].predicates, cand_slot)?;
        let stale = match &self.neg_index {
            Some(ix) => {
                ix.check != check
                    || ix.hi != hi
                    || ix.evictions != self.neg_evictions
                    || self.neg_buffers[check].len() - ix.covered > NEG_INDEX_MAX_TAIL
            }
            None => true,
        };
        if stale {
            let (cand_side, _) =
                split_equality(&self.negations[check].predicates[key_pred], cand_slot)
                    .expect("pick_index_pred returned a splittable equality");
            // The key side is almost always a bare attribute reference:
            // read the column directly, skipping the per-candidate
            // binding vector and value clone of the general evaluator.
            let cand_attr = match cand_side {
                CompiledExpr::Attr { slot, attr } if *slot == cand_slot => Some(*attr as usize),
                _ => None,
            };
            let buf = &self.neg_buffers[check];
            let mut buckets: HashMap<IndexKey, Vec<u32>> = HashMap::new();
            let mut overflow: Vec<u32> = Vec::new();
            for (i, cand) in buf.iter().enumerate() {
                if cand.time() >= hi {
                    // Excluded by the time filter as long as `hi` holds —
                    // and a different `hi` rebuilds the index.
                    continue;
                }
                let key = match cand_attr {
                    Some(a) => cand.attrs.get(a).and_then(index_key),
                    None => {
                        let binding: Vec<&Event> = vec![cand; cand_slot as usize + 1];
                        cand_side.eval(&binding).ok().as_ref().and_then(index_key)
                    }
                };
                match key {
                    Some(k) => buckets.entry(k).or_default().push(i as u32),
                    None => overflow.push(i as u32),
                }
            }
            self.neg_index = Some(Box::new(NegIndex {
                check,
                hi,
                evictions: self.neg_evictions,
                covered: buf.len(),
                buckets,
                overflow,
            }));
        }
        let (_, probe_side) =
            split_equality(&self.negations[check].predicates[key_pred], cand_slot)
                .expect("pick_index_pred returned a splittable equality");
        // Same direct read on the probe side: a bare attribute of a
        // positive event needs neither a binding vector nor a clone.
        let probe = match probe_side {
            CompiledExpr::Attr { slot, attr } => index_key(
                positives
                    .get(*slot as usize)
                    .and_then(|e| e.attrs.get(*attr as usize))?,
            )?,
            _ => {
                let probe_binding: Vec<&Event> = positives.iter().collect();
                index_key(&probe_side.eval(&probe_binding).ok()?)?
            }
        };
        let ix = self.neg_index.as_ref().expect("built above");
        let neg = &self.negations[check];
        let buf = &self.neg_buffers[check];
        let mut errors = 0u64;
        let check_cand = |i: usize, errors: &mut u64| -> bool {
            let cand = &buf[i];
            if cand.time() >= hi {
                return false;
            }
            let mut binding: Vec<&Event> = positives.iter().collect();
            binding.push(cand);
            neg.predicates.iter().all(|p| p.matches(&binding, errors))
        };
        let hit = ix
            .buckets
            .get(&probe)
            .is_some_and(|b| b.iter().any(|&i| check_cand(i as usize, &mut errors)))
            || ix
                .overflow
                .iter()
                .any(|&i| check_cand(i as usize, &mut errors))
            || (ix.covered..buf.len()).any(|i| check_cand(i, &mut errors));
        self.stats.eval_errors += errors;
        Some(hit)
    }

    /// Drops pending trailing-negation matches invalidated by `event`.
    fn reject_pending(&mut self, check: usize, event: &Event) {
        let neg = self.negations[check].clone();
        let t = event.time();
        let mut errors = 0;
        let before = self.pending.len();
        self.pending.retain(|pm| {
            let last_t = pm.events.last().expect("non-empty").time();
            if t <= last_t || t > pm.deadline {
                return true;
            }
            let mut binding: Vec<&Event> = pm.events.iter().collect();
            binding.push(event);
            !neg.predicates
                .iter()
                .all(|p| p.matches(&binding, &mut errors))
        });
        self.stats.eval_errors += errors;
        self.stats.negation_rejections += (before - self.pending.len()) as u64;
    }

    /// Advances the watermark: emits matured trailing-negation matches
    /// and prunes partial matches older than the `within` horizon.
    pub fn advance_time(&mut self, watermark: Time, out: &mut Vec<Event>) {
        // Emit pending matches whose no-negation horizon fully passed.
        let mut matured = Vec::new();
        self.pending.retain(|pm| {
            if pm.deadline < watermark {
                matured.push(pm.events.clone());
                false
            } else {
                true
            }
        });
        for events in matured {
            out.push(self.assemble(&events));
            self.stats.matches += 1;
        }
        if self.within == Time::MAX {
            return;
        }
        for level in &mut self.partials {
            level.retain(|p| p.events[0].time() + self.within >= watermark);
        }
        let mut evicted = 0;
        for buf in &mut self.neg_buffers {
            while buf
                .front()
                .is_some_and(|e| e.time() + self.within < watermark)
            {
                buf.pop_front();
                evicted += 1;
            }
        }
        self.neg_evictions += evicted;
    }

    /// Builds the combined match event (attribute values of all events in
    /// the sequence; occurrence `[e1.time, en.time]`).
    fn assemble(&self, events: &[Event]) -> Event {
        let match_type = self.match_type.expect("assemble only in sequence mode");
        let total: usize = events.iter().map(|e| e.attrs.len()).sum();
        let mut attrs: Vec<Value> = Vec::with_capacity(total);
        for e in events {
            attrs.extend(e.attrs.iter().cloned());
        }
        Event::complex(
            match_type,
            Interval::new(events[0].time(), events.last().expect("non-empty").time()),
            events[0].partition,
            Arc::from(attrs),
        )
    }

    /// Discards all partial state — the context window this pattern
    /// belongs to ended, so its context history can be "safely
    /// discarded" (§6.2).
    pub fn reset(&mut self) {
        for level in &mut self.partials {
            level.clear();
        }
        let mut evicted = 0;
        for buf in &mut self.neg_buffers {
            evicted += buf.len() as u64;
            buf.clear();
        }
        self.neg_evictions += evicted;
        self.pending.clear();
    }

    /// Expires partial matches whose first event is at or before `t` —
    /// used when an *original* context window ends while its grouped
    /// windows continue (Figure 7: "when the third window begins, the
    /// partial results within the first window expire").
    pub fn expire_started_at_or_before(&mut self, t: Time) {
        for level in &mut self.partials {
            level.retain(|p| p.events[0].time() > t);
        }
        self.pending.retain(|p| p.events[0].time() > t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BindingLayout, LayoutVar, SlotSource};
    use caesar_events::{AttrType, PartitionId, Schema, SchemaRegistry};
    use caesar_query::ast::{BinOp, Expr};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "P",
            &[("vid", AttrType::Int), ("sec", AttrType::Int)],
        ))
        .unwrap();
        reg.register(Schema::new("A", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("B", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("C", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new(
            "M",
            &[("a.v", AttrType::Int), ("b.v", AttrType::Int)],
        ))
        .unwrap();
        reg
    }

    fn ev(reg: &SchemaRegistry, ty: &str, t: Time, v: i64) -> Event {
        Event::simple(
            reg.lookup(ty).unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(v)],
        )
    }

    fn pr(reg: &SchemaRegistry, t: Time, vid: i64) -> Event {
        Event::simple(
            reg.lookup("P").unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(vid), Value::Int(t as i64)],
        )
    }

    #[test]
    fn passthrough_filters_by_type() {
        let reg = registry();
        let mut p = PatternOp::passthrough(reg.lookup("A").unwrap());
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        p.process(&ev(&reg, "B", 2, 20), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(p.stats.matches, 1);
        assert_eq!(p.stats.events_processed, 2);
    }

    fn seq_ab(reg: &SchemaRegistry, within: Time) -> PatternOp {
        PatternOp::sequence(
            vec![
                PositiveElement {
                    type_id: reg.lookup("A").unwrap(),
                    step_predicates: vec![],
                },
                PositiveElement {
                    type_id: reg.lookup("B").unwrap(),
                    step_predicates: vec![],
                },
            ],
            vec![],
            within,
            reg.lookup("M").unwrap(),
            vec![0, 1],
        )
    }

    #[test]
    fn seq_constructs_all_combinations() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        p.process(&ev(&reg, "A", 2, 11), &mut out);
        p.process(&ev(&reg, "B", 3, 20), &mut out);
        p.process(&ev(&reg, "B", 4, 21), &mut out);
        // 2 As × 2 Bs = 4 matches.
        assert_eq!(out.len(), 4);
        // Match event carries both attrs and spans the sequence.
        assert_eq!(out[0].attrs.len(), 2);
        assert_eq!(out[0].occurrence, Interval::new(1, 3));
    }

    #[test]
    fn seq_requires_strictly_increasing_time() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 5, 10), &mut out);
        p.process(&ev(&reg, "B", 5, 20), &mut out);
        assert!(
            out.is_empty(),
            "same-timestamp events cannot form a sequence"
        );
        p.process(&ev(&reg, "B", 6, 21), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn order_matters_b_before_a_does_not_match() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "B", 1, 20), &mut out);
        p.process(&ev(&reg, "A", 2, 10), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn within_horizon_bounds_matches_and_prunes() {
        let reg = registry();
        let mut p = seq_ab(&reg, 10);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        p.process(&ev(&reg, "B", 20, 20), &mut out);
        assert!(out.is_empty(), "span 19 exceeds within=10");
        p.advance_time(20, &mut out);
        assert_eq!(p.live_partials(), 0, "stale partial pruned");
    }

    #[test]
    fn step_predicates_prune_partials_eagerly() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_b = reg.lookup("B").unwrap();
        let layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "a".into(),
                    type_id: tid_a,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "b".into(),
                    type_id: tid_b,
                    source: SlotSource::EventSlot(1),
                },
            ],
        };
        // a.v > 5 at step 0; a.v = b.v at step 1.
        let p0 = CompiledExpr::compile(
            &Expr::bin(BinOp::Gt, Expr::attr("a", "v"), Expr::int(5)),
            &layout,
            &reg,
        )
        .unwrap();
        let p1 = CompiledExpr::compile(
            &Expr::bin(BinOp::Eq, Expr::attr("a", "v"), Expr::attr("b", "v")),
            &layout,
            &reg,
        )
        .unwrap();
        let mut p = PatternOp::sequence(
            vec![
                PositiveElement {
                    type_id: tid_a,
                    step_predicates: vec![p0],
                },
                PositiveElement {
                    type_id: tid_b,
                    step_predicates: vec![p1],
                },
            ],
            vec![],
            100,
            reg.lookup("M").unwrap(),
            vec![0, 1],
        );
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 3), &mut out); // fails a.v > 5
        assert_eq!(p.live_partials(), 0);
        p.process(&ev(&reg, "A", 2, 7), &mut out);
        assert_eq!(p.live_partials(), 1);
        p.process(&ev(&reg, "B", 3, 7), &mut out); // a.v = b.v holds
        p.process(&ev(&reg, "B", 4, 9), &mut out); // fails
        assert_eq!(out.len(), 1);
    }

    /// The Figure 3 query-2 shape: SEQ(NOT P p1, P p2) WHERE
    /// p1.sec + 30 = p2.sec AND p1.vid = p2.vid — a car with no position
    /// report 30 seconds earlier is "new".
    fn leading_negation_pattern(reg: &SchemaRegistry) -> PatternOp {
        let tid_p = reg.lookup("P").unwrap();
        // Binding: slot 0 = p2 (the only positive), slot 1 = negated p1.
        let layout = BindingLayout {
            vars: vec![
                LayoutVar {
                    name: "p2".into(),
                    type_id: tid_p,
                    source: SlotSource::EventSlot(0),
                },
                LayoutVar {
                    name: "p1".into(),
                    type_id: tid_p,
                    source: SlotSource::EventSlot(1),
                },
            ],
        };
        let pred_sec = CompiledExpr::compile(
            &Expr::bin(
                BinOp::Eq,
                Expr::bin(BinOp::Add, Expr::attr("p1", "sec"), Expr::int(30)),
                Expr::attr("p2", "sec"),
            ),
            &layout,
            reg,
        )
        .unwrap();
        let pred_vid = CompiledExpr::compile(
            &Expr::bin(BinOp::Eq, Expr::attr("p1", "vid"), Expr::attr("p2", "vid")),
            &layout,
            reg,
        )
        .unwrap();
        PatternOp::sequence(
            vec![PositiveElement {
                type_id: tid_p,
                step_predicates: vec![],
            }],
            vec![NegationCheck {
                type_id: tid_p,
                position: NegPosition::Before,
                predicates: vec![pred_sec, pred_vid],
            }],
            60,
            reg.lookup("M").unwrap(),
            vec![0],
        )
    }

    #[test]
    fn leading_negation_detects_new_cars() {
        let reg = registry();
        let mut p = leading_negation_pattern(&reg);
        let mut out = Vec::new();
        // Car 1 reports at 0 and 30: at t=30 it is NOT new.
        p.process(&pr(&reg, 0, 1), &mut out);
        assert_eq!(out.len(), 1, "t=0 report has no prior report");
        out.clear();
        p.process(&pr(&reg, 30, 1), &mut out);
        assert!(out.is_empty(), "car 1 reported 30s ago: negation rejects");
        assert_eq!(p.stats.negation_rejections, 1);
        // Car 2 first appears at t=30: it IS new.
        p.process(&pr(&reg, 30, 2), &mut out);
        assert_eq!(out.len(), 1);
    }

    /// The per-batch negation index must be invisible: same matches,
    /// same rejection counters, across same-time runs, horizon
    /// evictions (index invalidation), and state resets.
    #[test]
    fn negation_index_matches_scan() {
        let reg = registry();
        let mut plain = leading_negation_pattern(&reg);
        let mut indexed = leading_negation_pattern(&reg);
        let mut out_plain = Vec::new();
        let mut out_indexed = Vec::new();
        // Same-time runs of 8 cars, with per-car gaps so some reports
        // are "new" (no report 30s earlier) and some are not; long
        // enough that the `within = 60` horizon evicts buffer entries.
        for step in 0..10u64 {
            let t = step * 30;
            let batch: Vec<Event> = (0..8)
                .filter(|vid| (step + vid) % 3 != 0)
                .map(|vid| pr(&reg, t, vid as i64))
                .collect();
            indexed.set_batch_hint(batch.len());
            for e in &batch {
                plain.process(e, &mut out_plain);
                indexed.process(e, &mut out_indexed);
            }
            if step == 6 {
                plain.reset();
                indexed.reset();
            }
        }
        assert!(!out_plain.is_empty());
        assert_eq!(out_plain, out_indexed, "outputs must be byte-identical");
        assert_eq!(plain.stats.matches, indexed.stats.matches);
        assert_eq!(
            plain.stats.negation_rejections,
            indexed.stats.negation_rejections
        );
        assert_eq!(plain.stats.partials_created, indexed.stats.partials_created);
        assert!(plain.stats.negation_rejections > 0, "scan path exercised");
        assert!(
            indexed.neg_index.is_some(),
            "index path exercised (batch of ≥{NEG_INDEX_MIN_BATCH})"
        );
    }

    #[test]
    fn between_negation_blocks_interleaved_event() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_b = reg.lookup("B").unwrap();
        let tid_c = reg.lookup("C").unwrap();
        let mut p = PatternOp::sequence(
            vec![
                PositiveElement {
                    type_id: tid_a,
                    step_predicates: vec![],
                },
                PositiveElement {
                    type_id: tid_b,
                    step_predicates: vec![],
                },
            ],
            vec![NegationCheck {
                type_id: tid_c,
                position: NegPosition::Between(0),
                predicates: vec![],
            }],
            100,
            reg.lookup("M").unwrap(),
            vec![0, 1],
        );
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 0), &mut out);
        p.process(&ev(&reg, "C", 2, 0), &mut out);
        p.process(&ev(&reg, "B", 3, 0), &mut out);
        assert!(out.is_empty(), "C between A and B blocks the match");
        // A fresh A after the C can still match the next B.
        p.process(&ev(&reg, "A", 4, 0), &mut out);
        p.process(&ev(&reg, "B", 5, 0), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn trailing_negation_delays_and_rejects() {
        let reg = registry();
        let tid_a = reg.lookup("A").unwrap();
        let tid_c = reg.lookup("C").unwrap();
        let mut p = PatternOp::sequence(
            vec![PositiveElement {
                type_id: tid_a,
                step_predicates: vec![],
            }],
            vec![NegationCheck {
                type_id: tid_c,
                position: NegPosition::After,
                predicates: vec![],
            }],
            10,
            reg.lookup("M").unwrap(),
            vec![0],
        );
        let mut out = Vec::new();
        // First A: a C arrives inside the horizon → rejected.
        p.process(&ev(&reg, "A", 1, 0), &mut out);
        assert!(out.is_empty(), "emission deferred");
        p.process(&ev(&reg, "C", 5, 0), &mut out);
        p.advance_time(20, &mut out);
        assert!(out.is_empty(), "C within horizon kills the match");
        assert_eq!(p.stats.negation_rejections, 1);
        // Second A: no C inside horizon → emitted at watermark.
        p.process(&ev(&reg, "A", 30, 0), &mut out);
        p.advance_time(41, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn reset_discards_all_state() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 1, 10), &mut out);
        assert_eq!(p.live_partials(), 1);
        p.reset();
        assert_eq!(p.live_partials(), 0);
        p.process(&ev(&reg, "B", 2, 20), &mut out);
        assert!(out.is_empty(), "partial was discarded by reset");
    }

    #[test]
    fn expire_by_start_time_keeps_younger_partials() {
        let reg = registry();
        let mut p = seq_ab(&reg, 100);
        let mut out = Vec::new();
        p.process(&ev(&reg, "A", 5, 10), &mut out);
        p.process(&ev(&reg, "A", 15, 11), &mut out);
        assert_eq!(p.live_partials(), 2);
        p.expire_started_at_or_before(5);
        assert_eq!(p.live_partials(), 1);
        p.process(&ev(&reg, "B", 20, 20), &mut out);
        assert_eq!(out.len(), 1, "only the younger partial completes");
    }

    #[test]
    fn input_types_dedup() {
        let reg = registry();
        let p = leading_negation_pattern(&reg);
        assert_eq!(p.input_types().len(), 1, "P appears positive and negated");
    }

    #[test]
    fn three_element_sequence() {
        let reg = registry();
        let mut p = PatternOp::sequence(
            ["A", "B", "C"]
                .iter()
                .map(|ty| PositiveElement {
                    type_id: reg.lookup(ty).unwrap(),
                    step_predicates: vec![],
                })
                .collect(),
            vec![],
            100,
            reg.lookup("M").unwrap(),
            vec![0, 1, 2],
        );
        let mut out = Vec::new();
        for (ty, t) in [("A", 1), ("B", 2), ("C", 3), ("B", 4), ("C", 5)] {
            p.process(&ev(&reg, ty, t, 0), &mut out);
        }
        // A(1): sequences A1-B2-C3, A1-B2-C5, A1-B4-C5 → 3 matches.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].attrs.len(), 3);
    }
}
