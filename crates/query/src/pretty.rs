//! Pretty-printer: renders queries and models back to parseable text.
//!
//! Round-tripping (`parse → pretty → parse`) is property-tested in the
//! crate's test suite; the printed form is also used in optimizer
//! explain output.

use crate::ast::{BinOp, ContextAction, EventQuery, Expr, Pattern};
use crate::model::CaesarModel;
use caesar_events::Value;
use std::fmt::Write;

/// Renders an expression.
#[must_use]
pub fn expr_to_string(expr: &Expr) -> String {
    render_expr(expr, 0)
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div => 5,
    }
}

fn render_expr(expr: &Expr, parent_prec: u8) -> String {
    match expr {
        Expr::Const(Value::Str(s)) => format!("\"{s}\""),
        Expr::Const(v) => v.to_string().trim_matches('"').to_string(),
        Expr::Attr { var: Some(v), attr } => format!("{v}.{attr}"),
        Expr::Attr { var: None, attr } => attr.clone(),
        Expr::Binary { op, lhs, rhs } => {
            let prec = precedence(*op);
            let body = format!(
                "{} {} {}",
                render_expr(lhs, prec),
                op.symbol(),
                // Right side binds one tighter to preserve left associativity.
                render_expr(rhs, prec + 1)
            );
            if prec < parent_prec {
                format!("({body})")
            } else {
                body
            }
        }
    }
}

/// Renders a pattern.
#[must_use]
pub fn pattern_to_string(pattern: &Pattern) -> String {
    match pattern {
        Pattern::Event {
            event_type,
            var,
            negated,
        } => {
            let mut s = String::new();
            if *negated {
                s.push_str("NOT ");
            }
            s.push_str(event_type);
            if let Some(v) = var {
                s.push(' ');
                s.push_str(v);
            }
            s
        }
        Pattern::Seq(items) => {
            let inner: Vec<String> = items.iter().map(pattern_to_string).collect();
            format!("SEQ({})", inner.join(", "))
        }
    }
}

/// Renders one query as parseable text.
#[must_use]
pub fn query_to_string(query: &EventQuery) -> String {
    let mut out = String::new();
    match &query.action {
        Some(ContextAction::Initiate(c)) => {
            let _ = write!(out, "INITIATE CONTEXT {c}");
        }
        Some(ContextAction::Switch(c)) => {
            let _ = write!(out, "SWITCH CONTEXT {c}");
        }
        Some(ContextAction::Terminate(c)) => {
            let _ = write!(out, "TERMINATE CONTEXT {c}");
        }
        None => {}
    }
    if let Some(d) = &query.derive {
        let _ = write!(out, "DERIVE {}", d.event_type);
        if !d.args.is_empty() {
            let args: Vec<String> = d.args.iter().map(expr_to_string).collect();
            let _ = write!(out, "({})", args.join(", "));
        }
    }
    let _ = write!(out, " PATTERN {}", pattern_to_string(&query.pattern));
    if let Some(w) = &query.where_clause {
        let _ = write!(out, " WHERE {}", expr_to_string(w));
    }
    if let Some(w) = query.within {
        let _ = write!(out, " WITHIN {w}");
    }
    if !query.contexts.is_empty() {
        let _ = write!(out, " CONTEXT {}", query.contexts.join(", "));
    }
    out
}

/// Renders a full model as a parseable `MODEL` block.
#[must_use]
pub fn model_to_string(model: &CaesarModel) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MODEL {} DEFAULT {}",
        model.name, model.default_context
    );
    for ctx in &model.contexts {
        let _ = writeln!(out, "CONTEXT {} {{", ctx.name);
        for q in ctx.deriving.iter().chain(ctx.processing.iter()) {
            let _ = writeln!(out, "    {}", query_to_string(q));
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// A canonical structural signature of a query: the rendered clauses
/// minus the query's name and context attachment. Two queries with the
/// same signature describe the same work — the workload-sharing
/// optimizer would merge them, and model generators use this to avoid
/// (or deliberately produce) such duplicates.
#[must_use]
pub fn query_signature(query: &EventQuery) -> String {
    let mut stripped = query.clone();
    stripped.name = None;
    stripped.contexts = Vec::new();
    query_to_string(&stripped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_model, parse_queries};

    #[test]
    fn query_round_trips() {
        let src = "DERIVE NewTravelingCar(p2.vid, p2.sec) \
                   PATTERN SEQ(NOT PositionReport p1, PositionReport p2) \
                   WHERE p1.sec + 30 = p2.sec AND p2.lane != \"exit\" \
                   CONTEXT congestion";
        let q = parse_queries(src).unwrap().remove(0);
        let printed = query_to_string(&q);
        let reparsed = parse_queries(&printed).unwrap().remove(0);
        assert_eq!(q, reparsed);
    }

    #[test]
    fn deriving_query_round_trips() {
        let src =
            "SWITCH CONTEXT clear PATTERN FewFastCars f WHERE f.count < 10 CONTEXT congestion";
        let q = parse_queries(src).unwrap().remove(0);
        let reparsed = parse_queries(&query_to_string(&q)).unwrap().remove(0);
        assert_eq!(q, reparsed);
    }

    #[test]
    fn parentheses_preserved_where_needed() {
        let src = "DERIVE A(x.v) PATTERN X x WHERE (x.a + 1) * 2 = 6";
        let q = parse_queries(src).unwrap().remove(0);
        let printed = query_to_string(&q);
        assert!(printed.contains("(x.a + 1) * 2"), "printed: {printed}");
        let reparsed = parse_queries(&printed).unwrap().remove(0);
        assert_eq!(q, reparsed);
    }

    #[test]
    fn precedence_not_over_parenthesized() {
        let src = "DERIVE A(x.v) PATTERN X x WHERE x.a + 1 = 2 AND x.b = 3";
        let q = parse_queries(src).unwrap().remove(0);
        let printed = query_to_string(&q);
        let where_part = printed.split(" WHERE ").nth(1).unwrap();
        assert!(!where_part.contains('('), "printed: {printed}");
    }

    #[test]
    fn model_round_trips() {
        let src = r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars m WHERE m.count > 50
            }
            CONTEXT congestion {
                DERIVE TollNotification(p.vid, p.sec, 5) PATTERN NewTravelingCar p
                SWITCH CONTEXT clear PATTERN FewFastCars f
            }
        "#;
        let model = parse_model(src).unwrap();
        let printed = model_to_string(&model);
        let reparsed = parse_model(&printed).unwrap();
        assert_eq!(model, reparsed);
    }

    #[test]
    fn within_round_trips() {
        let src = "DERIVE A(x.v) PATTERN SEQ(X x, Y y) WHERE x.v = 1 WITHIN 45 CONTEXT c";
        let q = parse_queries(src).unwrap().remove(0);
        let printed = query_to_string(&q);
        assert!(printed.contains("WITHIN 45"), "{printed}");
        assert_eq!(parse_queries(&printed).unwrap().remove(0), q);
    }

    #[test]
    fn subtraction_right_operand_parenthesized() {
        // a - (b - c) must not print as a - b - c.
        use crate::ast::{BinOp, Expr};
        let e = Expr::bin(
            BinOp::Sub,
            Expr::bare("a"),
            Expr::bin(BinOp::Sub, Expr::bare("b"), Expr::bare("c")),
        );
        assert_eq!(expr_to_string(&e), "a - (b - c)");
    }
}
