//! The CAESAR algebra (§4 of the paper): six context-aware stream
//! operators and the translation of query sets into executable plans.
//!
//! "The CAESAR algebra consists of six operators. While event pattern,
//! filter and projection are quite common for other stream algebras,
//! context initiation, termination and context window are unique operators
//! of the CAESAR algebra."
//!
//! * [`expr`] — expressions compiled to positional attribute accesses.
//! * [`context_table`] — the set `W` of current context windows, realized
//!   as the per-partition context bit vector of §6.2 plus window spans.
//! * [`nfa`] — compiled pattern programs: the [`nfa::PatternBuilder`]
//!   construction front-end, interned predicate references, and prefix
//!   signatures the optimizer shares across queries.
//! * [`pattern`] — the pattern operator: event matching, `SEQ` with and
//!   without negation (§4.1), with partial-match state and pruning.
//! * [`kernel`] — vectorized predicate/projection kernels over columnar
//!   views, driven by selection vectors.
//! * [`ops`] — filter, projection, context window, context initiation and
//!   context termination operators, and single-plan chain execution.
//! * [`plan`] — executable query plans and combined plans.
//! * [`translate`] — Phase 2 of §4.2: query set → individual plans
//!   (Table 1) → combined query plans.
//! * [`cost`] — the CPU cost model used by the optimizer (§5.1; pattern
//!   costs in the style of ZStream \[24\]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod context_table;
pub mod cost;
pub mod expr;
pub mod kernel;
pub mod nfa;
pub mod ops;
pub mod pattern;
pub mod plan;
pub mod translate;

pub use context_table::{ContextTable, Transition, TransitionKind};
pub use expr::{BindingLayout, CompiledExpr, EvalError};
pub use nfa::{NfaProgram, NfaStep, PatternBuilder, PredicateId, PredicateTable};
pub use ops::Op;
pub use pattern::{PatternOp, SharedGroup, SharedMember};
pub use plan::{CombinedPlan, PlanOutput, QueryPlan};
pub use translate::{translate_query_set, TranslationOutput};
