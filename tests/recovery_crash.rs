//! Crash-equivalence on Linear Road: the engine is killed at several
//! stream positions under different checkpoint cadences, recovered into
//! a freshly built engine, and must finish with byte-identical outputs
//! and identical deterministic counters compared to an uninterrupted
//! run. On top of the byte-level check, the recovered run is also held
//! against the traffic oracle — recovery must not merely be
//! self-consistent, it must still be *correct*.

use caesar::linear_road::{expected_outputs, lr_model, LinearRoadConfig, TrafficSim};
use caesar::prelude::*;
use caesar::recovery::crash_and_recover;
use caesar::runtime::Engine;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "caesar-lr-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn lr_engine(mode: ExecutionMode) -> Engine {
    let seg_attrs: &[(&str, AttrType)] = &[
        ("xway", AttrType::Int),
        ("dir", AttrType::Int),
        ("seg", AttrType::Int),
        ("sec", AttrType::Int),
    ];
    Caesar::builder()
        .model(lr_model(1))
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
        .schema("ManySlowCars", seg_attrs)
        .schema("FewFastCars", seg_attrs)
        .schema("StoppedCars", seg_attrs)
        .schema("StoppedCarsRemoved", seg_attrs)
        .within(60)
        .engine_config(
            EngineConfig::builder()
                .mode(mode)
                .collect_outputs(true)
                .build(),
        )
        .build()
        .expect("LR model builds")
        .engine
}

fn lr_stream() -> (Vec<Event>, u64, u64, u64) {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 6,
        duration: 900,
        ..LinearRoadConfig::default()
    });
    let events = sim.generate();
    let oracle = expected_outputs(&events, sim.registry());
    (
        events,
        oracle.zero_tolls,
        oracle.real_tolls,
        oracle.accident_warnings,
    )
}

/// The acceptance matrix: ≥3 crash points × 2 checkpoint cadences on
/// Linear Road, byte-identical outputs each time, plus oracle agreement.
#[test]
fn linear_road_crash_matrix_is_byte_identical() {
    let (events, zero_tolls, real_tolls, warnings) = lr_stream();
    let n = events.len();
    assert!(n > 100, "simulation produced a trivial stream ({n} events)");
    let crash_points = [n / 10, n / 2, n - 1];
    for every in [97u64, 1000] {
        for &crash_after in &crash_points {
            let dir = temp_dir("matrix");
            let report = crash_and_recover(
                || lr_engine(ExecutionMode::ContextAware),
                &events,
                &dir,
                every,
                crash_after,
            )
            .expect("crash/recover runs");
            if crash_after as u64 >= every {
                // At least one checkpoint fit before the crash, so
                // recovery must start from a snapshot, not from zero.
                assert!(
                    report.checkpoints_before_crash > 0,
                    "crash at {crash_after} with cadence {every} took no checkpoint"
                );
            }
            // Whether from a snapshot or from pure log replay, every
            // pre-crash event must be recovered from disk.
            assert_eq!(report.resumed_at, crash_after as u64);
            assert!(
                report.is_equivalent(),
                "crash at {crash_after}/{n} with cadence {every}: recovered run diverged \
                 ({} vs {} outputs, {} vs {} events out)",
                report.baseline_outputs.len(),
                report.recovered_outputs.len(),
                report.baseline.events_out,
                report.recovered.events_out,
            );
            assert_eq!(report.recovered.outputs_of("ZeroToll"), zero_tolls);
            assert_eq!(report.recovered.outputs_of("TollNotification"), real_tolls);
            assert_eq!(report.recovered.outputs_of("AccidentWarning"), warnings);
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// The baseline (context-independent) engine carries different operator
/// state — stream-scoped patterns, per-query context re-derivation — and
/// must survive crashes just as exactly.
#[test]
fn context_independent_mode_recovers_too() {
    let (events, _, real_tolls, _) = lr_stream();
    let dir = temp_dir("ci-mode");
    let crash_after = events.len() / 3;
    let report = crash_and_recover(
        || lr_engine(ExecutionMode::ContextIndependent),
        &events,
        &dir,
        500,
        crash_after,
    )
    .expect("crash/recover runs");
    assert!(report.is_equivalent(), "CI-mode recovery diverged");
    assert_eq!(report.recovered.outputs_of("TollNotification"), real_tolls);
    let _ = fs::remove_dir_all(&dir);
}

/// A double crash: die, recover, die again later, recover again. The
/// second recovery starts from a checkpoint the *first* recovery wrote.
#[test]
fn repeated_crashes_compound_correctly() {
    let (events, _, real_tolls, _) = lr_stream();
    let dir = temp_dir("double");
    let build = || lr_engine(ExecutionMode::ContextAware);
    let every = 200u64;

    // Reference run.
    let mut reference = build();
    for event in &events {
        reference.ingest(event.clone()).expect("in order");
    }
    let baseline = reference.finish();
    let baseline_outputs = std::mem::take(&mut reference.collected_outputs);

    // Crash #1 at one third.
    let first_crash = events.len() / 3;
    let mut manager = caesar::recovery::CheckpointManager::create(&dir, every).expect("create");
    let mut engine = build();
    for event in &events[..first_crash] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("in order");
        manager.maybe_checkpoint(&engine).expect("checkpoint");
    }
    drop(engine);
    drop(manager);

    // Recover, run to two thirds, crash #2.
    let second_crash = 2 * events.len() / 3;
    let mut engine = build();
    let mut manager =
        caesar::recovery::CheckpointManager::resume(&dir, every, &mut engine).expect("resume 1");
    for event in &events[manager.position() as usize..second_crash] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("in order");
        manager.maybe_checkpoint(&engine).expect("checkpoint");
    }
    drop(engine);
    drop(manager);

    // Final recovery runs to the end.
    let mut engine = build();
    let mut manager =
        caesar::recovery::CheckpointManager::resume(&dir, every, &mut engine).expect("resume 2");
    for event in &events[manager.position() as usize..] {
        manager.log_event(event).expect("log");
        engine.ingest(event.clone()).expect("in order");
        manager.maybe_checkpoint(&engine).expect("checkpoint");
    }
    let recovered = engine.finish();
    let recovered_outputs = std::mem::take(&mut engine.collected_outputs);

    assert!(caesar::recovery::outputs_equivalent(
        &baseline_outputs,
        &recovered_outputs
    ));
    assert!(caesar::recovery::reports_equivalent(&baseline, &recovered));
    assert_eq!(recovered.outputs_of("TollNotification"), real_tolls);
    let _ = fs::remove_dir_all(&dir);
}
