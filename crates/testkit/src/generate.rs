//! Seeded, shrink-friendly generators for CAESAR workloads: context
//! transition networks, attached query sets and timestamped,
//! partitioned event streams.
//!
//! Everything is derived deterministically from one `u64` seed through
//! the vendored proptest [`TestRng`], so a failing workload is
//! reproduced exactly by its seed (see README "Reproducing a
//! differential failure"). The [`GenConfig`] knobs deliberately steer
//! toward the features that historically break stream engines:
//! overlapping context windows (`INITIATE` next to `SWITCH`), leading /
//! between / trailing negation, subsumable predicate pairs, dense
//! same-timestamp runs, and bounded out-of-order arrival.
//!
//! The generated envelope matches what both the engine's translator and
//! the reference oracle accept: flat `SEQ` patterns, at most one
//! negated variable per predicate, passthrough deriving queries (the
//! runtime discards context transitions produced by the watermark
//! advance phase, so trailing negation on a *deriving* query is
//! deliberately never generated — see DESIGN.md "Testing &
//! correctness").

use caesar_events::{
    max_lateness, AttrType, Event, PartitionId, Schema, SchemaRegistry, Time, Value,
};
use caesar_query::pretty::query_signature;
use caesar_query::{
    BinOp, CaesarModel, ContextAction, ContextDef, DeriveClause, EventQuery, Expr, Pattern,
};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use std::collections::BTreeSet;

/// Generation knobs. All probabilities are in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of context types (≥ 1; the first is the default).
    pub max_contexts: usize,
    /// Maximum number of input event types (≥ 2).
    pub max_input_types: usize,
    /// Maximum deriving queries attached to each context.
    pub max_deriving_per_context: usize,
    /// Maximum processing queries in the model (≥ 1).
    pub max_processing: usize,
    /// Stream length bounds.
    pub min_events: usize,
    /// Upper stream length bound.
    pub max_events: usize,
    /// Number of stream partitions drawn from `1..=max_partitions`.
    pub max_partitions: u64,
    /// Chance a processing query uses a multi-event `SEQ`.
    pub seq_bias: f64,
    /// Chance a processing query carries a negated pattern element.
    pub negation_bias: f64,
    /// Chance a `WHERE` clause contains a subsumable predicate pair
    /// (two bounds on the same attribute, one implying the other).
    pub subsumable_bias: f64,
    /// Chance the next event reuses the current timestamp (dense
    /// same-time runs are the batched hot path's regime).
    pub same_time_bias: f64,
    /// Fraction of adjacent swaps applied to the stream, producing
    /// bounded out-of-order arrival.
    pub disorder: f64,
    /// Fraction of events displaced far from their timestamp so they
    /// arrive near the end of the stream — the workload's reorder slack
    /// is recomputed afterwards, so the worst straggler sits *exactly*
    /// at the slack boundary. Zero (the default) leaves the stream's
    /// disorder to the adjacent-swap pass alone.
    pub straggler_bias: f64,
    /// Chance a displaced straggler is retimed onto another event's
    /// timestamp, producing same-timestamp late ties (the arrival-order
    /// tie-break regime of the reorder buffer).
    pub late_tie_bias: f64,
    /// Chance a displaced straggler is re-emitted as an exact duplicate
    /// later still — retractions and re-emissions must respect
    /// multiplicity, not just presence.
    pub late_dup_bias: f64,
    /// Chance each straggler is accompanied by a brand-new
    /// early-timestamped event injected near the end of arrival order —
    /// prime material for flipping context transitions mid-window,
    /// which is what forces speculative retraction cascades.
    pub late_flip_bias: f64,
    /// `WITHIN` fallback for queries without an explicit horizon.
    pub default_within: Time,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_contexts: 4,
            max_input_types: 4,
            max_deriving_per_context: 2,
            max_processing: 4,
            min_events: 10,
            max_events: 100,
            max_partitions: 3,
            seq_bias: 0.4,
            negation_bias: 0.45,
            subsumable_bias: 0.3,
            same_time_bias: 0.35,
            disorder: 0.25,
            straggler_bias: 0.0,
            late_tie_bias: 0.0,
            late_dup_bias: 0.0,
            late_flip_bias: 0.0,
            default_within: 5,
        }
    }
}

impl GenConfig {
    /// The retraction-hostile profile: heavier disorder plus max-slack
    /// stragglers, same-timestamp late ties, late duplicates and late
    /// context-transition flips — the arrival patterns that force a
    /// speculative engine to revise (and a strict one to buffer).
    #[must_use]
    pub fn retraction_hostile() -> Self {
        Self {
            disorder: 0.35,
            straggler_bias: 0.15,
            late_tie_bias: 0.4,
            late_dup_bias: 0.25,
            late_flip_bias: 0.5,
            ..Self::default()
        }
    }
}

/// A complete generated workload: model, input schemas, event stream
/// and the exact reorder slack the stream needs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The seed everything was derived from.
    pub seed: u64,
    /// The generated CAESAR model (valid by construction).
    pub model: CaesarModel,
    /// Registry holding the *input* schemas, in deterministic order.
    /// Derived output types are registered by translation, so every
    /// harness leg that clones this registry assigns identical ids.
    pub registry: SchemaRegistry,
    /// The event stream in arrival order (possibly out of order).
    pub events: Vec<Event>,
    /// `WITHIN` fallback used at translation time.
    pub default_within: Time,
    /// Exact slack a reorder stage needs to release every event.
    pub reorder_slack: Time,
    /// Names of the derived output types (`O0`, `O1`, ...).
    pub output_types: Vec<String>,
}

const ATTRS: [&str; 2] = ["a0", "a1"];
const WITHINS: [Time; 6] = [2, 3, 5, 8, 13, 21];
const CMPS: [BinOp; 6] = [
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
];

fn chance(rng: &mut TestRng, p: f64) -> bool {
    rng.unit_f64() < p
}

fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

fn attr_of(rng: &mut TestRng, var: &str) -> Expr {
    Expr::attr(var, *pick(rng, &ATTRS))
}

fn small_const(rng: &mut TestRng) -> Expr {
    Expr::int(rng.below(4) as i64)
}

/// One `WHERE` conjunct over positive variables only.
fn gen_filter_conjunct(rng: &mut TestRng, vars: &[String]) -> Expr {
    let v = pick(rng, vars).clone();
    match rng.below(3) {
        0 => Expr::bin(*pick(rng, &CMPS), attr_of(rng, &v), small_const(rng)),
        1 => {
            let w = pick(rng, vars).clone();
            Expr::bin(*pick(rng, &CMPS), attr_of(rng, &v), attr_of(rng, &w))
        }
        _ => Expr::bin(
            *pick(rng, &CMPS),
            Expr::bin(BinOp::Add, attr_of(rng, &v), small_const(rng)),
            small_const(rng),
        ),
    }
}

/// A subsumable pair: two lower (or upper) bounds on one attribute,
/// one strictly implying the other — food for the subsumption pass.
fn gen_subsumable_pair(rng: &mut TestRng, vars: &[String]) -> (Expr, Expr) {
    let v = pick(rng, vars).clone();
    let attr = *pick(rng, &ATTRS);
    let (op, tight, loose) = if chance(rng, 0.5) {
        (BinOp::Gt, 2, 0)
    } else {
        (BinOp::Lt, 1, 3)
    };
    (
        Expr::bin(op, Expr::attr(v.clone(), attr), Expr::int(tight)),
        Expr::bin(op, Expr::attr(v, attr), Expr::int(loose)),
    )
}

/// A predicate on the negated variable `neg_var` (possibly joining a
/// positive variable — still only one negated variable referenced).
fn gen_neg_pred(rng: &mut TestRng, neg_var: &str, vars: &[String]) -> Expr {
    if chance(rng, 0.5) {
        Expr::bin(*pick(rng, &CMPS), attr_of(rng, neg_var), small_const(rng))
    } else {
        let v = pick(rng, vars).clone();
        Expr::bin(*pick(rng, &CMPS), attr_of(rng, neg_var), attr_of(rng, &v))
    }
}

fn gen_derive_arg(rng: &mut TestRng, vars: &[String]) -> Expr {
    let v = pick(rng, vars).clone();
    match rng.below(3) {
        0 => attr_of(rng, &v),
        1 => small_const(rng),
        _ => Expr::bin(BinOp::Add, attr_of(rng, &v), small_const(rng)),
    }
}

/// Generates one workload from a seed.
#[must_use]
pub fn workload_from_seed(seed: u64, config: &GenConfig) -> Workload {
    let rng = &mut TestRng::from_seed(seed);

    // Context network: c0 is the default; names are generated in
    // alphabetical order, so bit order equals index order.
    let n_ctx = 1 + rng.below(config.max_contexts.max(1) as u64) as usize;
    let ctx_names: Vec<String> = (0..n_ctx).map(|i| format!("c{i}")).collect();

    // Input schemas, registered in a fixed order.
    let n_types = 2 + rng.below((config.max_input_types.max(2) - 1) as u64) as usize;
    let type_names: Vec<String> = (0..n_types).map(|i| format!("E{i}")).collect();
    let mut registry = SchemaRegistry::new();
    for name in &type_names {
        registry
            .register(Schema::new(
                name,
                &[("a0", AttrType::Int), ("a1", AttrType::Int)],
            ))
            .expect("fresh registry");
    }

    let mut contexts: Vec<ContextDef> = ctx_names.iter().map(ContextDef::new).collect();

    // Deriving queries: passthrough patterns driving the transition
    // network. INITIATE creates overlapping windows; SWITCH walks the
    // network; TERMINATE closes (possibly its own) windows.
    let mut signatures: BTreeSet<String> = BTreeSet::new();
    let mut n_deriving = 0usize;
    if n_ctx > 1 {
        for (ci, ctx) in contexts.iter_mut().enumerate() {
            let per_ctx = rng.below(config.max_deriving_per_context as u64 + 1) as usize;
            for _ in 0..per_ctx {
                let query = gen_deriving(rng, ci, &ctx_names, &type_names, n_deriving);
                if signatures.insert(query_signature(&query)) {
                    ctx.deriving.push(query);
                    n_deriving += 1;
                }
            }
        }
        if n_deriving == 0 {
            // Keep the network reachable: at least one transition out
            // of the default context.
            let query = EventQuery {
                name: Some("d0".into()),
                action: Some(ContextAction::Switch(ctx_names[1].clone())),
                derive: None,
                pattern: Pattern::event(type_names[0].clone(), "v"),
                where_clause: None,
                within: None,
                contexts: vec![ctx_names[0].clone()],
            };
            contexts[0].deriving.push(query);
        }
    }

    // Processing queries: the analytics workload under test.
    let n_proc = 1 + rng.below(config.max_processing.max(1) as u64) as usize;
    let mut output_types = Vec::with_capacity(n_proc);
    for j in 0..n_proc {
        let ci = rng.below(n_ctx as u64) as usize;
        let (query, out_type) = gen_processing(rng, config, &type_names, j);
        output_types.push(out_type);
        contexts[ci].processing.push(query);
    }

    let model = CaesarModel::new(format!("gen{seed:016x}"), ctx_names[0].clone(), contexts)
        .expect("generated model is valid by construction");

    // Event stream: small timestamps with dense same-time runs, then
    // bounded disorder via adjacent swaps.
    let span = (config.max_events - config.min_events).max(1) as u64;
    let n_events = config.min_events + rng.below(span + 1) as usize;
    let n_parts = 1 + rng.below(config.max_partitions.max(1));
    let mut events = Vec::with_capacity(n_events);
    let mut t: Time = 1;
    for _ in 0..n_events {
        if !events.is_empty() && !chance(rng, config.same_time_bias) {
            t += 1 + rng.below(2);
        }
        let type_idx = rng.below(n_types as u64) as usize;
        let type_id = registry.lookup(&type_names[type_idx]).expect("registered");
        let attrs: Vec<Value> = (0..2).map(|_| Value::Int(rng.below(4) as i64)).collect();
        events.push(Event::simple(
            type_id,
            t,
            PartitionId(rng.below(n_parts) as u32),
            attrs,
        ));
    }
    let swaps = (config.disorder * n_events as f64) as usize;
    for _ in 0..swaps {
        if n_events >= 2 {
            let i = rng.below(n_events as u64 - 1) as usize;
            events.swap(i, i + 1);
        }
    }

    // Retraction-hostile post-pass (all biases default to zero): pull
    // events from the first half and re-insert them in the second half
    // of arrival order, optionally retimed onto an existing timestamp
    // (late ties), duplicated (late duplicates), or chased by a fresh
    // early-timestamped injection (late transition flips). The slack is
    // recomputed below from the final stream, so the worst straggler
    // arrives exactly at the slack boundary, never beyond it.
    let stragglers = (config.straggler_bias * events.len() as f64) as usize;
    for _ in 0..stragglers {
        if events.len() < 4 {
            break;
        }
        let i = rng.below(events.len() as u64 / 2) as usize;
        let mut event = events.remove(i);
        if chance(rng, config.late_tie_bias) {
            let donor = &events[rng.below(events.len() as u64) as usize];
            event = Event::simple(
                event.type_id,
                donor.time(),
                event.partition,
                event.attrs.clone(),
            );
        }
        let half = events.len() / 2;
        let j = half + rng.below((events.len() - half) as u64 + 1) as usize;
        events.insert(j, event.clone());
        if chance(rng, config.late_dup_bias) {
            let k = j + 1 + rng.below((events.len() - j) as u64) as usize;
            events.insert(k.min(events.len()), event.clone());
        }
        if chance(rng, config.late_flip_bias) {
            let type_idx = rng.below(n_types as u64) as usize;
            let type_id = registry.lookup(&type_names[type_idx]).expect("registered");
            let flip = Event::simple(
                type_id,
                1 + rng.below(event.time().max(2)),
                PartitionId(rng.below(n_parts) as u32),
                (0..2)
                    .map(|_| Value::Int(rng.below(4) as i64))
                    .collect::<Vec<_>>(),
            );
            let half = events.len() / 2;
            let pos = half + rng.below((events.len() - half) as u64 + 1) as usize;
            events.insert(pos, flip);
        }
    }
    let reorder_slack = max_lateness(&events);

    Workload {
        seed,
        model,
        registry,
        events,
        default_within: config.default_within,
        reorder_slack,
        output_types,
    }
}

fn gen_deriving(
    rng: &mut TestRng,
    ci: usize,
    ctx_names: &[String],
    type_names: &[String],
    idx: usize,
) -> EventQuery {
    let n_ctx = ctx_names.len();
    let other = |rng: &mut TestRng| {
        // Any context other than the enclosing one.
        let mut k = rng.below(n_ctx as u64 - 1) as usize;
        if k >= ci {
            k += 1;
        }
        k
    };
    let action = match rng.below(3) {
        0 => ContextAction::Initiate(ctx_names[other(rng)].clone()),
        1 => ContextAction::Switch(ctx_names[other(rng)].clone()),
        _ => ContextAction::Terminate(ctx_names[rng.below(n_ctx as u64) as usize].clone()),
    };
    let is_switch = matches!(action, ContextAction::Switch(_));
    let trigger = pick(rng, type_names).clone();
    let where_clause =
        chance(rng, 0.5).then(|| gen_filter_conjunct(rng, std::slice::from_ref(&"v".to_string())));
    EventQuery {
        name: Some(format!("d{idx}")),
        action: Some(action),
        derive: None,
        pattern: Pattern::event(trigger, "v"),
        where_clause,
        within: None,
        // SWITCH must name its enclosing context explicitly.
        contexts: if is_switch {
            vec![ctx_names[ci].clone()]
        } else {
            Vec::new()
        },
    }
}

fn gen_processing(
    rng: &mut TestRng,
    config: &GenConfig,
    type_names: &[String],
    idx: usize,
) -> (EventQuery, String) {
    // Positives: 1, or a SEQ of 2–3 (types may repeat).
    let n_pos = if chance(rng, config.seq_bias) {
        2 + rng.below(2) as usize
    } else {
        1
    };
    let vars: Vec<String> = (0..n_pos).map(|i| format!("v{i}")).collect();
    let mut elements: Vec<Pattern> = (0..n_pos)
        .map(|i| Pattern::event(pick(rng, type_names).clone(), vars[i].clone()))
        .collect();

    // Optional negation at a random position; its type must differ
    // from every positive to stay inside the oracle's envelope.
    let positive_types: BTreeSet<String> = elements
        .iter()
        .filter_map(|p| match p {
            Pattern::Event { event_type, .. } => Some(event_type.clone()),
            Pattern::Seq(_) => None,
        })
        .collect();
    let free_types: Vec<String> = type_names
        .iter()
        .filter(|t| !positive_types.contains(*t))
        .cloned()
        .collect();
    let mut neg_var = None;
    if chance(rng, config.negation_bias) && !free_types.is_empty() {
        let neg_type = pick(rng, &free_types).clone();
        // Insert leading, between, or trailing.
        let slot = rng.below(n_pos as u64 + 1) as usize;
        elements.insert(slot, Pattern::not_event(neg_type, "n"));
        neg_var = Some("n".to_string());
    }
    let pattern = if elements.len() == 1 {
        elements.pop().expect("one element")
    } else {
        Pattern::Seq(elements)
    };

    // WHERE: 0–2 positive-only conjuncts, possibly a subsumable pair,
    // plus an optional predicate on the negated variable.
    let mut conjuncts: Vec<Expr> = Vec::new();
    if chance(rng, config.subsumable_bias) {
        let (tight, loose) = gen_subsumable_pair(rng, &vars);
        conjuncts.push(tight);
        conjuncts.push(loose);
    } else {
        for _ in 0..rng.below(3) {
            conjuncts.push(gen_filter_conjunct(rng, &vars));
        }
    }
    if let Some(n) = &neg_var {
        if chance(rng, 0.6) {
            conjuncts.push(gen_neg_pred(rng, n, &vars));
        }
    }
    let where_clause = Expr::conjoin(conjuncts);

    let out_type = format!("O{idx}");
    let n_args = 1 + rng.below(2) as usize;
    let args: Vec<Expr> = (0..n_args).map(|_| gen_derive_arg(rng, &vars)).collect();
    let query = EventQuery {
        name: Some(format!("q{idx}")),
        action: None,
        derive: Some(DeriveClause {
            event_type: out_type.clone(),
            args,
        }),
        pattern,
        where_clause,
        within: Some(*pick(rng, &WITHINS)),
        contexts: Vec::new(),
    };
    (query, out_type)
}

/// A [`Strategy`] producing workloads, for use inside proptest-style
/// properties. The workload remembers its seed, so failures printed by
/// the harness are reproducible outside the property runner too.
pub fn workload_strategy(config: GenConfig) -> impl Strategy<Value = Workload> {
    (0u64..u64::MAX).prop_map(move |seed| workload_from_seed(seed, &config))
}
