//! Vectorization microbenchmarks: the same filter-heavy Linear Road
//! stream is pushed through the batched engine with the columnar
//! kernels on and off, plus the per-event baseline. Complements the
//! `vectorized` binary, which runs the full-size throughput comparison
//! and records `BENCH_vectorized.json`.

use caesar_core::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

const FILTER_MODEL: &str = r#"
MODEL vectorized DEFAULT road
CONTEXT road {
    DERIVE CrawlingCar(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed < 12 AND p.lane != "exit" AND p.seg = 1
    DERIVE Speeder(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed * 3 > 240 AND p.dir = 0 AND p.pos > 320
    DERIVE LaneChangePressure(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.speed >= 12 AND p.speed <= 20 AND p.seg * 100 + p.pos > 350
    DERIVE ExitRamp(p.vid, p.sec)
        PATTERN PositionReport p
        WHERE p.lane = "exit" AND p.speed < 30
}
"#;

fn filter_system(batch: BatchPolicy, vectorize: bool) -> CaesarSystem {
    Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
        .within(60)
        .model_text(FILTER_MODEL)
        .engine_config(
            EngineConfig::builder()
                .batch(batch)
                .vectorize(vectorize)
                .build(),
        )
        .build()
        .expect("filter model builds")
}

/// 256 position reports per tick in one partition: every transaction
/// is a 256-row batch.
fn dense_events(ticks: u64) -> Vec<Event> {
    let probe = filter_system(BatchPolicy::default(), true);
    let mut events = Vec::new();
    for sec in 1..=ticks {
        for k in 0i64..256 {
            let lane = if k % 16 == 0 { "exit" } else { "travel" };
            events.push(
                probe
                    .event("PositionReport", sec)
                    .unwrap()
                    .attr("vid", k)
                    .unwrap()
                    .attr("sec", sec as i64)
                    .unwrap()
                    .attr("speed", (k * 7 + sec as i64) % 100)
                    .unwrap()
                    .attr("xway", 0i64)
                    .unwrap()
                    .attr("lane", lane)
                    .unwrap()
                    .attr("dir", k & 1)
                    .unwrap()
                    .attr("seg", (k / 3) % 2)
                    .unwrap()
                    .attr("pos", (k * 11 + sec as i64) % 400)
                    .unwrap()
                    .build()
                    .unwrap(),
            );
        }
    }
    events
}

fn bench_filter_heavy(c: &mut Criterion) {
    let events = dense_events(40);
    let mut group = c.benchmark_group("vectorized/filter-heavy");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(20);
    let configs = [
        ("per_event", BatchPolicy::per_event(), true),
        ("batched_interpreter", BatchPolicy::default(), false),
        ("batched_vectorized", BatchPolicy::default(), true),
    ];
    for (name, policy, vectorize) in configs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut system = filter_system(policy, vectorize);
                let report = system
                    .run_stream(&mut VecStream::new(events.clone()))
                    .expect("in order");
                black_box(report.events_in)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_heavy);
criterion_main!(benches);
