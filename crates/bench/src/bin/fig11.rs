//! Figure 11 — CAESAR optimization techniques.
//!
//! (a) optimizer efficiency: CPU time of the exhaustive
//!     (context-independent) plan search vs. the context-aware greedy
//!     search, 16–24 operators, log2 seconds (the paper reports a
//!     2712× gap at 24 operators);
//! (b) L-factor: maximal latency vs. number of roads for the optimized
//!     context-aware plan vs. the non-optimized plan (busy-waiting: all
//!     plans always fed, context windows filtering event by event). The
//!     paper's constraint is 5 seconds; the optimized plan sustains 7
//!     roads, the non-optimized 5.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin fig11 [-- a|b]
//! ```

use caesar_bench::{measure, print_table};
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use caesar_optimizer::search::{exhaustive_search, greedy_search, synthetic_operators};
use caesar_runtime::metrics::l_factor;
use std::time::Instant;

fn part_a() {
    let mut rows = Vec::new();
    for n in 16..=24 {
        let ops = synthetic_operators(n, 2016);
        let t0 = Instant::now();
        let ex = exhaustive_search(&ops, 100.0);
        let t_ex = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let gr = greedy_search(&ops, 100.0);
        let t_gr = t1.elapsed().as_secs_f64().max(1e-9);
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", t_ex.max(1e-9).log2()),
            format!("{:.3}", t_gr.log2()),
            format!("{:.0}", t_ex / t_gr),
            format!("{:.4}", gr.cost / ex.cost),
        ]);
    }
    print_table(
        "Figure 11(a): plan search CPU time (log2 seconds)",
        &[
            "operators",
            "exhaustive log2(s)",
            "greedy log2(s)",
            "speedup",
            "greedy/optimal cost",
        ],
        &rows,
    );
}

/// Repeats a measurement (the paper runs every experiment three times)
/// and keeps the smallest max-latency — robust against OS scheduling
/// spikes that would otherwise dominate underloaded runs.
fn robust_max_latency(
    replication: usize,
    engine_config: EngineConfig,
    events: &[caesar_core::prelude::Event],
) -> u64 {
    (0..3)
        .map(|_| {
            let mut system =
                build_lr_system(replication, OptimizerConfig::default(), engine_config);
            measure("run", &mut system, events.to_vec())
                .report
                .max_latency_ns
        })
        .min()
        .expect("three runs")
}

fn part_b() {
    let mut rows = Vec::new();
    let mut optimized_points = Vec::new();
    let mut plain_points = Vec::new();
    // Runtime calibration: pick the arrival-clock scale from the
    // 2-road optimized run so the sweep brackets the overload knee on
    // any machine (see DESIGN.md, substitution #4).
    let mut ns_per_tick = 0u64;
    for roads in 2..=8u32 {
        let config = LinearRoadConfig {
            roads,
            segments_per_road: 10,
            directions: 1,
            duration: 900,
            seed: 21,
            base_cars: 2.0,
            peak_cars: 8.0,
            ..Default::default()
        };
        let mut sim = TrafficSim::new(config);
        let events = sim.generate();
        if ns_per_tick == 0 {
            // Calibrate: process as fast as possible three times, then
            // set the tick so the optimized 2-road run sits at ~15%
            // average utilization.
            let busy_ns = (0..3)
                .map(|_| {
                    let mut warm =
                        build_lr_system(10, OptimizerConfig::default(), EngineConfig::default());
                    let m = measure("warm", &mut warm, events.clone());
                    m.report.wall_time.as_nanos() as u64
                })
                .min()
                .expect("three runs");
            ns_per_tick = (busy_ns * 7 / 900).max(1_000);
            println!("calibrated ns_per_tick = {ns_per_tick}");
        }
        // Busy-waiting only: the "non-optimized plan" comparison
        // isolates suspension and push-down, without the per-query
        // re-derivation of the full CI baseline (Figure 12's
        // subject). `baseline_pushdown(false)` leaves the context
        // window mid-chain, so every event traverses the pattern and
        // filter operators before being dropped — the literal
        // non-optimized plan of Figure 6(a).
        let engine = |mode| {
            EngineConfig::builder()
                .mode(mode)
                .redundant_derivation(false)
                .baseline_pushdown(false)
                .ns_per_tick(ns_per_tick)
                .build()
        };
        let opt = robust_max_latency(10, engine(ExecutionMode::ContextAware), &events);
        let plain = robust_max_latency(10, engine(ExecutionMode::ContextIndependent), &events);
        optimized_points.push((roads, opt));
        plain_points.push((roads, plain));
        rows.push(vec![
            roads.to_string(),
            format!("{:.3}", opt as f64 / ns_per_tick as f64),
            format!("{:.3}", plain as f64 / ns_per_tick as f64),
        ]);
    }
    print_table(
        "Figure 11(b): max latency (simulated seconds) vs number of roads",
        &["roads", "optimized", "non-optimized"],
        &rows,
    );
    let constraint = 5 * ns_per_tick; // "5 seconds" in simulated time
    println!(
        "L-factor (5 s constraint): optimized = {} roads, non-optimized = {} roads",
        l_factor(&optimized_points, constraint),
        l_factor(&plain_points, constraint)
    );
}

fn main() {
    let part = std::env::args().nth(1);
    match part.as_deref() {
        Some("a") => part_a(),
        Some("b") => part_b(),
        _ => {
            part_a();
            part_b();
        }
    }
}
