//! End-to-end correctness: the engine's Linear Road outputs must equal
//! the reference oracle's, in every execution mode and optimizer
//! configuration — optimization and context-awareness change cost, never
//! results.

use caesar::linear_road::{expected_outputs, LinearRoadConfig, TrafficSim};
use caesar::prelude::*;
use caesar_testkit::lr;

fn lr_system(mode: ExecutionMode, optimized: bool, replication: usize) -> CaesarSystem {
    lr::lr_system(
        optimized,
        replication,
        EngineConfig::builder().mode(mode).build(),
    )
}

fn check_against_oracle(config: LinearRoadConfig, mode: ExecutionMode, optimized: bool) {
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let oracle = expected_outputs(&events, sim.registry());
    let mut system = lr_system(mode, optimized, 1);
    let report = system
        .run_stream(&mut VecStream::new(events))
        .expect("stream is in order");
    assert_eq!(
        report.outputs_of("ZeroToll"),
        oracle.zero_tolls,
        "zero tolls ({mode:?}, optimized={optimized})"
    );
    assert_eq!(
        report.outputs_of("TollNotification"),
        oracle.real_tolls,
        "real tolls ({mode:?}, optimized={optimized})"
    );
    assert_eq!(
        report.outputs_of("AccidentWarning"),
        oracle.accident_warnings,
        "accident warnings ({mode:?}, optimized={optimized})"
    );
}

fn benchmark_config(seed: u64) -> LinearRoadConfig {
    LinearRoadConfig {
        roads: 1,
        segments_per_road: 6,
        duration: 900,
        seed,
        base_cars: 2.0,
        peak_cars: 5.0,
        ..Default::default()
    }
}

#[test]
fn context_aware_optimized_matches_oracle() {
    check_against_oracle(benchmark_config(1), ExecutionMode::ContextAware, true);
}

#[test]
fn context_aware_unoptimized_matches_oracle() {
    check_against_oracle(benchmark_config(2), ExecutionMode::ContextAware, false);
}

#[test]
fn context_independent_matches_oracle() {
    check_against_oracle(
        benchmark_config(3),
        ExecutionMode::ContextIndependent,
        false,
    );
}

#[test]
fn several_seeds_all_match() {
    for seed in 10..15 {
        check_against_oracle(benchmark_config(seed), ExecutionMode::ContextAware, true);
    }
}

#[test]
fn multi_road_streams_match() {
    let config = LinearRoadConfig {
        roads: 2,
        segments_per_road: 4,
        directions: 2,
        duration: 600,
        seed: 77,
        ..Default::default()
    };
    check_against_oracle(config, ExecutionMode::ContextAware, true);
}

#[test]
fn replicated_workload_multiplies_outputs() {
    let config = benchmark_config(4);
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let oracle = expected_outputs(&events, sim.registry());

    let mut system = lr_system(ExecutionMode::ContextAware, true, 3);
    let report = system
        .run_stream(&mut VecStream::new(events))
        .expect("in order");
    // Base copies plus suffixed replicas must each match the oracle.
    assert_eq!(report.outputs_of("TollNotification"), oracle.real_tolls);
    assert_eq!(report.outputs_of("TollNotification_1"), oracle.real_tolls);
    assert_eq!(report.outputs_of("TollNotification_2"), oracle.real_tolls);
    assert_eq!(
        report.outputs_of("AccidentWarning_2"),
        oracle.accident_warnings
    );
}

#[test]
fn sharing_does_not_change_results() {
    let config = benchmark_config(5);
    let mut sim = TrafficSim::new(config);
    let events = sim.generate();
    let run = |sharing: bool| {
        let mut system = lr::lr_builder(1)
            .engine_config(EngineConfig::builder().sharing(sharing).build())
            .build()
            .unwrap();
        system
            .run_stream(&mut VecStream::new(events.clone()))
            .unwrap()
    };
    let shared = run(true);
    let non_shared = run(false);
    assert_eq!(
        shared.outputs_of("TollNotification"),
        non_shared.outputs_of("TollNotification")
    );
    assert_eq!(
        shared.outputs_of("AccidentWarning"),
        non_shared.outputs_of("AccidentWarning")
    );
    assert_eq!(
        shared.outputs_of("ZeroToll"),
        non_shared.outputs_of("ZeroToll")
    );
}

#[test]
fn boundary_aligned_windows_match_oracle() {
    // Context windows whose bounds collide with the 30-second report
    // cadence maximize same-timestamp marker/report transactions — the
    // `(t_i, t_t]` boundary cases.
    use caesar::events::Interval;
    use caesar::linear_road::{SchedulePolicy, SegmentSchedule};
    for seed in 20..30 {
        let config = LinearRoadConfig {
            roads: 1,
            segments_per_road: 4,
            duration: 600,
            seed,
            base_cars: 3.0,
            peak_cars: 6.0,
            schedule: SchedulePolicy::Explicit(SegmentSchedule {
                congestion: vec![Interval::new(120, 240), Interval::new(390, 480)],
                accidents: vec![Interval::new(270, 330)],
            }),
            ..Default::default()
        };
        check_against_oracle(config, ExecutionMode::ContextAware, true);
    }
}
