//! Parallel execution across stream partitions.
//!
//! Context state, pattern state and stream transactions are all
//! partition-scoped ("one transaction per road segment", §6.2), so
//! partitions are embarrassingly parallel: the distributor shards the
//! input stream by partition id onto worker threads, each running an
//! independent [`Engine`] over its partition subset. Results are the
//! disjoint union of the shards' outputs; latency is reported per shard
//! and merged by maximum (each shard models one executor core of the
//! paper's 16-core evaluation host).

use crate::engine::{Engine, EngineConfig, RunReport};
use caesar_events::{Event, EventError, EventStream, SchemaRegistry};
use caesar_optimizer::optimizer::OptimizedProgram;
use crossbeam::channel;
use parking_lot::Mutex;
use std::sync::Arc;

/// Runs a stream through `shards` independent engines, sharding by
/// partition id. Returns the merged report.
///
/// # Errors
/// Returns the first ingestion error any shard hits (out-of-order
/// events within a shard).
pub fn run_sharded(
    program: &OptimizedProgram,
    registry: &SchemaRegistry,
    config: EngineConfig,
    shards: usize,
    stream: &mut dyn EventStream,
) -> Result<RunReport, EventError> {
    assert!(shards >= 1, "at least one shard");
    let progress = Arc::new(Mutex::new(0u64));
    let result: Result<Vec<RunReport>, EventError> = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::bounded::<Event>(4096);
            senders.push(tx);
            let program = program.clone();
            let progress = Arc::clone(&progress);
            handles.push(scope.spawn(move || -> Result<RunReport, EventError> {
                let mut engine = Engine::new(program, registry, config);
                let mut seen = 0u64;
                for event in rx {
                    engine.ingest(event)?;
                    seen += 1;
                    if seen.is_multiple_of(1024) {
                        *progress.lock() += 1024;
                    }
                }
                *progress.lock() += seen % 1024;
                Ok(engine.finish())
            }));
        }
        while let Some(event) = stream.next_event() {
            let shard = event.partition.index() % shards;
            if senders[shard].send(event).is_err() {
                break; // worker died; its Err surfaces below
            }
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    });
    let reports = result?;
    Ok(merge_reports(reports))
}

/// Merges per-shard reports: counters sum, latency merges by maximum
/// (shards are independent queues), wall time by maximum (they ran
/// concurrently).
#[must_use]
pub fn merge_reports(reports: Vec<RunReport>) -> RunReport {
    let mut merged = RunReport::default();
    for r in reports {
        merged.events_in += r.events_in;
        merged.events_out += r.events_out;
        merged.transitions_applied += r.transitions_applied;
        merged.plans_fed += r.plans_fed;
        merged.plans_suspended += r.plans_suspended;
        merged.peak_partials = merged.peak_partials.max(r.peak_partials);
        merged.max_latency_ns = merged.max_latency_ns.max(r.max_latency_ns);
        merged.avg_latency_ns = merged.avg_latency_ns.max(r.avg_latency_ns);
        merged.wall_time = merged.wall_time.max(r.wall_time);
        for (ty, n) in r.outputs_by_type {
            *merged.outputs_by_type.entry(ty).or_insert(0) += n;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, PartitionId, Schema, Time, Value, VecStream};
    use caesar_optimizer::Optimizer;
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    fn setup() -> (OptimizedProgram, SchemaRegistry) {
        let model = parse_model(
            r#"
            MODEL m DEFAULT idle
            CONTEXT idle {
                SWITCH CONTEXT busy PATTERN Enter
            }
            CONTEXT busy {
                SWITCH CONTEXT idle PATTERN Leave
                DERIVE Out(r.v) PATTERN R r WHERE r.v > 2
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("R", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Enter", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Leave", &[("v", AttrType::Int)]))
            .unwrap();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        (Optimizer::default().optimize(t, &reg), reg)
    }

    fn events(reg: &SchemaRegistry, partitions: u32) -> Vec<Event> {
        let r = reg.lookup("R").unwrap();
        let enter = reg.lookup("Enter").unwrap();
        let mut out = Vec::new();
        for t in 0..200u64 {
            let p = PartitionId(t as u32 % partitions);
            if t % 50 == 10 {
                out.push(Event::simple(enter, t, p, vec![Value::Int(0)]));
            }
            out.push(Event::simple(r, t, p, vec![Value::Int((t % 7) as i64)]));
        }
        out
    }

    #[test]
    fn sharded_outputs_equal_single_threaded() {
        let (program, reg) = setup();
        let stream_events = events(&reg, 8);

        let mut single = Engine::new(program.clone(), &reg, EngineConfig::default());
        let single_report = single
            .run_stream(&mut VecStream::new(stream_events.clone()))
            .unwrap();

        for shards in [1usize, 2, 4] {
            let report = run_sharded(
                &program,
                &reg,
                EngineConfig::default(),
                shards,
                &mut VecStream::new(stream_events.clone()),
            )
            .unwrap();
            assert_eq!(
                report.outputs_of("Out"),
                single_report.outputs_of("Out"),
                "{shards} shards"
            );
            assert_eq!(report.events_in, single_report.events_in);
            assert_eq!(
                report.transitions_applied,
                single_report.transitions_applied
            );
        }
    }

    #[test]
    fn merge_reports_sums_and_maxes() {
        let mut a = RunReport {
            events_in: 10,
            max_latency_ns: 500,
            ..RunReport::default()
        };
        a.outputs_by_type.insert("X".into(), 3);
        let mut b = RunReport {
            events_in: 5,
            max_latency_ns: 900,
            ..RunReport::default()
        };
        b.outputs_by_type.insert("X".into(), 4);
        let merged = merge_reports(vec![a, b]);
        assert_eq!(merged.events_in, 15);
        assert_eq!(merged.max_latency_ns, 900);
        assert_eq!(merged.outputs_by_type.get("X"), Some(&7));
    }

    #[test]
    fn empty_stream_is_fine() {
        let (program, reg) = setup();
        let report = run_sharded(
            &program,
            &reg,
            EngineConfig::default(),
            3,
            &mut VecStream::new(vec![]),
        )
        .unwrap();
        assert_eq!(report.events_in, 0);
    }

    #[test]
    fn shard_count_one_matches_plain_engine_latency_accounting() {
        let (program, reg) = setup();
        let stream_events = events(&reg, 4);
        let report = run_sharded(
            &program,
            &reg,
            EngineConfig::default(),
            1,
            &mut VecStream::new(stream_events),
        )
        .unwrap();
        assert!(report.max_latency_ns > 0);
        let elapsed: Time = 1;
        let _ = elapsed;
    }
}
