//! Crash-injection harness: kill the engine at an arbitrary event index
//! and prove the recovered run is indistinguishable from one that never
//! crashed.
//!
//! The harness runs the same input three ways:
//!
//! 1. **baseline** — one engine, no checkpointing, straight through;
//! 2. **crashed** — a checkpointed engine fed exactly `crash_after`
//!    events, then dropped without `finish()` (the process-death model:
//!    whatever was not on disk is gone);
//! 3. **recovered** — a *freshly built* engine resumed from the
//!    checkpoint directory, fed the remaining input, and finished.
//!
//! Equivalence is byte-level: outputs are compared via their codec
//! encoding ([`outputs_equivalent`]), and the deterministic report
//! counters must match ([`reports_equivalent`]; wall-clock and latency
//! metrics are excluded — a restored engine restarts its wall clock).
//! Engines must be built with `collect_outputs: true` for the output
//! comparison to be meaningful.

use crate::error::RecoveryError;
use crate::manager::CheckpointManager;
use caesar_events::{codec, Event};
use caesar_runtime::{Engine, RunReport};
use std::path::Path;

/// Outcome of one crash/recover experiment.
#[derive(Debug)]
pub struct CrashReport {
    /// Report of the uninterrupted run.
    pub baseline: RunReport,
    /// Report of the crashed-then-recovered run.
    pub recovered: RunReport,
    /// Every output event of the uninterrupted run, in order.
    pub baseline_outputs: Vec<Event>,
    /// Every output event across crash and recovery, in order.
    pub recovered_outputs: Vec<Event>,
    /// Checkpoints taken before the crash.
    pub checkpoints_before_crash: u64,
    /// Stream position the recovered engine resumed at.
    pub resumed_at: u64,
}

impl CrashReport {
    /// `true` iff the recovered run is observationally identical to the
    /// uninterrupted one: byte-identical outputs and equal deterministic
    /// counters.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        outputs_equivalent(&self.baseline_outputs, &self.recovered_outputs)
            && reports_equivalent(&self.baseline, &self.recovered)
    }
}

/// Byte-identity of two output streams under the wire codec.
#[must_use]
pub fn outputs_equivalent(a: &[Event], b: &[Event]) -> bool {
    codec::encode_all(a) == codec::encode_all(b)
}

/// Equality of every deterministic [`RunReport`] counter. Wall-clock
/// time and the queueing-model latencies (which fold in measured service
/// times) are excluded; everything derived from the event stream alone
/// must match exactly.
#[must_use]
pub fn reports_equivalent(a: &RunReport, b: &RunReport) -> bool {
    a.events_in == b.events_in
        && a.events_out == b.events_out
        && a.transitions_applied == b.transitions_applied
        && a.outputs_by_type == b.outputs_by_type
        && a.plans_fed == b.plans_fed
        && a.plans_suspended == b.plans_suspended
        && a.peak_partials == b.peak_partials
}

/// Runs the crash/recover experiment.
///
/// `build` must construct a fresh engine from the same model and
/// configuration every time it is called (with `collect_outputs`
/// enabled); `every` is the checkpoint cadence in events; `crash_after`
/// is the number of events processed before the simulated crash (clamped
/// to the stream length).
pub fn crash_and_recover<F>(
    mut build: F,
    events: &[Event],
    dir: &Path,
    every: u64,
    crash_after: usize,
) -> Result<CrashReport, RecoveryError>
where
    F: FnMut() -> Engine,
{
    // Uninterrupted reference run (no durability in the loop at all).
    let mut baseline_engine = build();
    for event in events {
        baseline_engine
            .ingest(event.clone())
            .map_err(|e| RecoveryError::Replay(e.to_string()))?;
    }
    let baseline = baseline_engine.finish();
    let baseline_outputs = std::mem::take(&mut baseline_engine.collected_outputs);

    // Checkpointed run, killed after `crash_after` events. Dropping the
    // engine without `finish()` models process death: only what the
    // manager put on disk survives.
    let crash_after = crash_after.min(events.len());
    let mut manager = CheckpointManager::create(dir, every)?;
    let mut doomed = build();
    for event in &events[..crash_after] {
        manager.log_event(event)?;
        doomed
            .ingest(event.clone())
            .map_err(|e| RecoveryError::Replay(e.to_string()))?;
        manager.maybe_checkpoint(&doomed)?;
    }
    let checkpoints_before_crash = manager.checkpoints_taken();
    drop(doomed);
    drop(manager);

    // Recovery into a freshly built engine, then the rest of the stream.
    let mut revived = build();
    let mut manager = CheckpointManager::resume(dir, every, &mut revived)?;
    let resumed_at = manager.position();
    for event in &events[resumed_at as usize..] {
        manager.log_event(event)?;
        revived
            .ingest(event.clone())
            .map_err(|e| RecoveryError::Replay(e.to_string()))?;
        manager.maybe_checkpoint(&revived)?;
    }
    let recovered = revived.finish();
    let recovered_outputs = std::mem::take(&mut revived.collected_outputs);

    Ok(CrashReport {
        baseline,
        recovered,
        baseline_outputs,
        recovered_outputs,
        checkpoints_before_crash,
        resumed_at,
    })
}
