//! Batched vs event-at-a-time hot-path throughput.
//!
//! The tentpole batching experiment: the same Linear Road streams are
//! run through identical engines that differ only in the batch policy,
//! and throughput (events per second of wall time) is compared. The
//! sequential rows interleave the two configurations in back-to-back
//! pairs and report the median per-pair ratio, which is robust to the
//! load bursts of a shared host; the sharded row is best of 3. Covers
//! the sequential engine at two stream densities and the sharded
//! executor at 4 shards.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin batching
//! ```
//!
//! Besides the printed table, results are written to
//! `BENCH_batching.json` in the current directory; EXPERIMENTS.md
//! records a committed run.

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, lr_model, lr_registry, LinearRoadConfig, TrafficSim};
use caesar_optimizer::Optimizer;
use caesar_query::QuerySet;
use caesar_runtime::run_sharded;
use std::time::Instant;

struct Row {
    label: String,
    events: u64,
    per_event_evs: f64,
    batched_evs: f64,
    speedup: f64,
}

fn lr_events(roads: u32, segments: u32, duration: u64, base: f64, peak: f64) -> Vec<Event> {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads,
        segments_per_road: segments,
        duration,
        seed: 11,
        base_cars: base,
        peak_cars: peak,
        ..Default::default()
    });
    sim.generate()
}

/// One timed sequential run; returns (events, elapsed seconds).
fn sequential_run(policy: BatchPolicy, events: &[Event]) -> (u64, f64) {
    let mut system = build_lr_system(
        1,
        OptimizerConfig::default(),
        EngineConfig::builder().batch(policy).build(),
    );
    let start = Instant::now();
    let report = system
        .run_stream(&mut VecStream::new(events.to_vec()))
        .expect("in order");
    (report.events_in, start.elapsed().as_secs_f64())
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    values[values.len() / 2]
}

/// Paired sequential comparison: after one untimed warmup pair,
/// `pairs` repetition *pairs* run back-to-back, alternating which
/// configuration goes first inside the pair. A contention burst or
/// frequency dip on a shared host hits both runs of a pair roughly
/// alike, so the per-pair throughput ratio is far stabler than any
/// cross-run aggregate, and alternating the order cancels the
/// systematic drift (cache warmth, frequency throttle) between a
/// pair's first and second slot. The reported speedup is the median
/// pair ratio; the throughput columns are per-config median runs.
/// Returns (per-event ev/s, batched ev/s, speedup).
fn sequential_pair(
    per_event: BatchPolicy,
    batched: BatchPolicy,
    events: &[Event],
    pairs: usize,
) -> (f64, f64, f64) {
    sequential_run(per_event, events);
    sequential_run(batched, events);
    let (mut evs_a, mut evs_b, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for pair in 0..pairs {
        let (a, b) = if pair % 2 == 0 {
            let (n, s) = sequential_run(per_event, events);
            let a = n as f64 / s;
            let (n, s) = sequential_run(batched, events);
            (a, n as f64 / s)
        } else {
            let (n, s) = sequential_run(batched, events);
            let b = n as f64 / s;
            let (n, s) = sequential_run(per_event, events);
            (n as f64 / s, b)
        };
        evs_a.push(a);
        evs_b.push(b);
        ratios.push(b / a);
    }
    (median(&mut evs_a), median(&mut evs_b), median(&mut ratios))
}

/// Best-of-3 wall-clock throughput of a sharded run.
fn sharded_throughput(policy: BatchPolicy, shards: usize, events: &[Event]) -> f64 {
    let model = lr_model(1);
    let qs = QuerySet::from_model(&model).unwrap();
    let mut registry = lr_registry();
    let translation = caesar_algebra::translate::translate_query_set(
        &qs,
        &mut registry,
        &caesar_algebra::translate::TranslateOptions { default_within: 60 },
    )
    .unwrap();
    let program = Optimizer::default().optimize(translation, &registry);
    (0..3)
        .map(|_| {
            let config = EngineConfig::builder().batch(policy).build();
            let start = Instant::now();
            let report = run_sharded(
                &program,
                &registry,
                config,
                shards,
                &mut VecStream::new(events.to_vec()),
            )
            .expect("in order");
            report.events_in as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Sequential, moderate density (≈ the correctness-test stream,
    // ~1.3 events per stream transaction — little to amortize). Long
    // duration: the stream is sparse, so a multi-hour window is needed
    // for a wall-clock measurement above the timer noise floor.
    let moderate = lr_events(1, 6, 28800, 2.0, 5.0);
    let (per_event_evs, batched_evs, speedup) = sequential_pair(
        BatchPolicy::per_event(),
        BatchPolicy::default(),
        &moderate,
        16,
    );
    rows.push(Row {
        label: "sequential/1-road".into(),
        events: moderate.len() as u64,
        per_event_evs,
        batched_evs,
        speedup,
    });

    // Sequential, dense traffic: hundreds of cars over two segments
    // yield ~10-event same-(partition, time) runs — the regime batching
    // targets (per-batch context probes and negation index).
    let dense = lr_events(1, 2, 900, 300.0, 500.0);
    let (per_event_evs, batched_evs, speedup) =
        sequential_pair(BatchPolicy::per_event(), BatchPolicy::default(), &dense, 6);
    rows.push(Row {
        label: "sequential/dense-segment".into(),
        events: dense.len() as u64,
        per_event_evs,
        batched_evs,
        speedup,
    });

    // Sharded executor on the dense stream: batches also amortize
    // channel sends.
    let per_event_evs = sharded_throughput(BatchPolicy::per_event(), 4, &dense);
    let batched_evs = sharded_throughput(BatchPolicy::default(), 4, &dense);
    rows.push(Row {
        label: "sharded4/dense-segment".into(),
        events: dense.len() as u64,
        per_event_evs,
        batched_evs,
        speedup: batched_evs / per_event_evs,
    });

    print_table(
        "Batched vs event-at-a-time throughput (events/s, median of interleaved pairs)",
        &[
            "configuration",
            "events",
            "per-event ev/s",
            "batched ev/s",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.events.to_string(),
                    format!("{:.0}", r.per_event_evs),
                    format!("{:.0}", r.batched_evs),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"config\": \"{}\", \"events\": {}, \"per_event_events_per_sec\": {:.1}, \
                 \"batched_events_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.label, r.events, r.per_event_evs, r.batched_evs, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"batched vs per-event hot path, Linear Road\",\n\
         \"unit\": \"events per second of wall time; sequential rows: median run of interleaved pairs, speedup = median per-pair ratio; sharded row: best of 3\",\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_batching.json", &json).expect("write BENCH_batching.json");
    println!("\nwrote BENCH_batching.json");
}
