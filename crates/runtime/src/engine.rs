//! The CAESAR engine: distributor → time-driven scheduler → context
//! derivation → transition application → context-aware routing →
//! context processing, with context-history maintenance, garbage
//! collection and latency accounting (Figures 8 and 9 of the paper).

use crate::metrics::{ArrivalClock, LatencyTracker};
use crate::obs::{CounterId, MetricsRegistry, MetricsSnapshot, ObservabilityLevel, Stage};
use crate::programs::{Mode, PartitionPrograms, ProgramTemplate};
use crate::router::Router;
use crate::scheduler::TimeDrivenScheduler;
use crate::stats::Observations;
use crate::txn::StreamTransaction;
use caesar_algebra::context_table::{ContextTable, TransitionKind};
use caesar_algebra::plan::PlanOutput;
use caesar_events::{
    BatchPolicy, ColumnarBatch, Event, EventBatch, EventError, EventStream, OutputRecord,
    ReorderBuffer, SchemaRegistry, Time, TypeId,
};
use caesar_optimizer::optimizer::OptimizedProgram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

mod speculate;
pub use speculate::Consistency;
use speculate::Speculation;

/// Execution mode of the engine.
pub type ExecutionMode = Mode;

/// Engine configuration.
///
/// The struct is `#[non_exhaustive]`: outside this crate it cannot be
/// built with a literal, so new knobs stop breaking downstream
/// constructors. Build one with [`EngineConfig::builder`] (or mutate
/// the public fields of [`EngineConfig::default`]):
///
/// ```
/// use caesar_runtime::{EngineConfig, ObservabilityLevel};
/// let config = EngineConfig::builder()
///     .vectorize(false)
///     .observability(ObservabilityLevel::Counters)
///     .build();
/// assert!(!config.vectorize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Context-aware (CAESAR) or context-independent (baseline).
    pub mode: ExecutionMode,
    /// Execute shared workloads once (requires the optimizer's sharing
    /// analysis; ignored — treated as non-shared — if it found nothing).
    pub sharing: bool,
    /// In the context-independent mode: each processing query privately
    /// re-evaluates its context's deriving conditions on every event
    /// (§5.3: "each context processing query has to run its respective
    /// context deriving queries separately"). Disable to measure pure
    /// busy-waiting (the "non-optimized query plan" of Figure 11b).
    pub redundant_derivation: bool,
    /// In the context-independent mode: push context windows to the
    /// chain bottom so pattern state stays window-scoped and results
    /// match CAESAR exactly (the default). Disable to model a SASE-style
    /// engine literally: every event traverses pattern and filter before
    /// the mid-chain context window drops out-of-context *matches* —
    /// full busy-waiting cost, with the baseline's stream-scoped pattern
    /// state (results may differ at window boundaries, §3.2).
    pub baseline_pushdown: bool,
    /// Disorder tolerance of the distributor in ticks: events are held
    /// in a bounded reordering buffer and released once the stream's
    /// high-watermark passes them by this slack. `0` = require strictly
    /// in-order input (the paper's assumption).
    pub reorder_slack: Time,
    /// Simulated nanoseconds of arrival time per application tick
    /// (drives the latency queueing model; see [`ArrivalClock`]).
    pub ns_per_tick: u64,
    /// Run the garbage collector every this many ticks.
    pub gc_every: Time,
    /// Keep every output event in memory (testing / debugging; do not
    /// enable on unbounded streams).
    pub collect_outputs: bool,
    /// Batch formation policy of the hot path. When enabled, the
    /// distributor groups same-timestamp events into [`EventBatch`]es
    /// and every pipeline stage (ingest, reorder, scheduling, routing,
    /// operator evaluation) runs once per batch instead of once per
    /// event. Disabled = the event-at-a-time comparison baseline.
    /// Results are identical either way (see `tests/batch_equivalence`).
    pub batch: BatchPolicy,
    /// Evaluate batch predicates and projections through vectorized
    /// kernels over columnar (per-attribute) views of the transaction,
    /// driven by selection vectors. Expressions the kernel compiler
    /// cannot cover fall back to the row interpreter per conjunct.
    /// Disabled = the batched interpreter of the previous hot path.
    /// Outputs are byte-identical either way.
    #[serde(default = "default_vectorize")]
    pub vectorize: bool,
    /// How much the engine records about itself while running (see
    /// [`ObservabilityLevel`]): `Off` (default, within noise of no
    /// instrumentation), `Counters`, or `Spans`. Never affects results.
    pub observability: ObservabilityLevel,
    /// When outputs become visible relative to the reorder slack (see
    /// [`Consistency`]): `Strict` (default) waits out the slack before
    /// anything is emitted; `Speculative` emits immediately and
    /// compensates late arrivals with typed retraction records. The
    /// settled computation is identical either way — the knob trades
    /// output latency against retraction traffic, never results.
    #[serde(default)]
    pub consistency: Consistency,
    /// Collect match provenance: every derived complex event carries the
    /// `(type, occurrence time)` of each contributing input event
    /// (`caesar_events::Provenance`). Off by default — provenance
    /// changes the payload of every output event (and therefore its
    /// wire bytes), so unlike the other opt-in layers it participates
    /// in [`semantics_eq`](EngineConfig::semantics_eq).
    #[serde(default)]
    pub provenance: bool,
}

fn default_vectorize() -> bool {
    true
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            mode: Mode::ContextAware,
            sharing: true,
            redundant_derivation: true,
            baseline_pushdown: true,
            reorder_slack: 0,
            collect_outputs: false,
            ns_per_tick: 1_000_000, // 1 tick = 1 simulated millisecond
            gc_every: 60,
            batch: BatchPolicy::default(),
            vectorize: default_vectorize(),
            observability: ObservabilityLevel::Off,
            consistency: Consistency::Strict,
            provenance: false,
        }
    }
}

impl EngineConfig {
    /// Starts building a configuration from the defaults.
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// Turns this configuration back into a builder (tweak a preset).
    #[must_use]
    pub fn to_builder(self) -> EngineConfigBuilder {
        EngineConfigBuilder { config: self }
    }

    /// Equality of every result-affecting knob. The batch policy, the
    /// vectorize switch, the observability level and the consistency
    /// level are excluded: they change dispatch granularity, evaluation
    /// strategy, recording and output latency, never settled results,
    /// so snapshots taken by batched / vectorized / instrumented /
    /// speculative and plain runs are interchangeable (a WAL written
    /// by one replays into the other; a speculative engine settles
    /// before snapshotting, so its state is a strict state).
    #[must_use]
    pub fn semantics_eq(&self, other: &Self) -> bool {
        Self {
            batch: other.batch,
            vectorize: other.vectorize,
            observability: other.observability,
            consistency: other.consistency,
            ..*self
        } == *other
    }
}

/// Builder for [`EngineConfig`] — the only way to construct a
/// non-default configuration outside this crate (the struct is
/// `#[non_exhaustive]`). Every setter mirrors one config field.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Context-aware (CAESAR) or context-independent (baseline).
    #[must_use]
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Execute shared workloads once (see [`EngineConfig::sharing`]).
    #[must_use]
    pub fn sharing(mut self, sharing: bool) -> Self {
        self.config.sharing = sharing;
        self
    }

    /// Baseline private re-derivation
    /// (see [`EngineConfig::redundant_derivation`]).
    #[must_use]
    pub fn redundant_derivation(mut self, enabled: bool) -> Self {
        self.config.redundant_derivation = enabled;
        self
    }

    /// Baseline window push-down
    /// (see [`EngineConfig::baseline_pushdown`]).
    #[must_use]
    pub fn baseline_pushdown(mut self, enabled: bool) -> Self {
        self.config.baseline_pushdown = enabled;
        self
    }

    /// Distributor disorder tolerance in ticks
    /// (see [`EngineConfig::reorder_slack`]).
    #[must_use]
    pub fn reorder_slack(mut self, slack: Time) -> Self {
        self.config.reorder_slack = slack;
        self
    }

    /// Simulated nanoseconds per application tick
    /// (see [`EngineConfig::ns_per_tick`]).
    #[must_use]
    pub fn ns_per_tick(mut self, ns: u64) -> Self {
        self.config.ns_per_tick = ns;
        self
    }

    /// Garbage-collection period in ticks
    /// (see [`EngineConfig::gc_every`]).
    #[must_use]
    pub fn gc_every(mut self, ticks: Time) -> Self {
        self.config.gc_every = ticks;
        self
    }

    /// Keep every output event in memory
    /// (see [`EngineConfig::collect_outputs`]).
    #[must_use]
    pub fn collect_outputs(mut self, collect: bool) -> Self {
        self.config.collect_outputs = collect;
        self
    }

    /// Batch formation policy of the hot path
    /// (see [`EngineConfig::batch`]).
    #[must_use]
    pub fn batch(mut self, policy: BatchPolicy) -> Self {
        self.config.batch = policy;
        self
    }

    /// Vectorized kernel evaluation on the batch path
    /// (see [`EngineConfig::vectorize`]).
    #[must_use]
    pub fn vectorize(mut self, vectorize: bool) -> Self {
        self.config.vectorize = vectorize;
        self
    }

    /// Observability level (see [`EngineConfig::observability`]).
    #[must_use]
    pub fn observability(mut self, level: ObservabilityLevel) -> Self {
        self.config.observability = level;
        self
    }

    /// Consistency level (see [`EngineConfig::consistency`]).
    #[must_use]
    pub fn consistency(mut self, level: Consistency) -> Self {
        self.config.consistency = level;
        self
    }

    /// Match provenance collection (see [`EngineConfig::provenance`]).
    #[must_use]
    pub fn provenance(mut self, enabled: bool) -> Self {
        self.config.provenance = enabled;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Result of a stream run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Input events processed.
    pub events_in: u64,
    /// Output (derived) events produced.
    pub events_out: u64,
    /// Context transitions applied.
    pub transitions_applied: u64,
    /// Per-derived-type output counts, by type name.
    pub outputs_by_type: BTreeMap<String, u64>,
    /// Maximum queueing-model latency (ns).
    pub max_latency_ns: u64,
    /// Average queueing-model latency (ns).
    pub avg_latency_ns: u64,
    /// Wall-clock processing time of the whole run.
    pub wall_time: Duration,
    /// Combined plans fed / suspended (router accounting).
    pub plans_fed: u64,
    /// Combined plans skipped while their context was inactive.
    pub plans_suspended: u64,
    /// Peak live partial matches across all partitions (memory proxy).
    pub peak_partials: usize,
    /// Structured metrics recorded by the observability layer. Mostly
    /// empty when the engine ran with [`ObservabilityLevel::Off`]
    /// (the per-operator / per-query / per-context accounting is always
    /// populated — the operators count unconditionally).
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Maximum latency in seconds.
    #[must_use]
    pub fn max_latency_secs(&self) -> f64 {
        self.max_latency_ns as f64 / 1e9
    }

    /// Output count of one derived type.
    #[must_use]
    pub fn outputs_of(&self, type_name: &str) -> u64 {
        self.outputs_by_type.get(type_name).copied().unwrap_or(0)
    }
}

/// A snapshot of every live field of an [`Engine`], taken by
/// [`Engine::snapshot_state`] and applied by [`Engine::restore_state`].
/// The only runtime field not captured is the wall-clock `started`
/// instant, which is meaningless across process boundaries; a restored
/// engine restarts its wall clock on the first post-restore ingest while
/// keeping the accumulated `busy` time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineState {
    /// Configuration the snapshot was taken under (checked on restore).
    pub config: EngineConfig,
    table: ContextTable,
    template: ProgramTemplate,
    default_bit: u8,
    partitions: BTreeMap<u32, PartitionPrograms>,
    scheduler: TimeDrivenScheduler,
    router: Router,
    clock: ArrivalClock,
    latency: LatencyTracker,
    type_names: BTreeMap<TypeId, String>,
    outputs_by_type: BTreeMap<TypeId, u64>,
    inputs_by_type: BTreeMap<TypeId, u64>,
    events_in: u64,
    events_out: u64,
    transitions_applied: u64,
    peak_partials: usize,
    last_gc: Time,
    busy: Duration,
    reorder: Option<ReorderBuffer>,
    late_dropped: u64,
    collected_outputs: Vec<Event>,
}

impl EngineState {
    /// Input events the snapshotted engine had ingested — the stream
    /// position a recovery log must replay from.
    #[must_use]
    pub fn events_in(&self) -> u64 {
        self.events_in
    }
}

/// Why a snapshot cannot be restored into a particular engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The engine was built with a different configuration.
    ConfigMismatch,
    /// The snapshot's program has a different number of plans — it was
    /// taken from a different model or optimizer setting.
    ProgramMismatch {
        /// Plans in the running engine's template.
        expected: usize,
        /// Plans in the snapshot's template.
        found: usize,
    },
    /// The snapshot's context table has a different width.
    ContextMismatch {
        /// Context count of the running engine.
        expected: usize,
        /// Context count of the snapshot.
        found: usize,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::ConfigMismatch => {
                write!(
                    f,
                    "snapshot was taken under a different engine configuration"
                )
            }
            RestoreError::ProgramMismatch { expected, found } => write!(
                f,
                "snapshot program has {found} plans, engine expects {expected} \
                 (different model or optimizer settings?)"
            ),
            RestoreError::ContextMismatch { expected, found } => write!(
                f,
                "snapshot has {found} context types, engine expects {expected}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// The CAESAR execution engine.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    table: ContextTable,
    template: ProgramTemplate,
    default_bit: u8,
    /// Per-partition cloned programs, keyed by (sparse) partition id.
    /// Iteration is in ascending id order, which every partition walk
    /// below relies on for deterministic output and snapshot bytes.
    partitions: BTreeMap<u32, PartitionPrograms>,
    scheduler: TimeDrivenScheduler,
    router: Router,
    clock: ArrivalClock,
    latency: LatencyTracker,
    type_names: BTreeMap<TypeId, String>,
    outputs_by_type: BTreeMap<TypeId, u64>,
    inputs_by_type: BTreeMap<TypeId, u64>,
    events_in: u64,
    events_out: u64,
    transitions_applied: u64,
    peak_partials: usize,
    last_gc: Time,
    started: Option<Instant>,
    busy: Duration,
    reorder: Option<ReorderBuffer>,
    /// The observability recorder (gated by `config.observability`).
    /// Deliberately not part of [`EngineState`]: metrics describe a
    /// process, not the stream computation, so recovery restarts them.
    obs: MetricsRegistry,
    /// Events dropped because they arrived later than the reorder slack.
    pub late_dropped: u64,
    /// Output events retained when `collect_outputs` is set. Under
    /// [`Consistency::Speculative`] these are the *settled* outputs —
    /// identical to a strict run; the speculative emissions and
    /// retractions land in [`collected_records`](Self::collected_records).
    pub collected_outputs: Vec<Event>,
    /// The speculative overlay (`Some` exactly when the configuration's
    /// consistency is [`Consistency::Speculative`]). Deliberately not
    /// part of [`EngineState`]: checkpoints force a settle first, so a
    /// snapshot is always a strict state.
    speculation: Option<Box<Speculation>>,
    /// When `Some`, [`account_outputs`](Self::account_outputs) also
    /// copies produced outputs here — the speculative overlay installs
    /// this buffer around settlement to learn which books entries the
    /// settled core just confirmed.
    spec_capture: Option<Vec<Event>>,
    /// Speculative output records (emissions and retractions, in
    /// emission order) retained when `collect_outputs` is set and the
    /// consistency level is [`Consistency::Speculative`]. Folding the
    /// records (cancelling retractions) yields `collected_outputs`.
    pub collected_records: Vec<OutputRecord>,
    /// Output events emitted speculatively (includes re-emissions).
    pub spec_emits: u64,
    /// Retraction records emitted.
    pub spec_retractions: u64,
    /// Revision passes forced by late (within-slack) arrivals.
    pub spec_rebuilds: u64,
}

impl Engine {
    /// Builds an engine from an optimized program. `registry` must be the
    /// registry the program was translated against (it names the derived
    /// types in reports).
    #[must_use]
    pub fn new(
        mut program: OptimizedProgram,
        registry: &SchemaRegistry,
        config: EngineConfig,
    ) -> Self {
        let sharing = if config.sharing {
            program.sharing.clone()
        } else {
            Vec::new()
        };
        if config.provenance {
            // Flip every pattern into timestamp-collecting mode before
            // the template is built (per-partition programs are cloned
            // from it, so the flag propagates everywhere).
            for combined in &mut program.translation.combined {
                for plan in &mut combined.plans {
                    for op in &mut plan.ops {
                        if let caesar_algebra::Op::Pattern(p) = op {
                            p.set_collect_provenance(true);
                        }
                    }
                }
            }
        }
        let template = ProgramTemplate::build_with(
            program.translation.combined,
            &sharing,
            config.mode,
            config.baseline_pushdown,
            program.share_prefixes,
        );
        let default_bit = program.translation.default_bit;
        let table = ContextTable::new(program.translation.context_names.len(), default_bit);
        let type_names = registry
            .iter()
            .map(|(id, s)| (id, s.name.to_string()))
            .collect();
        let mut engine = Self {
            clock: ArrivalClock::new(config.ns_per_tick),
            obs: MetricsRegistry::new(config.observability),
            config,
            table,
            template,
            default_bit,
            partitions: BTreeMap::new(),
            scheduler: TimeDrivenScheduler::new(),
            router: Router::new(),
            latency: LatencyTracker::new(),
            type_names,
            outputs_by_type: BTreeMap::new(),
            inputs_by_type: BTreeMap::new(),
            events_in: 0,
            events_out: 0,
            transitions_applied: 0,
            peak_partials: 0,
            last_gc: 0,
            started: None,
            busy: Duration::ZERO,
            reorder: if config.reorder_slack > 0 {
                Some(ReorderBuffer::new(config.reorder_slack))
            } else {
                None
            },
            late_dropped: 0,
            collected_outputs: Vec::new(),
            speculation: None,
            spec_capture: None,
            collected_records: Vec::new(),
            spec_emits: 0,
            spec_retractions: 0,
            spec_rebuilds: 0,
        };
        engine.init_speculation();
        engine
    }

    /// Read access to the context table (tests, introspection).
    #[must_use]
    pub fn context_table(&self) -> &ContextTable {
        &self.table
    }

    /// The configuration the engine was built with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Input events ingested so far (the stream position a recovery log
    /// pairs with a checkpoint).
    #[must_use]
    pub fn events_in(&self) -> u64 {
        self.events_in
    }

    /// Captures every live field into a serializable [`EngineState`].
    /// Restoring the state into a freshly built engine and replaying the
    /// post-snapshot suffix of the stream reproduces the uninterrupted
    /// run exactly (same outputs, same counters) — only wall-clock
    /// metrics differ.
    ///
    /// Speculative state (the overlay fork, its unsettled suffix, the
    /// outstanding emitted-output books) is *excluded* by design: call
    /// [`settle`](Self::settle) first so the snapshot is a plain strict
    /// state (the checkpoint protocol does this for you).
    #[must_use]
    pub fn snapshot_state(&self) -> EngineState {
        debug_assert!(
            self.speculation_settled(),
            "snapshot of a speculative engine requires settle() first"
        );
        EngineState {
            config: self.config,
            table: self.table.clone(),
            template: self.template.clone(),
            default_bit: self.default_bit,
            partitions: self.partitions.clone(),
            scheduler: self.scheduler.clone(),
            router: self.router.clone(),
            clock: self.clock,
            latency: self.latency.clone(),
            type_names: self.type_names.clone(),
            outputs_by_type: self.outputs_by_type.clone(),
            inputs_by_type: self.inputs_by_type.clone(),
            events_in: self.events_in,
            events_out: self.events_out,
            transitions_applied: self.transitions_applied,
            peak_partials: self.peak_partials,
            last_gc: self.last_gc,
            busy: self.busy,
            reorder: self.reorder.clone(),
            late_dropped: self.late_dropped,
            collected_outputs: self.collected_outputs.clone(),
        }
    }

    /// Replaces the engine's live state with a snapshot.
    ///
    /// The engine must have been built from the same model, optimizer
    /// settings and [`EngineConfig`] as the snapshotted one — verified
    /// structurally (config equality, plan count, context-table width)
    /// before anything is overwritten, so a failed restore leaves the
    /// engine untouched.
    pub fn restore_state(&mut self, state: EngineState) -> Result<(), RestoreError> {
        if !state.config.semantics_eq(&self.config) {
            return Err(RestoreError::ConfigMismatch);
        }
        let expected_plans = self.template.plan_count();
        let found_plans = state.template.plan_count();
        if expected_plans != found_plans {
            return Err(RestoreError::ProgramMismatch {
                expected: expected_plans,
                found: found_plans,
            });
        }
        if state.table.num_contexts() != self.table.num_contexts() {
            return Err(RestoreError::ContextMismatch {
                expected: self.table.num_contexts(),
                found: state.table.num_contexts(),
            });
        }
        self.table = state.table;
        self.template = state.template;
        self.default_bit = state.default_bit;
        self.partitions = state.partitions;
        self.scheduler = state.scheduler;
        self.router = state.router;
        self.clock = state.clock;
        self.latency = state.latency;
        self.type_names = state.type_names;
        self.outputs_by_type = state.outputs_by_type;
        self.inputs_by_type = state.inputs_by_type;
        self.events_in = state.events_in;
        self.events_out = state.events_out;
        self.transitions_applied = state.transitions_applied;
        self.peak_partials = state.peak_partials;
        self.last_gc = state.last_gc;
        self.busy = state.busy;
        self.reorder = state.reorder;
        self.late_dropped = state.late_dropped;
        self.collected_outputs = state.collected_outputs;
        self.started = None;
        // Speculative state is never part of a snapshot: the restored
        // engine starts over with an empty overlay forked off the
        // restored (strict) state.
        self.collected_records.clear();
        self.spec_emits = 0;
        self.spec_retractions = 0;
        self.spec_rebuilds = 0;
        self.init_speculation();
        Ok(())
    }

    /// The statistics gatherer (Figure 8): folds every partition's
    /// operator counters into [`Observations`], from which
    /// [`Observations::to_stats`] produces cost-model statistics for
    /// re-optimization with observed rates, activities and
    /// selectivities.
    #[must_use]
    pub fn gather_stats(&self) -> Observations {
        let mut obs = Observations {
            inputs_by_type: self.inputs_by_type.clone(),
            progress: self.scheduler.progress(),
            ..Observations::default()
        };
        for programs in self.partitions.values() {
            for plan in &programs.deriving {
                obs.visit_plan(plan);
            }
            for combined in &programs.processing {
                for plan in &combined.plans {
                    obs.visit_plan(plan);
                }
            }
        }
        obs
    }

    /// Ingests an event or a same-timestamp batch — the canonical
    /// entrypoint; anything `Into<EventBatch>` (an [`Event`], an
    /// [`EventBatch`]) is accepted. Transactions whose timestamp the
    /// progress watermark passed are executed immediately.
    ///
    /// # Ordering semantics
    ///
    /// Input must be in non-decreasing timestamp order across calls
    /// (`EventError::OutOfOrder` otherwise) — unless the engine was
    /// built with `reorder_slack > 0`, in which case input first passes
    /// the distributor's bounded reordering buffer: disorder within the
    /// slack is repaired, events later than the slack are dropped
    /// (counted in `late_dropped`) instead of corrupting context state.
    /// A multi-event batch must be same-timestamp (its events form one
    /// stream transaction per partition); batching never changes
    /// results, only dispatch granularity.
    pub fn ingest(&mut self, input: impl Into<EventBatch>) -> Result<(), EventError> {
        let mut batch: EventBatch = input.into();
        match batch.events.len() {
            0 => Ok(()),
            // A one-event batch takes the per-event path: same
            // semantics, no batch bookkeeping.
            1 => {
                let event = batch.events.pop().expect("len checked");
                self.ingest_event(event)
            }
            _ => self.ingest_batch_impl(batch),
        }
    }

    /// Deprecated alias of [`ingest`](Self::ingest), which now accepts
    /// batches directly.
    #[deprecated(note = "use `ingest`, which accepts any `Into<EventBatch>`")]
    pub fn ingest_batch(&mut self, batch: EventBatch) -> Result<(), EventError> {
        self.ingest(batch)
    }

    /// Deprecated alias of [`ingest`](Self::ingest), which handles
    /// in-order and reorder-buffered input alike.
    #[deprecated(note = "use `ingest`; ordering is enforced (or repaired) there")]
    pub fn ingest_ordered(&mut self, event: Event) -> Result<(), EventError> {
        self.ingest(event)
    }

    fn ingest_event(&mut self, event: Event) -> Result<(), EventError> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        let span = self.obs.span_start();
        self.obs.inc(CounterId::EventsIngested);
        if self.speculation.is_some() {
            let result = self.ingest_speculative(event);
            self.obs.span_end(Stage::Distributor, span);
            return result;
        }
        let result = if let Some(mut reorder) = self.reorder.take() {
            let reorder_span = self.obs.span_start();
            let result = reorder.push(event);
            self.obs.span_end(Stage::Reorder, reorder_span);
            self.late_dropped = reorder.late_dropped;
            self.reorder = Some(reorder);
            match result {
                Ok(ready) => {
                    let mut outcome = Ok(());
                    for e in ready {
                        outcome = self.ingest_one_ordered(e);
                        if outcome.is_err() {
                            break;
                        }
                    }
                    outcome
                }
                Err(_late) => Ok(()), // dropped and counted
            }
        } else {
            self.ingest_one_ordered(event)
        };
        self.obs.span_end(Stage::Distributor, span);
        result
    }

    fn ingest_one_ordered(&mut self, event: Event) -> Result<(), EventError> {
        self.events_in += 1;
        *self.inputs_by_type.entry(event.type_id).or_insert(0) += 1;
        let span = self.obs.span_start();
        let before = self.scheduler.progress();
        self.scheduler.ingest(event)?;
        let progress = self.scheduler.progress();
        // Release is strictly-below-progress and the previous ingest
        // already drained everything below `before`, so mid-run (same
        // timestamp) the release scan would find nothing — skip it.
        if progress > before {
            let ready = self.scheduler.release(progress);
            self.obs.span_end(Stage::Scheduler, span);
            for txn in ready {
                self.execute(txn);
            }
        } else {
            self.obs.span_end(Stage::Scheduler, span);
        }
        Ok(())
    }

    /// One reorder-buffer lateness check, one scheduler progress check
    /// and — when progress actually advanced — one release scan for the
    /// whole same-timestamp batch.
    fn ingest_batch_impl(&mut self, batch: EventBatch) -> Result<(), EventError> {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
        let span = self.obs.span_start();
        self.obs.inc(CounterId::BatchesIngested);
        self.obs.add(CounterId::EventsIngested, batch.len() as u64);
        if self.speculation.is_some() {
            // The speculative overlay revises per arrival; feeding the
            // batch event-by-event is equivalent (the scheduler re-groups
            // same-(partition, time) runs into one transaction anyway).
            let mut outcome = Ok(());
            for event in batch.events {
                outcome = self.ingest_speculative(event);
                if outcome.is_err() {
                    break;
                }
            }
            self.obs.span_end(Stage::Distributor, span);
            return outcome;
        }
        let result = if let Some(mut reorder) = self.reorder.take() {
            let reorder_span = self.obs.span_start();
            let result = reorder.push_batch(batch);
            self.obs.span_end(Stage::Reorder, reorder_span);
            self.late_dropped = reorder.late_dropped;
            self.reorder = Some(reorder);
            match result {
                Ok(ready) => self.ingest_ordered_run(ready),
                Err(_late) => Ok(()), // dropped and counted
            }
        } else {
            self.ingest_ordered_batch(batch)
        };
        self.obs.span_end(Stage::Distributor, span);
        result
    }

    /// Re-groups an in-order event run (e.g. a reorder-buffer release,
    /// which may span timestamps) into same-timestamp batches and
    /// ingests them.
    fn ingest_ordered_run(&mut self, events: Vec<Event>) -> Result<(), EventError> {
        let mut iter = events.into_iter().peekable();
        while let Some(first) = iter.next() {
            let t = first.time();
            let mut run = vec![first];
            while let Some(e) = iter.next_if(|e| e.time() == t) {
                run.push(e);
            }
            self.ingest_ordered_batch(EventBatch::new(t, run))?;
        }
        Ok(())
    }

    fn ingest_ordered_batch(&mut self, batch: EventBatch) -> Result<(), EventError> {
        self.events_in += batch.len() as u64;
        for e in &batch.events {
            *self.inputs_by_type.entry(e.type_id).or_insert(0) += 1;
        }
        let span = self.obs.span_start();
        let before = self.scheduler.progress();
        self.scheduler.ingest_batch(batch)?;
        let progress = self.scheduler.progress();
        // Release is strictly-below-progress and the previous call
        // already drained everything below `before`, so when progress
        // did not move the O(partitions) release scan finds nothing —
        // skip it.
        if progress > before {
            let ready = self.scheduler.release(progress);
            self.obs.span_end(Stage::Scheduler, span);
            for txn in ready {
                self.execute(txn);
            }
        } else {
            self.obs.span_end(Stage::Scheduler, span);
        }
        Ok(())
    }

    /// Flushes all buffered transactions (end of stream) and returns the
    /// run report. Under [`Consistency::Speculative`] the record stream
    /// first receives the overlay's trailing emissions, then everything
    /// unsettled settles — the report (and `collected_outputs`) is the
    /// strict run's.
    pub fn finish(&mut self) -> RunReport {
        if self.speculation.is_some() {
            return self.finish_speculative();
        }
        self.finish_strict()
    }

    fn finish_strict(&mut self) -> RunReport {
        if let Some(mut reorder) = self.reorder.take() {
            for e in reorder.flush() {
                let _ = self.ingest_one_ordered(e);
            }
            self.reorder = Some(reorder);
        }
        let remaining = self.scheduler.flush();
        for txn in remaining {
            self.execute(txn);
        }
        // Final watermark push: flush matured trailing negations, prune.
        let final_mark = self.scheduler.progress().saturating_add(1_000_000);
        let mut out = PlanOutput::default();
        for programs in self.partitions.values_mut() {
            programs.advance_time(final_mark, &self.table, &mut out);
        }
        self.account_outputs(&out);
        self.report()
    }

    /// Convenience: runs an entire stream through the engine.
    ///
    /// Events go into the scheduler one at a time regardless of the
    /// batch policy: the scheduler's queues re-group every
    /// same-(partition, timestamp) run into one transaction anyway, so
    /// materializing intermediate [`caesar_events::BatchedStream`]
    /// chunks buys the sequential path nothing (it matters where batches cross a
    /// boundary, e.g. the sharded distributor's channel sends). The
    /// batch policy takes effect at transaction execution, where dense
    /// runs dispatch onto the batch fast paths.
    pub fn run_stream(&mut self, stream: &mut dyn EventStream) -> Result<RunReport, EventError> {
        while let Some(event) = stream.next_event() {
            self.ingest_event(event)?;
        }
        Ok(self.finish())
    }

    /// Executes one stream transaction: derivation, transition
    /// application (with context-history maintenance), routing,
    /// processing, watermark advance, GC.
    fn execute(&mut self, txn: StreamTransaction) {
        let service_start = Instant::now();
        let t = txn.time;
        let partition = txn.partition;

        // Detach this partition's programs for the duration of the
        // transaction (they need `&mut` alongside reads of the context
        // table); re-inserted below after the watermark advance.
        let mut programs = self
            .partitions
            .remove(&partition.0)
            .unwrap_or_else(|| PartitionPrograms::from_template(&self.template));

        let mut out = PlanOutput::default();
        // Transactions below the policy's size floor take the per-event
        // operator paths: the batch fast path's setup (selection
        // vectors, columnar views) is pure overhead on sparse streams.
        let batched =
            self.config.batch.enabled && txn.batch.len() >= self.config.batch.min_events.max(1);
        self.obs.inc(CounterId::TransactionsExecuted);
        if batched {
            self.obs.inc(CounterId::BatchedTransactions);
        }
        self.obs.observe_batch_size(txn.batch.len() as u64);
        // Columnar views over the transaction, built lazily per event
        // type on first kernel use and shared by every plan.
        let mut cols = ColumnarBatch::new(&txn.batch.events, self.config.vectorize);

        // Baseline overhead: per-query private re-derivation.
        if self.config.mode == Mode::ContextIndependent && self.config.redundant_derivation {
            if batched {
                programs.run_redundant_derivation_batch(&mut cols, &self.table);
            } else {
                programs.run_redundant_derivation(&txn.batch.events, &self.table);
            }
        }

        // Phase 1: context derivation (before any processing at t).
        let span = self.obs.span_start();
        let transitions = if batched {
            programs.run_derivation_batch(&mut cols, &self.table)
        } else {
            programs.run_derivation(&txn.batch.events, &self.table, &mut out)
        };
        self.obs.span_end(Stage::Derivation, span);
        let span = self.obs.span_start();
        // Windows closing at time t still admit events carrying exactly
        // t (`(t_i, t_t]`, Definition 1), so the closing plans' state
        // must survive until this transaction's processing phase is
        // done: collect the context bits to reset, apply them after
        // `run_processing`.
        let mut closed_bits: Vec<u8> = Vec::new();
        for transition in transitions {
            debug_assert_eq!(transition.partition, partition);
            // CI_c removes the default window as a side effect (§4.1)
            // without emitting a Terminate — the default context's plans
            // must still discard their window-scoped state.
            let default_was_open = transition.kind == TransitionKind::Initiate
                && transition.context_bit != self.default_bit
                && self.table.holds(partition, self.default_bit);
            self.table.apply(transition);
            self.transitions_applied += 1;
            if transition.kind == TransitionKind::Terminate {
                closed_bits.push(transition.context_bit);
            } else if default_was_open && !self.table.holds(partition, self.default_bit) {
                closed_bits.push(self.default_bit);
            }
        }
        self.obs.span_end(Stage::Transitions, span);

        // Phase 2: context-aware routing + processing. Routing is one
        // decision per transaction in either mode; the batch path also
        // evaluates each active plan once over the whole event slice.
        let span = self.obs.span_start();
        let active =
            self.router
                .select_batch(&programs, partition, t, &self.table, txn.batch.len() as u64);
        self.obs.span_end(Stage::Router, span);
        self.obs.tick_contexts(&active, programs.processing.len());
        let span = self.obs.span_start();
        if batched {
            programs.run_processing_batch(&mut cols, &self.table, &active, &mut out);
        } else {
            programs.run_processing(&txn.batch.events, &self.table, &active, &mut out);
        }
        self.obs.span_end(Stage::Processing, span);

        // Deferred context-history maintenance for windows that closed
        // in this transaction (their last admissible events were just
        // processed).
        closed_bits.dedup();
        for bit in closed_bits {
            programs.on_context_terminated(bit, partition, &self.table);
        }

        // Watermark: all events with time < t+1 of this partition seen.
        let span = self.obs.span_start();
        programs.advance_time(t, &self.table, &mut out);
        self.obs.span_end(Stage::AdvanceTime, span);

        self.peak_partials = self.peak_partials.max(programs.live_partials());
        self.partitions.insert(partition.0, programs);

        // Storage-layer garbage collection.
        if t.saturating_sub(self.last_gc) >= self.config.gc_every {
            self.table.collect_garbage(t);
            self.last_gc = t;
            self.obs.inc(CounterId::GcRuns);
        }

        self.account_outputs(&out);

        let service = service_start.elapsed();
        self.busy += service;
        let latency_ns = self
            .latency
            .record(self.clock.arrival_ns(t), service.as_nanos() as u64);
        self.obs.observe_latency_ns(latency_ns);
    }

    fn account_outputs(&mut self, out: &PlanOutput) {
        self.events_out += out.events.len() as u64;
        for e in &out.events {
            *self.outputs_by_type.entry(e.type_id).or_insert(0) += 1;
        }
        if self.config.collect_outputs {
            self.collected_outputs.extend(out.events.iter().cloned());
        }
        if let Some(capture) = self.spec_capture.as_mut() {
            capture.extend(out.events.iter().cloned());
        }
    }

    /// The current observability snapshot: the registry's counters and
    /// histograms, the scheduler's peak queue depth, and a walk of
    /// every partition's operator counters into per-operator, per-query
    /// and per-context-window accounting. The operator walk is always
    /// populated (operators count unconditionally); counters,
    /// histograms, ticks and spans honour the configured
    /// [`ObservabilityLevel`].
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.obs.snapshot();
        snap.queue_depth_peak = self.scheduler.peak_queue_depth() as u64;
        // Context-bit → name map from the template's plans (bits with
        // no named plan render as `bit<n>`).
        let mut names: BTreeMap<u8, &str> = BTreeMap::new();
        for combined in &self.template.processing {
            names
                .entry(combined.context_bit)
                .or_insert(&combined.context);
        }
        for plan in &self.template.deriving {
            names.entry(plan.context_bit).or_insert(&plan.context);
        }
        let context_name = |bit: u8| {
            names
                .get(&bit)
                .map_or_else(|| format!("bit{bit}"), ToString::to_string)
        };
        for programs in self.partitions.values() {
            let processing = programs.processing.iter().flat_map(|c| c.plans.iter());
            for plan in programs.deriving.iter().chain(processing) {
                let query = plan.query_id.to_string();
                let mut chain_in: Option<u64> = None;
                let mut chain_out = 0;
                let mut kernel_rows = 0;
                let mut fallback_rows = 0;
                for (i, op) in plan.ops.iter().enumerate() {
                    let Some(o) = op.observation() else { continue };
                    let m = snap
                        .operators
                        .entry(format!("{query}/{i}:{}", o.kind))
                        .or_default();
                    m.events_in += o.events_in;
                    m.events_out += o.events_out;
                    m.kernel_rows += o.kernel_rows;
                    m.fallback_rows += o.fallback_rows;
                    m.errors += o.errors;
                    chain_in.get_or_insert(o.events_in);
                    chain_out = o.events_out;
                    kernel_rows += o.kernel_rows;
                    fallback_rows += o.fallback_rows;
                    if let caesar_algebra::ops::Op::ContextWindow(cw) = op {
                        let c = snap
                            .contexts
                            .entry(context_name(cw.context_bit))
                            .or_default();
                        c.events_admitted += cw.admitted;
                        c.events_dropped += cw.dropped;
                    }
                }
                let q = snap.queries.entry(query).or_default();
                q.events_in += chain_in.unwrap_or(0);
                q.matches_out += chain_out;
                q.kernel_rows += kernel_rows;
                q.fallback_rows += fallback_rows;
            }
        }
        // Suspended-vs-active ticks from the router accounting, indexed
        // like the template's combined plans.
        for (idx, &(active, suspended)) in self.obs.context_ticks().iter().enumerate() {
            if let Some(combined) = self.template.processing.get(idx) {
                let c = snap.contexts.entry(combined.context.clone()).or_default();
                c.active_ticks += active;
                c.suspended_ticks += suspended;
            }
        }
        // Partial-pool efficacy (the slabs count unconditionally; the
        // counters honour the level like every other counter): total
        // free-list reuses and the partial-slab high-water mark across
        // all partitions.
        if self.obs.counters_enabled() {
            let (reused, peak) = self
                .partitions
                .values()
                .map(crate::programs::PartitionPrograms::pool_stats)
                .fold((0u64, 0usize), |(r, p), (pr, pp)| (r + pr, p.max(pp)));
            snap.counters.insert("spec_pool_reuse".into(), reused);
            snap.counters.insert("partials_peak".into(), peak as u64);
        }
        snap
    }

    fn report(&self) -> RunReport {
        RunReport {
            metrics: self.metrics_snapshot(),
            events_in: self.events_in,
            events_out: self.events_out,
            transitions_applied: self.transitions_applied,
            outputs_by_type: self
                .outputs_by_type
                .iter()
                .map(|(tid, n)| {
                    (
                        self.type_names
                            .get(tid)
                            .cloned()
                            .unwrap_or_else(|| tid.to_string()),
                        *n,
                    )
                })
                .collect(),
            max_latency_ns: self.latency.max_latency_ns,
            avg_latency_ns: self.latency.avg_latency_ns(),
            wall_time: self.started.map_or(Duration::ZERO, |_| self.busy),
            plans_fed: self.router.plans_fed,
            plans_suspended: self.router.plans_suspended,
            peak_partials: self.peak_partials,
        }
    }
}

/// Builds, optimizes and runs a model against a stream in one call —
/// the simplest end-to-end entry point (the facade crate re-exports a
/// richer builder).
pub fn run_model(
    model: &caesar_query::model::CaesarModel,
    registry: &mut SchemaRegistry,
    optimizer: &caesar_optimizer::Optimizer,
    config: EngineConfig,
    stream: &mut dyn EventStream,
) -> Result<RunReport, Box<dyn std::error::Error>> {
    let query_set = caesar_query::queryset::QuerySet::from_model(model)?;
    let translation = caesar_algebra::translate::translate_query_set(
        &query_set,
        registry,
        &caesar_algebra::translate::TranslateOptions::default(),
    )?;
    let program = optimizer.optimize(translation, registry);
    let mut engine = Engine::new(program, registry, config);
    Ok(engine.run_stream(stream)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, PartitionId, Schema, Value, VecStream};
    use caesar_optimizer::{Optimizer, OptimizerConfig};
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    const TRAFFIC: &str = r#"
        MODEL traffic DEFAULT clear
        CONTEXT clear {
            SWITCH CONTEXT congestion PATTERN ManySlowCars
        }
        CONTEXT congestion {
            SWITCH CONTEXT clear PATTERN FewFastCars
            DERIVE TollNotification(p.vid, p.sec, 5) PATTERN PositionReport p
                WHERE p.lane != "exit"
        }
    "#;

    pub(super) fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        ))
        .unwrap();
        reg.register(Schema::new("ManySlowCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("FewFastCars", &[("seg", AttrType::Int)]))
            .unwrap();
        reg
    }

    fn build_engine(mode: Mode) -> (Engine, SchemaRegistry) {
        let model = parse_model(TRAFFIC).unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = registry();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        let cfg = if mode == Mode::ContextAware {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::unoptimized()
        };
        let program = Optimizer::new(cfg, Default::default()).optimize(t, &reg);
        let engine = Engine::new(
            program,
            &reg,
            EngineConfig {
                mode,
                ..EngineConfig::default()
            },
        );
        (engine, reg)
    }

    pub(super) fn pr(reg: &SchemaRegistry, t: Time, vid: i64, lane: &str, p: u32) -> Event {
        Event::simple(
            reg.lookup("PositionReport").unwrap(),
            t,
            PartitionId(p),
            vec![Value::Int(vid), Value::Int(t as i64), Value::str(lane)],
        )
    }

    pub(super) fn marker(reg: &SchemaRegistry, ty: &str, t: Time, p: u32) -> Event {
        Event::simple(
            reg.lookup(ty).unwrap(),
            t,
            PartitionId(p),
            vec![Value::Int(0)],
        )
    }

    #[test]
    fn snapshot_restore_round_trip_mid_context() {
        // Snapshot while a congestion window is open (live context bits,
        // open pattern state): a fresh engine restored from the encoded
        // snapshot must finish the stream exactly like the original.
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        engine.ingest(pr(&reg, 1, 1, "travel", 0)).unwrap();
        engine.ingest(marker(&reg, "ManySlowCars", 5, 0)).unwrap();
        engine.ingest(pr(&reg, 6, 2, "travel", 0)).unwrap();

        let bytes = serde::to_bytes(&engine.snapshot_state());
        let state: EngineState = serde::from_bytes(&bytes).unwrap();
        let (mut restored, _) = build_engine(Mode::ContextAware);
        restored.restore_state(state).unwrap();
        assert_eq!(restored.events_in(), 3);

        for target in [&mut engine, &mut restored] {
            target.ingest(pr(&reg, 7, 3, "exit", 0)).unwrap();
            target.ingest(marker(&reg, "FewFastCars", 10, 0)).unwrap();
            target.ingest(pr(&reg, 11, 4, "travel", 0)).unwrap();
        }
        let a = engine.finish();
        let b = restored.finish();
        assert_eq!(a.events_in, b.events_in);
        assert_eq!(a.events_out, b.events_out);
        assert_eq!(a.transitions_applied, b.transitions_applied);
        assert_eq!(a.outputs_by_type, b.outputs_by_type);
        assert_eq!(a.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let built = EngineConfig::builder()
            .mode(Mode::ContextIndependent)
            .sharing(false)
            .redundant_derivation(false)
            .baseline_pushdown(false)
            .reorder_slack(3)
            .ns_per_tick(10)
            .gc_every(7)
            .collect_outputs(true)
            .batch(BatchPolicy::bounded(16))
            .vectorize(false)
            .observability(ObservabilityLevel::Spans)
            .consistency(Consistency::Speculative)
            .build();
        assert_eq!(built.mode, Mode::ContextIndependent);
        assert!(!built.sharing);
        assert!(!built.redundant_derivation);
        assert!(!built.baseline_pushdown);
        assert_eq!(built.reorder_slack, 3);
        assert_eq!(built.ns_per_tick, 10);
        assert_eq!(built.gc_every, 7);
        assert!(built.collect_outputs);
        assert_eq!(built.batch, BatchPolicy::bounded(16));
        assert!(!built.vectorize);
        assert_eq!(built.observability, ObservabilityLevel::Spans);
        assert_eq!(built.consistency, Consistency::Speculative);
        assert_eq!(built.to_builder().build(), built);
        assert_eq!(EngineConfig::builder().build(), EngineConfig::default());
    }

    #[test]
    fn semantics_ignore_observability_level() {
        let instrumented = EngineConfig::builder()
            .observability(ObservabilityLevel::Spans)
            .build();
        assert!(EngineConfig::default().semantics_eq(&instrumented));
        let (engine, _) = build_engine(Mode::ContextAware);
        let state = engine.snapshot_state();
        let (mut other, _) = build_engine_with(Mode::ContextAware, instrumented);
        other.restore_state(state).unwrap();
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let (engine, _) = build_engine(Mode::ContextAware);
        let state = engine.snapshot_state();
        let (mut other, _) = build_engine(Mode::ContextIndependent);
        assert!(matches!(
            other.restore_state(state),
            Err(RestoreError::ConfigMismatch)
        ));
    }

    pub(super) fn build_engine_with(mode: Mode, config: EngineConfig) -> (Engine, SchemaRegistry) {
        let model = parse_model(TRAFFIC).unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = registry();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        let cfg = if mode == Mode::ContextAware {
            OptimizerConfig::default()
        } else {
            OptimizerConfig::unoptimized()
        };
        let program = Optimizer::new(cfg, Default::default()).optimize(t, &reg);
        let engine = Engine::new(program, &reg, EngineConfig { mode, ..config });
        (engine, reg)
    }

    fn mixed_stream(reg: &SchemaRegistry) -> Vec<Event> {
        // Clustered timestamps across two partitions, with a context
        // switch mid-stream so both suspended and active batches occur.
        let mut events = Vec::new();
        for t in 1..40u64 {
            let step = t / 4;
            for p in 0..2u32 {
                events.push(pr(reg, step, (t * 2 + u64::from(p)) as i64, "travel", p));
            }
            if t == 12 {
                events.push(marker(reg, "ManySlowCars", step, 0));
            }
            if t == 28 {
                events.push(marker(reg, "FewFastCars", step, 0));
            }
        }
        events
    }

    #[test]
    fn batched_run_matches_event_at_a_time() {
        for mode in [Mode::ContextAware, Mode::ContextIndependent] {
            let base = EngineConfig {
                collect_outputs: true,
                ..EngineConfig::default()
            };
            // All same-(partition, time) runs hit the batch fast path.
            let eager = BatchPolicy {
                min_events: 1,
                ..BatchPolicy::default()
            };
            let (mut per_event, reg) = build_engine_with(
                mode,
                EngineConfig {
                    batch: BatchPolicy::per_event(),
                    ..base
                },
            );
            let events = mixed_stream(&reg);
            let re = per_event
                .run_stream(&mut VecStream::new(events.clone()))
                .unwrap();
            for vectorize in [true, false] {
                let (mut batched, _) = build_engine_with(
                    mode,
                    EngineConfig {
                        batch: eager,
                        vectorize,
                        ..base
                    },
                );
                let rb = batched
                    .run_stream(&mut VecStream::new(events.clone()))
                    .unwrap();
                let tag = format!("{mode:?} vectorize={vectorize}");
                assert_eq!(rb.events_in, re.events_in, "{tag}");
                assert_eq!(rb.events_out, re.events_out, "{tag}");
                assert_eq!(rb.transitions_applied, re.transitions_applied, "{tag}");
                assert_eq!(rb.outputs_by_type, re.outputs_by_type, "{tag}");
                assert_eq!(rb.plans_fed, re.plans_fed, "{tag}");
                assert_eq!(rb.plans_suspended, re.plans_suspended, "{tag}");
                assert_eq!(rb.peak_partials, re.peak_partials, "{tag}");
                assert_eq!(
                    caesar_events::encode_all(&batched.collected_outputs),
                    caesar_events::encode_all(&per_event.collected_outputs),
                    "{tag}: byte-identical outputs"
                );
            }
        }
    }

    #[test]
    fn batched_reorder_path_matches_per_event() {
        let base = EngineConfig {
            collect_outputs: true,
            reorder_slack: 3,
            ..EngineConfig::default()
        };
        let (mut batched, reg) = build_engine_with(Mode::ContextAware, base);
        let (mut per_event, _) = build_engine_with(
            Mode::ContextAware,
            EngineConfig {
                batch: BatchPolicy::per_event(),
                ..base
            },
        );
        // Disorder within the slack plus a too-late straggler (VecStream
        // rejects unsorted input, so use a raw stream).
        struct Raw(std::vec::IntoIter<Event>);
        impl EventStream for Raw {
            fn next_event(&mut self) -> Option<Event> {
                self.0.next()
            }
        }
        let events = vec![
            pr(&reg, 2, 1, "travel", 0),
            pr(&reg, 1, 2, "travel", 0),
            marker(&reg, "ManySlowCars", 4, 0),
            pr(&reg, 6, 3, "travel", 0),
            pr(&reg, 6, 4, "travel", 1),
            pr(&reg, 9, 5, "travel", 0),
            pr(&reg, 1, 6, "travel", 0), // later than slack: dropped
            pr(&reg, 10, 7, "travel", 0),
        ];
        let rb = batched
            .run_stream(&mut Raw(events.clone().into_iter()))
            .unwrap();
        let re = per_event.run_stream(&mut Raw(events.into_iter())).unwrap();
        assert_eq!(batched.late_dropped, per_event.late_dropped);
        assert_eq!(batched.late_dropped, 1);
        assert_eq!(rb.events_in, re.events_in);
        assert_eq!(rb.outputs_by_type, re.outputs_by_type);
        assert_eq!(
            caesar_events::encode_all(&batched.collected_outputs),
            caesar_events::encode_all(&per_event.collected_outputs),
        );
    }

    #[test]
    fn restore_accepts_snapshot_across_batch_modes() {
        // A snapshot taken under batched execution restores into an
        // event-at-a-time engine (and the finished runs agree): the
        // batch knob is dispatch granularity, not semantics.
        let (mut batched, reg) = build_engine_with(Mode::ContextAware, EngineConfig::default());
        let feed = |e: &mut Engine| {
            e.ingest(EventBatch::new(
                5,
                vec![
                    marker(&reg, "ManySlowCars", 5, 0),
                    pr(&reg, 5, 1, "travel", 0),
                ],
            ))
            .unwrap();
        };
        feed(&mut batched);
        let state = batched.snapshot_state();

        let (mut per_event, _) = build_engine_with(
            Mode::ContextAware,
            EngineConfig {
                batch: BatchPolicy::per_event(),
                ..EngineConfig::default()
            },
        );
        per_event.restore_state(state).unwrap();
        for target in [&mut batched, &mut per_event] {
            target.ingest(pr(&reg, 6, 2, "travel", 0)).unwrap();
        }
        let a = batched.finish();
        let b = per_event.finish();
        assert_eq!(a.outputs_by_type, b.outputs_by_type);
        assert_eq!(a.outputs_of("TollNotification"), 1);
        assert!(EngineConfig::default().semantics_eq(&EngineConfig {
            batch: BatchPolicy::bounded(7),
            ..EngineConfig::default()
        }));
        assert!(EngineConfig::default().semantics_eq(&EngineConfig {
            vectorize: false,
            ..EngineConfig::default()
        }));
        assert!(!EngineConfig::default().semantics_eq(&EngineConfig {
            gc_every: 7,
            ..EngineConfig::default()
        }));
    }

    #[test]
    fn tolls_only_during_congestion() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            pr(&reg, 1, 1, "travel", 0),        // clear: no toll
            marker(&reg, "ManySlowCars", 5, 0), // switch to congestion
            pr(&reg, 6, 2, "travel", 0),        // congestion: toll
            pr(&reg, 7, 3, "exit", 0),          // exit lane: no toll
            marker(&reg, "FewFastCars", 10, 0), // back to clear
            pr(&reg, 11, 4, "travel", 0),       // clear again: no toll
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
        assert_eq!(report.transitions_applied, 4, "two switches");
        assert_eq!(report.events_in, 6);
    }

    #[test]
    fn switch_event_itself_is_not_tolled() {
        // The congestion window is (t_i, t_t]: an event at the switch
        // timestamp still belongs to clear.
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            marker(&reg, "ManySlowCars", 5, 0),
            pr(&reg, 5, 9, "travel", 0),
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 0);
    }

    #[test]
    fn termination_timestamp_still_tolled() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            marker(&reg, "ManySlowCars", 5, 0),
            marker(&reg, "FewFastCars", 10, 0),
            pr(&reg, 10, 9, "travel", 0), // at t_t: within (5, 10]
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn partitions_have_independent_contexts() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![
            marker(&reg, "ManySlowCars", 5, 0), // only partition 0 congested
            pr(&reg, 6, 1, "travel", 0),
            pr(&reg, 6, 2, "travel", 1), // partition 1 still clear
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn baseline_produces_identical_outputs() {
        let events = |reg: &SchemaRegistry| {
            vec![
                pr(reg, 1, 1, "travel", 0),
                marker(reg, "ManySlowCars", 5, 0),
                pr(reg, 6, 2, "travel", 0),
                pr(reg, 8, 3, "exit", 0),
                marker(reg, "FewFastCars", 10, 0),
                pr(reg, 11, 4, "travel", 0),
            ]
        };
        let (mut ca, reg_a) = build_engine(Mode::ContextAware);
        let ra = ca.run_stream(&mut VecStream::new(events(&reg_a))).unwrap();
        let (mut ci, reg_b) = build_engine(Mode::ContextIndependent);
        let rb = ci.run_stream(&mut VecStream::new(events(&reg_b))).unwrap();
        assert_eq!(
            ra.outputs_of("TollNotification"),
            rb.outputs_of("TollNotification"),
            "both modes must compute the same results"
        );
    }

    #[test]
    fn context_aware_mode_suspends_plans() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        // Stay in clear the whole time: the congestion plan never runs.
        let mut stream = VecStream::new(vec![
            pr(&reg, 1, 1, "travel", 0),
            pr(&reg, 2, 2, "travel", 0),
            pr(&reg, 3, 3, "travel", 0),
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.plans_fed, 0, "no processing plan active in clear");
        assert_eq!(report.plans_suspended, 3);
    }

    #[test]
    fn baseline_never_suspends() {
        let (mut engine, reg) = build_engine(Mode::ContextIndependent);
        let mut stream = VecStream::new(vec![
            pr(&reg, 1, 1, "travel", 0),
            pr(&reg, 2, 2, "travel", 0),
        ]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert_eq!(report.plans_suspended, 0);
        assert_eq!(report.plans_fed, 2);
        // ...and still computes nothing out of context.
        assert_eq!(report.outputs_of("TollNotification"), 0);
    }

    #[test]
    fn out_of_order_ingest_is_rejected() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        engine.ingest(pr(&reg, 10, 1, "travel", 0)).unwrap();
        let err = engine.ingest(pr(&reg, 5, 2, "travel", 0)).unwrap_err();
        assert!(matches!(err, EventError::OutOfOrder { .. }));
    }

    #[test]
    fn run_model_facade_works() {
        let model = parse_model(TRAFFIC).unwrap();
        let mut reg = registry();
        let optimizer = Optimizer::default();
        let events = vec![
            marker(&reg, "ManySlowCars", 5, 0),
            pr(&reg, 6, 2, "travel", 0),
        ];
        let report = run_model(
            &model,
            &mut reg,
            &optimizer,
            EngineConfig::default(),
            &mut VecStream::new(events),
        )
        .unwrap();
        assert_eq!(report.outputs_of("TollNotification"), 1);
    }

    #[test]
    fn report_latency_is_populated() {
        let (mut engine, reg) = build_engine(Mode::ContextAware);
        let mut stream = VecStream::new(vec![pr(&reg, 1, 1, "travel", 0)]);
        let report = engine.run_stream(&mut stream).unwrap();
        assert!(report.max_latency_ns > 0);
        assert!(report.avg_latency_ns > 0);
    }
}
