//! Benchmark harness for the CAESAR evaluation (§7): shared measurement
//! utilities, the synthetic overlapping-context workload of §7.3.2, and
//! table printing that mirrors the paper's figures.
//!
//! Each figure of the paper has a dedicated binary in `src/bin/`
//! (`fig10` … `fig14`); `EXPERIMENTS.md` at the workspace root records
//! paper-vs-measured values.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod overlap;

use caesar_core::prelude::*;
use std::time::Instant;

/// One measured run: label → report.
#[derive(Debug, Clone)]
pub struct Measured {
    /// Configuration label.
    pub label: String,
    /// The engine's run report.
    pub report: RunReport,
    /// Wall-clock time of the whole run.
    pub wall_secs: f64,
}

/// Runs a stream through a system, measuring wall time.
pub fn measure(
    label: impl Into<String>,
    system: &mut CaesarSystem,
    events: Vec<Event>,
) -> Measured {
    let start = Instant::now();
    let report = system
        .run_stream(&mut VecStream::new(events))
        .expect("benchmark streams are in order");
    Measured {
        label: label.into(),
        report,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

/// Prints a figure-style table: a title line, a header row, then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(headers.iter().map(|s| (*s).to_string()).collect())
    );
    for row in rows {
        println!("{}", fmt_row(row.clone()));
    }
}

/// Milliseconds with two decimals.
#[must_use]
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// A ratio with two decimals.
#[must_use]
pub fn ratio(num: u64, den: u64) -> String {
    if den == 0 {
        "inf".to_string()
    } else {
        format!("{:.2}", num as f64 / den as f64)
    }
}
