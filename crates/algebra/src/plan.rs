//! Executable query plans.
//!
//! A [`QueryPlan`] is the chain of operators one event query compiles to
//! (§4.2, "Individual query plan construction", Table 1). A
//! [`CombinedPlan`] composes the individual plans of one context: "if one
//! query plan produces events which are consumed by another query plan
//! then the output of the first plan is the input of the second plan.
//! Since event queries in different contexts are independent, all event
//! queries in a combined query plan belong to the same context."

use crate::context_table::ContextTable;
use crate::ops::{
    advance_chain_time, chain_is_stage_major, run_chain, run_chain_batch, run_chain_batch_selected,
    run_chain_from, ChainOutput, Op,
};
use caesar_events::{ColumnarBatch, Event, Time, TypeId};
use caesar_query::ast::QueryId;
use caesar_query::queryset::CompiledQuery;
use serde::{Deserialize, Serialize};

/// Re-export: the output sink of plan execution.
pub type PlanOutput = ChainOutput;

/// One query's executable operator chain (`ops\[0\]` is the bottom).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The compiled query this plan executes.
    pub query_id: QueryId,
    /// Context the plan belongs to (every plan of a combined plan shares
    /// it, §4.2).
    pub context: String,
    /// Bit of that context in the context bit vector.
    pub context_bit: u8,
    /// The operator chain, bottom to top.
    pub ops: Vec<Op>,
    /// Event types consumed by the plan's pattern.
    pub input_types: Vec<TypeId>,
    /// Derived output type (processing queries only).
    pub output_type: Option<TypeId>,
    /// `true` for context-deriving queries.
    pub is_deriving: bool,
    /// The source query (kept for re-optimization and sharing analysis).
    pub source: CompiledQuery,
}

impl QueryPlan {
    /// Feeds one event through the chain.
    pub fn process(&mut self, event: &Event, table: &ContextTable, out: &mut PlanOutput) {
        run_chain(&mut self.ops, event, table, out);
    }

    /// Feeds a same-`(partition, time)` run of events — presented as a
    /// [`ColumnarBatch`] over the transaction — through the chain,
    /// skipping events the plan does not consume. Equivalent to calling
    /// [`process`] once per consumed event, but the bottom context-window
    /// probe (if any) and the traversal buffers amortize over the run,
    /// and stage-major chains evaluate predicates through vectorized
    /// kernels over the batch's columnar views (selection vectors mean
    /// unconsumed events are skipped without copying).
    ///
    /// [`process`]: QueryPlan::process
    pub fn process_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
        out: &mut PlanOutput,
    ) {
        let mut sel: Vec<u32> = cols
            .events()
            .iter()
            .enumerate()
            .filter(|(_, e)| self.consumes(e.type_id))
            .map(|(i, _)| i as u32)
            .collect();
        run_chain_batch(&mut self.ops, cols, &mut sel, table, out);
    }

    /// Advances the watermark on stateful operators.
    pub fn advance_time(&mut self, watermark: Time, table: &ContextTable, out: &mut PlanOutput) {
        if !self.needs_advance() {
            return;
        }
        advance_chain_time(&mut self.ops, watermark, table, out);
    }

    /// Returns `true` if any operator holds time-sensitive state —
    /// watermark advances on stateless plans are no-ops and skipped.
    #[must_use]
    pub fn needs_advance(&self) -> bool {
        self.ops.iter().any(|op| match op {
            Op::Pattern(p) => p.has_state(),
            _ => false,
        })
    }

    /// Returns `true` if the plan consumes events of `type_id`.
    #[must_use]
    pub fn consumes(&self, type_id: TypeId) -> bool {
        self.input_types.contains(&type_id)
    }

    /// Position of the context window operator in the chain, if any.
    #[must_use]
    pub fn context_window_position(&self) -> Option<usize> {
        self.ops.iter().position(Op::is_context_window)
    }

    /// Returns `true` if the context window sits at the very bottom of
    /// the chain (the push-down invariant of §5.2).
    #[must_use]
    pub fn is_context_window_pushed_down(&self) -> bool {
        self.context_window_position() == Some(0)
    }

    /// Discards all partial state of the plan's stateful operators —
    /// called when the plan's context window ends (§6.2).
    pub fn reset_state(&mut self) {
        for op in &mut self.ops {
            if let Op::Pattern(p) = op {
                p.reset();
            }
        }
    }

    /// Expires partial matches started at or before `t` (context history
    /// expiry for grouped windows, Figure 7).
    pub fn expire_history(&mut self, t: Time) {
        for op in &mut self.ops {
            if let Op::Pattern(p) = op {
                p.expire_started_at_or_before(t);
            }
        }
    }

    /// One-line explain string, e.g.
    /// `Q3[congestion]: ContextWindow -> Pattern -> Filter -> Project`.
    #[must_use]
    pub fn explain(&self) -> String {
        let chain: Vec<&str> = self.ops.iter().map(Op::tag).collect();
        format!(
            "{}[{}]: {}",
            self.query_id,
            self.context,
            chain.join(" -> ")
        )
    }

    /// Live partial-match count across stateful operators.
    #[must_use]
    pub fn live_partials(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Pattern(p) => p.live_partials(),
                _ => 0,
            })
            .sum()
    }
}

/// The combined query plan of one context: individual plans wired so
/// derived events flow to downstream consumers in the same context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedPlan {
    /// The shared context.
    pub context: String,
    /// Its bit in the context bit vector.
    pub context_bit: u8,
    /// Member plans in topological (producer-before-consumer) order.
    pub plans: Vec<QueryPlan>,
    /// Types consumed from the *external* input stream (not produced by
    /// a member plan).
    pub external_inputs: Vec<TypeId>,
}

impl CombinedPlan {
    /// Builds a combined plan from topologically ordered member plans.
    #[must_use]
    pub fn new(context: String, context_bit: u8, plans: Vec<QueryPlan>) -> Self {
        let produced: Vec<TypeId> = plans.iter().filter_map(|p| p.output_type).collect();
        let mut external: Vec<TypeId> = plans
            .iter()
            .flat_map(|p| p.input_types.iter().copied())
            .filter(|t| !produced.contains(t))
            .collect();
        external.sort_unstable();
        external.dedup();
        Self {
            context,
            context_bit,
            plans,
            external_inputs: external,
        }
    }

    /// Returns `true` if the combined plan consumes `type_id` from the
    /// external input stream.
    #[must_use]
    pub fn consumes_external(&self, type_id: TypeId) -> bool {
        self.external_inputs.binary_search(&type_id).is_ok()
    }

    /// Feeds one external event through the combined plan. Derived events
    /// flow to downstream member plans *and* to `out.events` (they are
    /// part of the output stream).
    pub fn process(&mut self, event: &Event, table: &ContextTable, out: &mut PlanOutput) {
        // Worklist of (producer plan index + 1, event). External events
        // start at 0 so every member plan may consume them; derived
        // events are only offered to later plans (topological order
        // prevents cycles).
        let mut work: Vec<(usize, Event)> = vec![(0, event.clone())];
        let mut scratch = PlanOutput::default();
        while let Some((start, ev)) = work.pop() {
            for idx in start..self.plans.len() {
                if !self.plans[idx].consumes(ev.type_id) {
                    continue;
                }
                scratch.clear();
                self.plans[idx].process(&ev, table, &mut scratch);
                out.transitions.append(&mut scratch.transitions);
                for derived in scratch.events.drain(..) {
                    out.events.push(derived.clone());
                    work.push((idx + 1, derived));
                }
            }
        }
    }

    /// Feeds a same-`(partition, time)` run of external events —
    /// presented as a [`ColumnarBatch`] over the transaction — through
    /// the combined plan. Equivalent to calling [`process`] once per
    /// consumed event in slice order — member plans see the exact same
    /// event sequence — but the worklist and scratch buffers are
    /// allocated once per run instead of once per (event × plan) step,
    /// and stage-major member plans run vectorized over selection
    /// vectors.
    ///
    /// [`process`]: CombinedPlan::process
    pub fn process_batch(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
        out: &mut PlanOutput,
    ) {
        if self.process_batch_stage_major(cols, table, out) {
            return;
        }
        let events = cols.events();
        let mut work: Vec<(usize, Event)> = Vec::new();
        let mut scratch = PlanOutput::default();
        let mut chain_work: Vec<(usize, Event)> = Vec::new();
        let mut chain_scratch: Vec<Event> = Vec::new();
        for plan in &mut self.plans {
            for op in &mut plan.ops {
                if let Op::Pattern(p) = op {
                    p.set_batch_hint(events.len());
                }
            }
        }
        for event in events {
            if !self.consumes_external(event.type_id) {
                continue;
            }
            work.push((0, event.clone()));
            while let Some((start, ev)) = work.pop() {
                for idx in start..self.plans.len() {
                    if !self.plans[idx].consumes(ev.type_id) {
                        continue;
                    }
                    scratch.clear();
                    run_chain_from(
                        &mut self.plans[idx].ops,
                        0,
                        ev.clone(),
                        table,
                        &mut scratch,
                        &mut chain_work,
                        &mut chain_scratch,
                    );
                    out.transitions.append(&mut scratch.transitions);
                    for derived in scratch.events.drain(..) {
                        out.events.push(derived.clone());
                        work.push((idx + 1, derived));
                    }
                }
            }
        }
    }

    /// The batched hot path: when every member plan consuming this
    /// transaction has a stage-major chain (optional bottom context
    /// window, then only filters / projections / windows / pass-through
    /// patterns) and none of their outputs feeds another member plan,
    /// each consumer runs stage-major over the whole event slice.
    ///
    /// A stage-major chain maps one input to at most one output, so the
    /// selection vector's row indices key every output by
    /// `(input position, member plan position)` — sorting the per-plan
    /// output runs by that pair restores the exact event-major order of
    /// the per-event path. Such chains emit no transitions and share no
    /// state, so plan-major execution is otherwise unobservable.
    ///
    /// Returns `false` (leaving `self` and `out` untouched) when the
    /// transaction does not qualify and must take the per-event path.
    fn process_batch_stage_major(
        &mut self,
        cols: &mut ColumnarBatch<'_>,
        table: &ContextTable,
        out: &mut PlanOutput,
    ) -> bool {
        let events = cols.events();
        // Distinct consumed types of the transaction (almost always 1).
        let mut types: Vec<TypeId> = Vec::new();
        for e in events {
            if self.consumes_external(e.type_id) && !types.contains(&e.type_id) {
                types.push(e.type_id);
            }
        }
        let mut consuming: Vec<usize> = Vec::new();
        for (idx, plan) in self.plans.iter().enumerate() {
            if !types.iter().any(|&t| plan.consumes(t)) {
                continue;
            }
            if !chain_is_stage_major(&plan.ops) {
                return false;
            }
            if let Some(out_ty) = plan.output_type {
                if self.plans.iter().any(|p| p.consumes(out_ty)) {
                    return false;
                }
            }
            consuming.push(idx);
        }
        let mut sel: Vec<u32> = Vec::new();
        let mut items: Vec<(u32, Event)> = Vec::new();
        let mut merged: Vec<(u32, u32, Event)> = Vec::new();
        for (pos, &idx) in consuming.iter().enumerate() {
            let plan = &mut self.plans[idx];
            // `types` membership also re-applies the external-input
            // filter of the per-event path.
            sel.clear();
            sel.extend(
                events
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| types.contains(&e.type_id) && plan.consumes(e.type_id))
                    .map(|(i, _)| i as u32),
            );
            items.clear();
            run_chain_batch_selected(&mut plan.ops, cols, &mut sel, table, &mut items);
            merged.extend(items.drain(..).map(|(i, e)| (i, pos as u32, e)));
        }
        merged.sort_unstable_by_key(|t| (t.0, t.1));
        out.events.extend(merged.into_iter().map(|(_, _, e)| e));
        true
    }

    /// Advances the watermark on all member plans, feeding any matured
    /// matches to downstream consumers.
    pub fn advance_time(&mut self, watermark: Time, table: &ContextTable, out: &mut PlanOutput) {
        let mut scratch = PlanOutput::default();
        for idx in 0..self.plans.len() {
            scratch.clear();
            self.plans[idx].advance_time(watermark, table, &mut scratch);
            out.transitions.append(&mut scratch.transitions);
            let matured: Vec<Event> = scratch.events.drain(..).collect();
            for derived in matured {
                out.events.push(derived.clone());
                // Feed downstream members.
                let mut work: Vec<(usize, Event)> = vec![(idx + 1, derived)];
                while let Some((start, ev)) = work.pop() {
                    for j in start..self.plans.len() {
                        if !self.plans[j].consumes(ev.type_id) {
                            continue;
                        }
                        let mut inner = PlanOutput::default();
                        self.plans[j].process(&ev, table, &mut inner);
                        out.transitions.append(&mut inner.transitions);
                        for d in inner.events.drain(..) {
                            out.events.push(d.clone());
                            work.push((j + 1, d));
                        }
                    }
                }
            }
        }
    }

    /// Resets the partial state of every member plan (context window
    /// ended).
    pub fn reset_state(&mut self) {
        for p in &mut self.plans {
            p.reset_state();
        }
    }

    /// Total number of queries in the combined plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` if the combined plan has no member plans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Multi-line explain output.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut s = format!("CombinedPlan[{}] ({} queries)\n", self.context, self.len());
        for p in &self.plans {
            s.push_str("  ");
            s.push_str(&p.explain());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CompiledExpr;
    use crate::ops::{ContextWindowOp, ProjectOp};
    use crate::pattern::PatternOp;
    use caesar_events::{AttrType, PartitionId, Schema, SchemaRegistry, Value};
    use caesar_query::ast::{EventQuery, Pattern};

    fn registry() -> SchemaRegistry {
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("In", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Mid", &[("v", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Final", &[("v", AttrType::Int)]))
            .unwrap();
        reg
    }

    fn dummy_source(id: u32) -> CompiledQuery {
        CompiledQuery {
            id: QueryId(id),
            query: EventQuery {
                name: None,
                action: None,
                derive: None,
                pattern: Pattern::event_unbound("In"),
                where_clause: None,
                within: None,
                contexts: vec!["c".into()],
            },
            context: "c".into(),
            source: id,
        }
    }

    /// Plan: passthrough(In) -> Project(out_ty, [v]).
    fn relay_plan(reg: &SchemaRegistry, id: u32, input: &str, output: &str) -> QueryPlan {
        let in_ty = reg.lookup(input).unwrap();
        let out_ty = reg.lookup(output).unwrap();
        QueryPlan {
            query_id: QueryId(id),
            context: "c".into(),
            context_bit: 0,
            ops: vec![
                Op::Pattern(PatternOp::passthrough(in_ty)),
                Op::Project(ProjectOp::new(
                    out_ty,
                    vec![CompiledExpr::Attr { slot: 0, attr: 0 }],
                )),
            ],
            input_types: vec![in_ty],
            output_type: Some(out_ty),
            is_deriving: false,
            source: dummy_source(id),
        }
    }

    fn in_event(reg: &SchemaRegistry, t: Time, v: i64) -> Event {
        Event::simple(
            reg.lookup("In").unwrap(),
            t,
            PartitionId(0),
            vec![Value::Int(v)],
        )
    }

    #[test]
    fn combined_plan_chains_producers_to_consumers() {
        let reg = registry();
        // In -> Mid -> Final, like Figure 6(a)'s two composed queries.
        let p1 = relay_plan(&reg, 0, "In", "Mid");
        let p2 = relay_plan(&reg, 1, "Mid", "Final");
        let mut combined = CombinedPlan::new("c".into(), 0, vec![p1, p2]);
        assert_eq!(combined.external_inputs, vec![reg.lookup("In").unwrap()]);
        assert!(combined.consumes_external(reg.lookup("In").unwrap()));
        assert!(!combined.consumes_external(reg.lookup("Mid").unwrap()));

        let table = ContextTable::new(1, 0);
        let mut out = PlanOutput::default();
        combined.process(&in_event(&reg, 5, 42), &table, &mut out);
        // Both the intermediate and the final derived event are output.
        assert_eq!(out.events.len(), 2);
        let types: Vec<TypeId> = out.events.iter().map(|e| e.type_id).collect();
        assert!(types.contains(&reg.lookup("Mid").unwrap()));
        assert!(types.contains(&reg.lookup("Final").unwrap()));
    }

    #[test]
    fn derived_events_do_not_flow_backwards() {
        let reg = registry();
        // p2 consumes Mid and produces Final; p1 consumes In and
        // produces Mid. Order: p2 first (wrong topological order on
        // purpose) — Mid produced by p1 must NOT reach p2 at index 0.
        let p2 = relay_plan(&reg, 1, "Mid", "Final");
        let p1 = relay_plan(&reg, 0, "In", "Mid");
        let mut combined = CombinedPlan::new("c".into(), 0, vec![p2, p1]);
        let table = ContextTable::new(1, 0);
        let mut out = PlanOutput::default();
        combined.process(&in_event(&reg, 5, 42), &table, &mut out);
        assert_eq!(out.events.len(), 1, "only Mid; Final not produced");
    }

    #[test]
    fn combined_batch_matches_per_event() {
        let reg = registry();
        let p1 = relay_plan(&reg, 0, "In", "Mid");
        let p2 = relay_plan(&reg, 1, "Mid", "Final");
        let mut per_event = CombinedPlan::new("c".into(), 0, vec![p1, p2]);
        let pristine = per_event.clone();
        let table = ContextTable::new(1, 0);
        let events: Vec<Event> = (0..6).map(|i| in_event(&reg, 5, i)).collect();

        let mut out_a = PlanOutput::default();
        for e in &events {
            if per_event.consumes_external(e.type_id) {
                per_event.process(e, &table, &mut out_a);
            }
        }
        for vectorize in [false, true] {
            let mut batched = pristine.clone();
            let mut out_b = PlanOutput::default();
            let mut cols = ColumnarBatch::new(&events, vectorize);
            batched.process_batch(&mut cols, &table, &mut out_b);
            assert_eq!(out_a.events, out_b.events, "vectorize={vectorize}");
            assert_eq!(
                out_a.transitions, out_b.transitions,
                "vectorize={vectorize}"
            );
        }
    }

    #[test]
    fn query_plan_batch_skips_unconsumed_types() {
        let reg = registry();
        let mut plan = relay_plan(&reg, 0, "In", "Mid");
        let table = ContextTable::new(1, 0);
        let mid = Event::simple(
            reg.lookup("Mid").unwrap(),
            5,
            PartitionId(0),
            vec![Value::Int(1)],
        );
        // Mixed batch: only the two In events are consumed.
        let events = vec![in_event(&reg, 5, 1), mid, in_event(&reg, 5, 2)];
        let mut out = PlanOutput::default();
        let mut cols = ColumnarBatch::new(&events, true);
        plan.process_batch(&mut cols, &table, &mut out);
        assert_eq!(out.events.len(), 2);
        assert_eq!(out.events[0].attrs[0], Value::Int(1));
        assert_eq!(out.events[1].attrs[0], Value::Int(2));
    }

    #[test]
    fn plan_introspection() {
        let reg = registry();
        let mut plan = relay_plan(&reg, 3, "In", "Mid");
        assert!(plan.context_window_position().is_none());
        plan.ops
            .insert(0, Op::ContextWindow(ContextWindowOp::new(0)));
        assert_eq!(plan.context_window_position(), Some(0));
        assert!(plan.is_context_window_pushed_down());
        let explain = plan.explain();
        assert!(
            explain.contains("ContextWindow -> Pattern -> Project"),
            "{explain}"
        );
    }

    #[test]
    fn reset_clears_member_state() {
        let reg = registry();
        let in_ty = reg.lookup("In").unwrap();
        let mid_ty = reg.lookup("Mid").unwrap();
        // A 2-element sequence keeps partials.
        let seq = PatternOp::sequence(
            vec![
                crate::pattern::PositiveElement {
                    type_id: in_ty,
                    step_predicates: vec![],
                },
                crate::pattern::PositiveElement {
                    type_id: mid_ty,
                    step_predicates: vec![],
                },
            ],
            vec![],
            1000,
            reg.lookup("Final").unwrap(),
            vec![0, 1],
        );
        let plan = QueryPlan {
            query_id: QueryId(0),
            context: "c".into(),
            context_bit: 0,
            ops: vec![Op::Pattern(seq)],
            input_types: vec![in_ty, mid_ty],
            output_type: Some(reg.lookup("Final").unwrap()),
            is_deriving: false,
            source: dummy_source(0),
        };
        let mut combined = CombinedPlan::new("c".into(), 0, vec![plan]);
        let table = ContextTable::new(1, 0);
        let mut out = PlanOutput::default();
        combined.process(&in_event(&reg, 1, 7), &table, &mut out);
        assert_eq!(combined.plans[0].live_partials(), 1);
        combined.reset_state();
        assert_eq!(combined.plans[0].live_partials(), 0);
    }
}
