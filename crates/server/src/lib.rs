//! `caesar serve` — a long-running, multi-tenant network ingest server
//! for the CAESAR engine.
//!
//! One process hosts any number of *tenants*, each an independent
//! CAESAR model (its own schemas, contexts and queries) with its own
//! sharded runtime; clients speak a length-prefixed framed protocol
//! that reuses the binary event codec of [`caesar_events::codec`]
//! verbatim, adding only tenancy and control framing around it.
//!
//! The layers, bottom up:
//!
//! * [`queue`] — a bounded MPSC queue with observable admission
//!   control: non-blocking probe, bounded-wait push (the slow-consumer
//!   throttle) and a depth high-water mark for `/metrics`. Rejection is
//!   a typed error carrying the value back; nothing is silently
//!   dropped, nothing buffers without bound.
//! * [`protocol`] — the wire format: `INGEST`/`SUBSCRIBE`/`FLUSH`/
//!   `FINISH`/`PING`/`SHUTDOWN` requests, typed error codes, frame
//!   ceilings enforced before the body is read.
//! * [`tenant`] — one hosted model: a router thread hash-routing
//!   admitted events onto per-shard engines (the same partition law as
//!   [`caesar_runtime::run_sharded`]), flush barriers, end-of-stream
//!   reports, and a drain that either checkpoints every shard (via
//!   `caesar-recovery`, resumable on restart) or finishes the engines.
//! * [`server`] — the accept loop, per-connection reader/writer thread
//!   pairs, the graceful-drain state machine (SIGINT, a `SHUTDOWN`
//!   frame or [`ServerHandle::shutdown`] all converge on it) and
//!   checkpoint-resume at startup.
//! * `http` (private) — a hand-rolled `GET /metrics` + `GET /healthz`
//!   responder (the workspace vendors no HTTP stack); server-level
//!   counters and merged per-tenant engine snapshots as one JSON
//!   document.
//! * [`client`] — the blocking client the testkit equivalence leg, the
//!   protocol tests and the load generator use.
//!
//! The load-bearing guarantee is *zero acknowledged loss*: an `INGEST`
//! is acked only after admission to the tenant's bounded queue, and the
//! drain processes everything admitted before the process exits — the
//! testkit's served-vs-embedded leg holds the server to byte-identical
//! outputs against an in-process engine, drains included.

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod client;
mod http;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod tenant;

mod hub;

pub use client::Client;
pub use protocol::{ErrorCode, FrameError, Request, Response, TenantReport, DEFAULT_MAX_FRAME};
pub use queue::{BoundedQueue, PushError};
pub use server::{DrainSummary, Server, ServerConfig, ServerHandle};
pub use tenant::{AdmissionError, DrainOutcome, TenantConfig};
