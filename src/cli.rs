//! Building blocks of the `caesar` command-line tool: schema files,
//! textual event files, and the run/explain/check drivers.
//!
//! File formats (all line-oriented, `#` starts a comment):
//!
//! * **Schema file** — one event type per line:
//!   `PositionReport vid:int sec:int lane:str`
//! * **Event file** — one event per line:
//!   `<time> <partition> <TypeName> attr=value attr=value ...`
//!   (string values may be quoted; events must be time-ordered).
//!   Files ending in `.bin` instead use the binary codec of
//!   [`caesar_events::codec`].

use caesar_core::prelude::*;
use caesar_core::{CaesarBuilder, CaesarSystem};
use caesar_recovery::CheckpointManager;
use std::fmt;
use std::path::{Path, PathBuf};

/// CLI-level errors.
#[derive(Debug)]
pub enum CliError {
    /// Malformed schema or event line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// Underlying system error.
    System(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Parse { line, detail } => write!(f, "line {line}: {detail}"),
            CliError::System(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CliError {}

fn parse_err(line: usize, detail: impl Into<String>) -> CliError {
    CliError::Parse {
        line,
        detail: detail.into(),
    }
}

/// One schema declaration: type name plus its attributes.
pub type SchemaDecl = (String, Vec<(String, AttrType)>);

/// Parses a schema file into `(type name, attributes)` declarations.
pub fn parse_schema_file(text: &str) -> Result<Vec<SchemaDecl>, CliError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "missing type name"))?
            .to_string();
        let mut attrs = Vec::new();
        for spec in parts {
            let (attr, ty) = spec
                .split_once(':')
                .ok_or_else(|| parse_err(i + 1, format!("attribute '{spec}' needs name:type")))?;
            let ty = match ty {
                "int" => AttrType::Int,
                "float" => AttrType::Float,
                "str" => AttrType::Str,
                "bool" => AttrType::Bool,
                other => {
                    return Err(parse_err(
                        i + 1,
                        format!("unknown type '{other}' (int|float|str|bool)"),
                    ))
                }
            };
            attrs.push((attr.to_string(), ty));
        }
        out.push((name, attrs));
    }
    Ok(out)
}

/// Applies schema declarations to a builder.
#[must_use]
pub fn apply_schemas(mut builder: CaesarBuilder, schemas: &[SchemaDecl]) -> CaesarBuilder {
    for (name, attrs) in schemas {
        let refs: Vec<(&str, AttrType)> = attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        builder = builder.schema(name, &refs);
    }
    builder
}

/// Parses a textual event file against a built system's registry.
pub fn parse_event_file(text: &str, system: &CaesarSystem) -> Result<Vec<Event>, CliError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let time: Time = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| parse_err(i + 1, "expected integer timestamp"))?;
        let partition: u32 = parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| parse_err(i + 1, "expected integer partition"))?;
        let type_name = parts
            .next()
            .ok_or_else(|| parse_err(i + 1, "expected event type name"))?;
        let mut builder = system
            .event(type_name, time)
            .map_err(|e| parse_err(i + 1, e.to_string()))?
            .partition(PartitionId(partition));
        for assignment in parts {
            let (attr, value) = assignment
                .split_once('=')
                .ok_or_else(|| parse_err(i + 1, format!("'{assignment}' needs attr=value")))?;
            let value = parse_value(value);
            builder = builder
                .attr(attr, value)
                .map_err(|e| parse_err(i + 1, e.to_string()))?;
        }
        events.push(
            builder
                .build()
                .map_err(|e| parse_err(i + 1, e.to_string()))?,
        );
    }
    Ok(events)
}

/// Parses a literal: integers, floats, booleans, then strings
/// (optionally `"quoted"`).
#[must_use]
pub fn parse_value(raw: &str) -> Value {
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Value::Float(f);
    }
    match raw {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::str(raw.trim_matches('"')),
    }
}

/// Everything a `caesar run` needs: the input texts plus the
/// configuration assembled from CLI flags. [`run`] is the single entry
/// point for plain, sharded-rejecting and checkpointed runs alike.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Textual `MODEL` block.
    pub model_text: String,
    /// Schema file contents (see module docs for the format).
    pub schema_text: String,
    /// Event file contents (see module docs for the format).
    pub events_text: String,
    /// Context-aware or context-independent.
    pub mode: ExecutionMode,
    /// Workload sharing on/off.
    pub sharing: bool,
    /// Worker shards (1 = single-threaded).
    pub shards: usize,
    /// Pattern horizon in ticks.
    pub within: Time,
    /// Directory for durable checkpoints (snapshot + event log). `None`
    /// disables checkpointing. If the directory already holds a
    /// checkpoint from an interrupted run of the same model, the run
    /// resumes from it instead of starting over.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint cadence in events. `0` keeps the write-ahead log but
    /// snapshots only at the end of the run.
    pub checkpoint_every: u64,
    /// Batch-size cap for the batched hot path. `None` = batched with no
    /// cap beyond timestamp boundaries (the default); `Some(0)` or
    /// `Some(1)` = event-at-a-time baseline; `Some(n)` = at most `n`
    /// events per batch.
    pub batch_size: Option<usize>,
    /// Vectorized predicate/projection kernels over columnar batch
    /// views (default on). Off = the batched row interpreter; results
    /// are identical either way.
    pub vectorize: bool,
    /// Observability level of the engine (and, for checkpointed runs,
    /// the checkpoint manager): `Off` (default), `Counters` or `Spans`.
    pub observability: ObservabilityLevel,
    /// Consistency level: `Strict` (default) buffers disorder for the
    /// full reorder slack before emitting; `Speculative` emits on
    /// arrival and retracts/corrects when a late event invalidates a
    /// match. Settled results are identical either way.
    pub consistency: Consistency,
    /// Append the human-readable metrics rendering to the report.
    pub metrics: bool,
    /// Write the metrics snapshot as JSON to this path.
    pub metrics_json: Option<PathBuf>,
    /// Explain every match: forces provenance collection
    /// ([`EngineConfig::provenance`]) and appends one line per derived
    /// event listing the contributing events that produced it.
    pub explain: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            model_text: String::new(),
            schema_text: String::new(),
            events_text: String::new(),
            mode: ExecutionMode::ContextAware,
            sharing: true,
            shards: 1,
            within: 300,
            checkpoint_dir: None,
            checkpoint_every: 10_000,
            batch_size: None,
            vectorize: true,
            observability: ObservabilityLevel::Off,
            consistency: Consistency::Strict,
            metrics: false,
            metrics_json: None,
            explain: false,
        }
    }
}

impl RunOptions {
    /// The [`BatchPolicy`] the `batch_size` flag maps to.
    #[must_use]
    pub fn batch_policy(&self) -> BatchPolicy {
        match self.batch_size {
            None => BatchPolicy::default(),
            Some(0 | 1) => BatchPolicy::per_event(),
            Some(n) => BatchPolicy::bounded(n),
        }
    }
}

/// The [`EngineConfig`] the run flags map to — shared by `caesar run`
/// and every `caesar serve` tenant so the flags mean the same thing in
/// both drivers.
#[must_use]
pub fn engine_config(options: &RunOptions) -> EngineConfig {
    EngineConfig::builder()
        .mode(options.mode)
        .sharing(options.sharing)
        .batch(options.batch_policy())
        .vectorize(options.vectorize)
        .observability(options.observability)
        .consistency(options.consistency)
        // `--explain` needs each match's contributing events (and the
        // matches themselves retained for the post-run rendering). The
        // server overrides `collect_outputs` and drains per frame, so
        // the flag stays safe for `caesar serve` tenants too.
        .provenance(options.explain)
        .collect_outputs(options.explain)
        .build()
}

/// Builds a system from the model + schema texts in `options`.
pub fn build_system(options: &RunOptions) -> Result<CaesarSystem, CliError> {
    let schemas = parse_schema_file(&options.schema_text)?;
    let builder = apply_schemas(Caesar::builder(), &schemas)
        .model_text(&options.model_text)
        .within(options.within)
        .engine_config(engine_config(options));
    builder.build().map_err(|e| CliError::System(e.to_string()))
}

/// Runs the events through a freshly built system and renders the
/// report — the single `caesar run` entry point. A checkpoint directory
/// in the options switches the run onto the durable log → ingest →
/// snapshot protocol (resuming from the directory if a previous run of
/// the same model was interrupted); otherwise the stream is executed
/// directly. `metrics` / `metrics_json` append the human rendering of
/// the metrics snapshot and write it as JSON respectively.
pub fn run(options: &RunOptions) -> Result<String, CliError> {
    let mut system = build_system(options)?;
    let events = parse_event_file(&options.events_text, &system)?;
    let mut out = String::new();
    let report = if let Some(dir) = &options.checkpoint_dir {
        let (report, resumed_at) = run_checkpointed(&mut system, events, dir, options)?;
        out.push_str(&format!("checkpoint dir:      {}\n", dir.display()));
        if resumed_at > 0 {
            out.push_str(&format!("resumed at event:    {resumed_at}\n"));
        }
        report
    } else if options.shards <= 1 {
        system
            .run_stream(&mut VecStream::new(events))
            .map_err(|e| CliError::System(e.to_string()))?
    } else {
        // Sharded execution needs the raw program; rebuild through the
        // low-level path.
        return Err(CliError::System(
            "sharded runs are available through the library API \
             (caesar::runtime::run_sharded)"
                .into(),
        ));
    };
    out.push_str(&render_report(&report));
    if options.explain {
        out.push('\n');
        out.push_str(&render_explain(
            &system.engine.collected_outputs,
            &system.registry,
        ));
    }
    if options.metrics {
        out.push('\n');
        out.push_str(&report.metrics.render());
    }
    if let Some(path) = &options.metrics_json {
        std::fs::write(path, report.metrics.to_json())
            .map_err(|e| CliError::System(format!("cannot write {}: {e}", path.display())))?;
        out.push_str(&format!("metrics json:        {}\n", path.display()));
    }
    Ok(out)
}

/// Runs a parsed event stream under the checkpoint protocol: resume
/// from `dir` if it holds a checkpoint of the same model, log every
/// event ahead of ingest, snapshot on the configured cadence and once
/// more at the end of the stream. Returns the report (durability
/// metrics merged in) plus the stream position the run resumed at (0
/// for a fresh start).
fn run_checkpointed(
    system: &mut CaesarSystem,
    events: Vec<Event>,
    dir: &Path,
    options: &RunOptions,
) -> Result<(RunReport, u64), CliError> {
    let sys_err = |e: caesar_recovery::RecoveryError| CliError::System(e.to_string());
    let mut manager = CheckpointManager::resume(dir, options.checkpoint_every, &mut system.engine)
        .map_err(sys_err)?
        .with_observability(options.observability);
    let resumed_at = manager.position();
    let skip = usize::try_from(resumed_at)
        .map_err(|_| CliError::System("checkpoint position overflow".into()))?;
    if skip > events.len() {
        return Err(CliError::System(format!(
            "checkpoint in {} covers {skip} events but the input has only {}; \
             wrong event file for this checkpoint?",
            dir.display(),
            events.len()
        )));
    }
    for event in events.into_iter().skip(skip) {
        manager.log_event(&event).map_err(sys_err)?;
        system
            .engine
            .ingest(event)
            .map_err(|e| CliError::System(e.to_string()))?;
        // Snapshots capture strict state only: when a checkpoint is due,
        // a speculative engine first confirms or retracts everything in
        // flight (a no-op on strict runs).
        if manager.checkpoint_due() {
            system.engine.settle();
        }
        manager.maybe_checkpoint(&system.engine).map_err(sys_err)?;
    }
    // Final snapshot before `finish()`: rerunning against the same (or a
    // longer) event file resumes here instead of replaying everything.
    system.engine.settle();
    manager.checkpoint(&system.engine).map_err(sys_err)?;
    let mut report = system.engine.finish();
    report.metrics.merge(&manager.metrics_snapshot());
    Ok((report, resumed_at))
}

/// Renders a run report as text.
#[must_use]
pub fn render_report(report: &RunReport) -> String {
    let mut s = String::new();
    s.push_str(&format!("events in:           {}\n", report.events_in));
    s.push_str(&format!("events out:          {}\n", report.events_out));
    s.push_str(&format!(
        "context transitions: {}\n",
        report.transitions_applied
    ));
    s.push_str(&format!(
        "plans suspended:     {} ({} fed)\n",
        report.plans_suspended, report.plans_fed
    ));
    s.push_str(&format!(
        "max latency:         {:.3} ms\n",
        report.max_latency_ns as f64 / 1e6
    ));
    s.push_str("outputs:\n");
    for (ty, n) in &report.outputs_by_type {
        if !ty.starts_with("$match") {
            s.push_str(&format!("  {ty:30} {n}\n"));
        }
    }
    s
}

/// Renders the `--explain` section: one line per derived event, naming
/// the contributing events (type + occurrence time) its match bound at
/// each pattern step. Outputs must come from a run with
/// [`EngineConfig::provenance`] on, as [`run`] forces for the flag.
#[must_use]
pub fn render_explain(outputs: &[Event], registry: &SchemaRegistry) -> String {
    let name = |tid| registry.schema(tid).name.clone();
    let at = |iv: &Interval| {
        if iv.start == iv.end {
            format!("@{}", iv.end)
        } else {
            format!("@[{},{}]", iv.start, iv.end)
        }
    };
    let mut s = String::from("matches:\n");
    let mut shown = 0usize;
    for e in outputs {
        let ty = name(e.type_id);
        if ty.starts_with("$match") {
            continue;
        }
        let derivation = match e.provenance.as_deref() {
            Some(p) => p
                .steps
                .iter()
                .map(|step| format!("{}{}", name(step.type_id), at(&step.occurrence)))
                .collect::<Vec<_>>()
                .join(", "),
            None => "(no provenance recorded)".into(),
        };
        s.push_str(&format!("  {ty}{} <= {derivation}\n", at(&e.occurrence)));
        shown += 1;
    }
    if shown == 0 {
        s.push_str("  (none)\n");
    }
    s
}

/// One tenant of a `caesar serve` process: a name plus the model and
/// schema texts that define its program.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name clients address frames to.
    pub name: String,
    /// Textual `MODEL` block.
    pub model_text: String,
    /// Schema file contents (same format as `caesar run`).
    pub schema_text: String,
}

/// Everything a `caesar serve` needs: the tenant specs, the listen
/// addresses, and the shared run flags. The engine-level flags (mode,
/// sharing, batching, vectorization, observability, checkpoint
/// directory, `--within`) are carried by the embedded [`RunOptions`] so
/// they mean exactly what they mean for `caesar run` — there is one
/// flag-to-config mapping, not two.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Tenants to host; names must be unique.
    pub tenants: Vec<TenantSpec>,
    /// TCP listen address for the framed ingest protocol.
    pub listen: String,
    /// Optional HTTP listen address for `/metrics` and `/healthz`.
    pub metrics_listen: Option<String>,
    /// Per-tenant ingest queue capacity (admission-control bound).
    pub queue_capacity: usize,
    /// Shared run flags. `model_text`/`schema_text`/`events_text` are
    /// unused (tenants carry their own texts); `shards` is the
    /// per-tenant shard count; `checkpoint_dir` is the drain-checkpoint
    /// root (one subdirectory per tenant).
    pub run: RunOptions,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            tenants: Vec::new(),
            listen: "127.0.0.1:0".into(),
            metrics_listen: None,
            queue_capacity: 1024,
            run: RunOptions::default(),
        }
    }
}

/// Builds one server tenant from its spec and the shared run flags.
pub fn build_tenant(
    spec: &TenantSpec,
    options: &ServeOptions,
) -> Result<caesar_server::TenantConfig, CliError> {
    let schemas = parse_schema_file(&spec.schema_text)?;
    let (program, registry, _explain) = apply_schemas(Caesar::builder(), &schemas)
        .model_text(&spec.model_text)
        .within(options.run.within)
        .build_program()
        .map_err(|e| CliError::System(format!("tenant '{}': {e}", spec.name)))?;
    let mut tenant = caesar_server::TenantConfig::new(&spec.name, program, registry);
    tenant.engine_config = engine_config(&options.run);
    tenant.shards = options.run.shards.max(1);
    tenant.queue_capacity = options.queue_capacity;
    Ok(tenant)
}

/// Maps [`ServeOptions`] onto a [`caesar_server::ServerConfig`]. The
/// CLI server always drains on SIGINT/SIGTERM; a `--checkpoint-dir`
/// makes that drain write per-tenant shard snapshots (and a restart
/// with the same directory resume from them).
pub fn serve_config(options: &ServeOptions) -> Result<caesar_server::ServerConfig, CliError> {
    if options.tenants.is_empty() {
        return Err(CliError::System(
            "serve needs at least one --tenant NAME=MODEL_FILE,SCHEMA_FILE".into(),
        ));
    }
    let mut tenants = Vec::with_capacity(options.tenants.len());
    for spec in &options.tenants {
        tenants.push(build_tenant(spec, options)?);
    }
    Ok(caesar_server::ServerConfig {
        listen: options.listen.clone(),
        metrics_listen: options.metrics_listen.clone(),
        tenants,
        drain_on_signal: true,
        checkpoint_dir: options.run.checkpoint_dir.clone(),
        ..caesar_server::ServerConfig::default()
    })
}

/// Starts the multi-tenant ingest server described by `options` and
/// returns its handle. The caller decides how to wait: the `caesar`
/// binary prints the bound addresses and parks on
/// [`caesar_server::ServerHandle::join`] until a signal or a client
/// `SHUTDOWN` drains the process.
pub fn serve(options: &ServeOptions) -> Result<caesar_server::ServerHandle, CliError> {
    let config = serve_config(options)?;
    caesar_server::Server::start(config).map_err(|e| CliError::System(e.to_string()))
}

/// Renders a drain summary as text (the tail of `caesar serve` output).
#[must_use]
pub fn render_drain_summary(summary: &caesar_server::DrainSummary) -> String {
    let mut s = String::from("drained:\n");
    for (name, outcome) in &summary.tenants {
        s.push_str(&format!(
            "  {name:20} in={} out={}{}{}\n",
            outcome.events_in,
            outcome.events_out,
            if outcome.checkpointed {
                " checkpointed"
            } else {
                ""
            },
            match &outcome.error {
                Some(e) => format!(" error: {e}"),
                None => String::new(),
            },
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "\
# traffic schema
PositionReport vid:int sec:int lane:str
ManySlowCars seg:int
FewFastCars seg:int
";

    const MODEL: &str = r#"
MODEL traffic DEFAULT clear
CONTEXT clear {
    SWITCH CONTEXT congestion PATTERN ManySlowCars
}
CONTEXT congestion {
    SWITCH CONTEXT clear PATTERN FewFastCars
    DERIVE TollNotification(p.vid, p.sec, 5)
        PATTERN PositionReport p WHERE p.lane != "exit"
}
"#;

    const EVENTS: &str = "\
# time partition type attrs...
1  0 PositionReport vid=7 sec=1 lane=travel
5  0 ManySlowCars seg=0
6  0 PositionReport vid=7 sec=6 lane=travel
7  0 PositionReport vid=8 sec=7 lane=exit
";

    #[test]
    fn schema_file_parses() {
        let schemas = parse_schema_file(SCHEMA).unwrap();
        assert_eq!(schemas.len(), 3);
        assert_eq!(schemas[0].0, "PositionReport");
        assert_eq!(schemas[0].1.len(), 3);
        assert_eq!(schemas[0].1[2], ("lane".to_string(), AttrType::Str));
    }

    #[test]
    fn schema_errors_carry_line_numbers() {
        let err = parse_schema_file("Good a:int\nBad a-int\n").unwrap_err();
        match err {
            CliError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
        let err = parse_schema_file("Bad a:quux\n").unwrap_err();
        assert!(err.to_string().contains("unknown type"));
    }

    #[test]
    fn value_literals() {
        assert_eq!(parse_value("42"), Value::Int(42));
        assert_eq!(parse_value("-1"), Value::Int(-1));
        assert_eq!(parse_value("2.5"), Value::Float(2.5));
        assert_eq!(parse_value("true"), Value::Bool(true));
        assert_eq!(parse_value("travel"), Value::str("travel"));
        assert_eq!(parse_value("\"exit\""), Value::str("exit"));
    }

    fn options() -> RunOptions {
        RunOptions {
            model_text: MODEL.into(),
            schema_text: SCHEMA.into(),
            events_text: EVENTS.into(),
            ..RunOptions::default()
        }
    }

    #[test]
    fn end_to_end_run() {
        let out = run(&options()).unwrap();
        assert!(out.contains("events in:           4"), "{out}");
        assert!(out.contains("TollNotification"), "{out}");
        // One toll: vid 7 at t=6 (vid 8 is on the exit lane).
        assert!(out.contains("TollNotification               1"), "{out}");
    }

    #[test]
    fn explain_lists_contributing_events() {
        let explained = RunOptions {
            explain: true,
            ..options()
        };
        let out = run(&explained).unwrap();
        // The single toll derives from the vid-7 report at t=6 (the
        // congestion context opened at t=5).
        assert!(out.contains("matches:"), "{out}");
        assert!(
            out.contains("TollNotification@6 <= PositionReport@6"),
            "{out}"
        );
        // Without the flag, no matches section and no provenance.
        let plain = run(&options()).unwrap();
        assert!(!plain.contains("matches:"), "{plain}");
    }

    #[test]
    fn event_parse_errors_are_located() {
        let system = build_system(&options()).unwrap();
        let err = parse_event_file("1 0 Ghost a=1\n", &system).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse_event_file("x 0 PositionReport\n", &system).unwrap_err();
        assert!(err.to_string().contains("timestamp"));
    }

    #[test]
    fn checkpointed_run_writes_and_resumes() {
        let dir = std::env::temp_dir().join(format!("caesar-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            ..options()
        };
        let out = run(&options).unwrap();
        assert!(out.contains("checkpoint dir:"), "{out}");
        assert!(out.contains("events in:           4"), "{out}");
        assert!(caesar_recovery::snapshot_path(&dir).exists());
        assert!(caesar_recovery::wal_path(&dir).exists());
        // A second run over the same file resumes at the end: nothing is
        // replayed, and the report matches the first run.
        let out2 = run(&options).unwrap();
        assert!(out2.contains("resumed at event:    4"), "{out2}");
        assert!(out2.contains("TollNotification               1"), "{out2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_reported_cleanly() {
        let dir = std::env::temp_dir().join(format!("caesar-cli-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let options = RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            ..options()
        };
        run(&options).unwrap();
        // Flip a payload byte: the next run must fail with the checksum
        // diagnostic instead of panicking or silently restarting.
        let snap = caesar_recovery::snapshot_path(&dir);
        let mut data = std::fs::read(&snap).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        std::fs::write(&snap, &data).unwrap();
        let err = run(&options).unwrap_err();
        assert!(
            err.to_string().contains("integrity check"),
            "unexpected error: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_size_flag_maps_to_policy_and_preserves_results() {
        assert_eq!(RunOptions::default().batch_policy(), BatchPolicy::default());
        let per_event = RunOptions {
            batch_size: Some(1),
            ..RunOptions::default()
        };
        assert_eq!(per_event.batch_policy(), BatchPolicy::per_event());
        let capped = RunOptions {
            batch_size: Some(64),
            ..RunOptions::default()
        };
        assert_eq!(capped.batch_policy(), BatchPolicy::bounded(64));

        // Every batch setting computes the same answer (drop the
        // measured-latency line; it folds in wall-clock service times).
        let deterministic = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.starts_with("max latency"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let baseline = deterministic(run(&options()).unwrap());
        for vectorize in [true, false] {
            for batch_size in [Some(1), Some(2), None] {
                let out = run(&RunOptions {
                    batch_size,
                    vectorize,
                    ..options()
                })
                .unwrap();
                assert_eq!(
                    deterministic(out),
                    baseline,
                    "batch_size={batch_size:?} vectorize={vectorize}"
                );
            }
        }
    }

    #[test]
    fn serve_hosts_tenants_through_the_run_flag_plumbing() {
        use caesar_server::{Client, Request, Response};

        caesar_server::signal::reset();
        let serve_options = ServeOptions {
            tenants: vec![
                TenantSpec {
                    name: "east".into(),
                    model_text: MODEL.into(),
                    schema_text: SCHEMA.into(),
                },
                TenantSpec {
                    name: "west".into(),
                    model_text: MODEL.into(),
                    schema_text: SCHEMA.into(),
                },
            ],
            run: RunOptions {
                shards: 2,
                observability: ObservabilityLevel::Counters,
                ..RunOptions::default()
            },
            ..ServeOptions::default()
        };
        let handle = serve(&serve_options).unwrap();

        // The same event file `caesar run` takes, round-tripped over TCP.
        let system = build_system(&options()).unwrap();
        let events = parse_event_file(EVENTS, &system).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        for tenant in ["east", "west"] {
            let reply = client
                .roundtrip(&Request::Ingest {
                    tenant: tenant.into(),
                    events: events.clone(),
                })
                .unwrap();
            assert_eq!(reply, Response::Ack);
        }
        let reply = client
            .roundtrip(&Request::Finish {
                tenant: "east".into(),
            })
            .unwrap();
        let Response::Report(report) = reply else {
            panic!("expected report, got {reply:?}");
        };
        // Same answer as the embedded `run` over the same file: 4 events
        // in, one toll (vid 8 is on the exit lane).
        assert_eq!(report.events_in, 4);
        assert_eq!(report.outputs_of("TollNotification"), 1);

        handle.shutdown();
        let summary = handle.join();
        assert!(summary.clean(), "{:?}", summary.tenants);
        let rendered = render_drain_summary(&summary);
        assert!(rendered.contains("west"), "{rendered}");
    }

    #[test]
    fn serve_config_rejects_empty_tenant_list_and_bad_models() {
        let Err(err) = serve_config(&ServeOptions::default()) else {
            panic!("empty tenant list must be rejected");
        };
        assert!(err.to_string().contains("--tenant"), "{err}");

        let bad = ServeOptions {
            tenants: vec![TenantSpec {
                name: "t".into(),
                model_text: "MODEL broken".into(),
                schema_text: SCHEMA.into(),
            }],
            ..ServeOptions::default()
        };
        let Err(err) = serve_config(&bad) else {
            panic!("broken model must be rejected");
        };
        assert!(err.to_string().contains("tenant 't'"), "{err}");
    }

    #[test]
    fn consistency_flag_maps_and_preserves_results() {
        assert_eq!(
            engine_config(&RunOptions::default()).consistency,
            Consistency::Strict
        );
        let speculative = RunOptions {
            consistency: Consistency::Speculative,
            ..options()
        };
        assert_eq!(
            engine_config(&speculative).consistency,
            Consistency::Speculative
        );
        // Settled results are identical across consistency levels.
        let deterministic = |report: String| -> String {
            report
                .lines()
                .filter(|l| !l.starts_with("max latency"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            deterministic(run(&speculative).unwrap()),
            deterministic(run(&options()).unwrap())
        );
        // Checkpointed speculative runs settle before every snapshot;
        // the run still completes and resumes like a strict one.
        let dir = std::env::temp_dir().join(format!("caesar-cli-spec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let checkpointed = RunOptions {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            ..speculative
        };
        let out = run(&checkpointed).unwrap();
        assert!(out.contains("TollNotification               1"), "{out}");
        let out2 = run(&checkpointed).unwrap();
        assert!(out2.contains("resumed at event:    4"), "{out2}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ci_mode_flag_respected() {
        let options = RunOptions {
            mode: ExecutionMode::ContextIndependent,
            ..options()
        };
        let out = run(&options).unwrap();
        assert!(out.contains("plans suspended:     0"), "{out}");
    }

    #[test]
    fn metrics_flags_render_and_write_json() {
        let json_path =
            std::env::temp_dir().join(format!("caesar-cli-metrics-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&json_path);
        let out = run(&RunOptions {
            observability: ObservabilityLevel::Spans,
            metrics: true,
            metrics_json: Some(json_path.clone()),
            ..options()
        })
        .unwrap();
        assert!(out.contains("metrics (level: spans):"), "{out}");
        assert!(out.contains("events_ingested"), "{out}");
        assert!(out.contains("stage spans"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("\"operators\""), "{json}");
        assert!(json.contains("\"contexts\""), "{json}");
        // Same inputs at Off must still compute the same answer, with
        // the report carrying the always-on operator accounting.
        let off = run(&RunOptions {
            metrics: true,
            ..options()
        })
        .unwrap();
        assert!(off.contains("events in:           4"), "{off}");
        let _ = std::fs::remove_file(&json_path);
    }
}
