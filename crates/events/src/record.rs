//! Revisioned output records for speculative execution.
//!
//! Under strict consistency the engine's output is a plain event
//! sequence. Under speculative consistency (CEDR-style "emit
//! immediately, compensate later"), the output is a sequence of
//! [`OutputRecord`]s: every derived event is first *emitted*
//! speculatively, and a late arrival that invalidates it produces a
//! *retraction* of the exact event followed by corrected emissions.
//! Folding the record sequence — cancelling each retraction against a
//! previous emission of the same event — recovers the strict output as
//! a multiset; the testkit's canonicalizer holds the engine to that
//! equality on every generated workload.

use crate::event::Event;
use crate::provenance::Provenance;

/// One entry of a speculative output stream: an emission or the
/// compensating retraction of a previously emitted event.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputRecord {
    /// A derived event, emitted as soon as its inputs were processed.
    Emit(Event),
    /// Retracts one previous [`Emit`](OutputRecord::Emit) of exactly
    /// this event (same type, occurrence interval, partition and
    /// attribute values). Retractions always precede the corrected
    /// emissions of the revision that produced them.
    Retract(Event),
}

impl OutputRecord {
    /// The event this record carries, emission or retraction alike.
    #[must_use]
    pub fn event(&self) -> &Event {
        match self {
            OutputRecord::Emit(e) | OutputRecord::Retract(e) => e,
        }
    }

    /// True for [`Retract`](OutputRecord::Retract) records.
    #[must_use]
    pub fn is_retraction(&self) -> bool {
        matches!(self, OutputRecord::Retract(_))
    }

    /// Match provenance of the carried event — the contributing
    /// primitive events of each pattern step. `None` unless the
    /// producing engine ran in provenance-collecting mode (provenance
    /// survives the wire round-trip, so served subscriptions see it in
    /// `Client::take_records` too).
    #[must_use]
    pub fn provenance(&self) -> Option<&Provenance> {
        self.event().provenance.as_deref()
    }
}
