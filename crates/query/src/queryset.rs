//! Phase 1 of the CAESAR model translation (§4.2): model → machine-
//! readable query set.
//!
//! "During this phase, contexts that are implied by the CAESAR model
//! (the optional clauses in square brackets in Figure 3) become mandatory
//! clauses of the CAESAR event queries. As a result, an event query that
//! belongs to a context c has a mandatory clause CONTEXT c."
//!
//! A query appearing in several contexts (e.g. accident detection in both
//! *clear* and *congestion*, §3.3) is compiled once per context so that
//! each compiled instance lives in exactly one combined query plan; the
//! optimizer's workload-sharing pass may later merge them again.

use crate::ast::{EventQuery, QueryId};
use crate::error::QueryError;
use crate::model::CaesarModel;
use serde::{Deserialize, Serialize};

/// A query with its mandatory context, as produced by Phase 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledQuery {
    /// Unique id within the set.
    pub id: QueryId,
    /// The underlying query (with `contexts` made explicit and singular).
    pub query: EventQuery,
    /// The single context this compiled instance belongs to.
    pub context: String,
    /// Id of the *source* query in the model: compiled instances of the
    /// same model query in different contexts share this, which is what
    /// the workload-sharing optimizer keys on.
    pub source: u32,
}

impl CompiledQuery {
    /// Returns `true` for compiled context-deriving queries.
    #[must_use]
    pub fn is_deriving(&self) -> bool {
        self.query.is_deriving()
    }
}

/// The machine-readable query set: every query carries a mandatory
/// `CONTEXT` clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySet {
    /// Application name (from the model).
    pub name: String,
    /// The default context `c_d`.
    pub default_context: String,
    /// Context type names sorted alphabetically — bit-vector order (§6.2).
    pub context_names: Vec<String>,
    /// All compiled queries.
    pub queries: Vec<CompiledQuery>,
}

impl QuerySet {
    /// Runs Phase 1 on a validated model.
    pub fn from_model(model: &CaesarModel) -> Result<Self, QueryError> {
        model.validate()?;
        let mut context_names: Vec<String> =
            model.contexts.iter().map(|c| c.name.clone()).collect();
        context_names.sort_unstable();

        let mut queries = Vec::new();
        let mut source = 0u32;
        let mut next_id = 0u32;
        for ctx in &model.contexts {
            for query in ctx.deriving.iter().chain(ctx.processing.iter()) {
                // Contexts listed on the query (defaulting to the
                // enclosing context) each get a compiled instance.
                let contexts: Vec<String> = if query.contexts.is_empty() {
                    vec![ctx.name.clone()]
                } else {
                    query.contexts.clone()
                };
                for context in contexts {
                    let mut q = query.clone();
                    q.contexts = vec![context.clone()];
                    queries.push(CompiledQuery {
                        id: QueryId(next_id),
                        query: q,
                        context,
                        source,
                    });
                    next_id += 1;
                }
                source += 1;
            }
        }
        Ok(Self {
            name: model.name.clone(),
            default_context: model.default_context.clone(),
            context_names,
            queries,
        })
    }

    /// Index of a context in bit-vector (alphabetical) order.
    #[must_use]
    pub fn context_bit(&self, name: &str) -> Option<usize> {
        self.context_names
            .binary_search_by(|c| c.as_str().cmp(name))
            .ok()
    }

    /// All compiled queries belonging to one context.
    pub fn queries_in_context<'a>(
        &'a self,
        context: &'a str,
    ) -> impl Iterator<Item = &'a CompiledQuery> {
        self.queries.iter().filter(move |q| q.context == context)
    }

    /// All compiled context-deriving queries.
    pub fn deriving_queries(&self) -> impl Iterator<Item = &CompiledQuery> {
        self.queries.iter().filter(|q| q.is_deriving())
    }

    /// All compiled context-processing queries.
    pub fn processing_queries(&self) -> impl Iterator<Item = &CompiledQuery> {
        self.queries.iter().filter(|q| !q.is_deriving())
    }

    /// Looks up a compiled query by id.
    #[must_use]
    pub fn query(&self, id: QueryId) -> Option<&CompiledQuery> {
        self.queries.get(id.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_model;

    fn model() -> CaesarModel {
        parse_model(
            r#"
            MODEL traffic DEFAULT clear
            CONTEXT clear {
                SWITCH CONTEXT congestion PATTERN ManySlowCars
                INITIATE CONTEXT accident PATTERN StoppedCars CONTEXT clear, congestion
            }
            CONTEXT congestion {
                DERIVE TollNotification(p.vid, p.sec, 5) PATTERN NewTravelingCar p
                SWITCH CONTEXT clear PATTERN FewFastCars
            }
            CONTEXT accident {
                TERMINATE CONTEXT accident PATTERN StoppedCarsRemoved
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn every_compiled_query_has_exactly_one_context() {
        let qs = QuerySet::from_model(&model()).unwrap();
        for q in &qs.queries {
            assert_eq!(q.query.contexts.len(), 1);
            assert_eq!(q.query.contexts[0], q.context);
        }
    }

    #[test]
    fn multi_context_query_expands_to_instances_sharing_source() {
        let qs = QuerySet::from_model(&model()).unwrap();
        // Accident detection appears in clear AND congestion.
        let instances: Vec<_> = qs
            .queries
            .iter()
            .filter(|q| {
                q.query
                    .action
                    .as_ref()
                    .is_some_and(|a| a.target() == "accident" && a.keyword() == "INITIATE")
            })
            .collect();
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].source, instances[1].source);
        let ctxs: Vec<_> = instances.iter().map(|q| q.context.as_str()).collect();
        assert!(ctxs.contains(&"clear"));
        assert!(ctxs.contains(&"congestion"));
    }

    #[test]
    fn context_names_are_alphabetical() {
        let qs = QuerySet::from_model(&model()).unwrap();
        assert_eq!(qs.context_names, vec!["accident", "clear", "congestion"]);
        assert_eq!(qs.context_bit("accident"), Some(0));
        assert_eq!(qs.context_bit("congestion"), Some(2));
        assert_eq!(qs.context_bit("ghost"), None);
    }

    #[test]
    fn deriving_and_processing_partition() {
        let qs = QuerySet::from_model(&model()).unwrap();
        let total = qs.queries.len();
        let deriving = qs.deriving_queries().count();
        let processing = qs.processing_queries().count();
        assert_eq!(deriving + processing, total);
        assert_eq!(processing, 1); // only the toll query
    }

    #[test]
    fn queries_in_context_filters() {
        let qs = QuerySet::from_model(&model()).unwrap();
        let clear: Vec<_> = qs.queries_in_context("clear").collect();
        assert_eq!(clear.len(), 2); // switch + accident initiation instance
    }

    #[test]
    fn ids_are_dense_and_resolvable() {
        let qs = QuerySet::from_model(&model()).unwrap();
        for (i, q) in qs.queries.iter().enumerate() {
            assert_eq!(q.id.index(), i);
            assert_eq!(qs.query(q.id).unwrap().id, q.id);
        }
    }
}
