//! Offline shim for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides
//! the subset of serde this workspace relies on: `Serialize` /
//! `Deserialize` traits plus `#[derive(...)]`, over one fixed,
//! deterministic wire format (field-ordered little-endian binary)
//! instead of serde's pluggable-format architecture. That is exactly
//! what the checkpoint subsystem needs: a stable byte encoding of
//! engine state.
//!
//! Wire format summary: integers are fixed-width little-endian, `usize`
//! lengths travel as `u64`, floats as IEEE-754 bits, `Option` and enum
//! variants as integer tags, and sequences/maps/strings as a length
//! followed by their elements in order.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

/// Decoding error (unexpected end of input, bad tag, invalid data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Input ended before a value was fully decoded.
    pub fn eof() -> Self {
        Error::custom("unexpected end of input")
    }

    /// An enum tag did not match any variant of `ty`.
    pub fn unknown_variant(ty: &str, tag: u32) -> Self {
        Error::custom(format!("unknown variant tag {tag} for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Byte-sink the shim serializes into.
#[derive(Debug, Default)]
pub struct Serializer {
    buf: Vec<u8>,
}

impl Serializer {
    /// Creates an empty serializer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the serializer, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a sequence length as `u64` little-endian.
    pub fn write_len(&mut self, len: usize) {
        self.write_bytes(&(len as u64).to_le_bytes());
    }
}

/// Byte-source the shim deserializes from.
#[derive(Debug)]
pub struct Deserializer<'a> {
    input: &'a [u8],
}

impl<'a> Deserializer<'a> {
    /// Wraps an input slice.
    #[must_use]
    pub fn new(input: &'a [u8]) -> Self {
        Self { input }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Consumes exactly `n` bytes.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.input.len() < n {
            return Err(Error::eof());
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn read_array<const N: usize>(&mut self) -> Result<[u8; N], Error> {
        let bytes = self.read_bytes(N)?;
        Ok(bytes.try_into().expect("split_at guarantees length"))
    }

    /// Reads a `u64` length and sanity-checks it against the remaining
    /// input so corrupted lengths fail fast instead of over-allocating.
    pub fn read_len(&mut self) -> Result<usize, Error> {
        let len = u64::from_le_bytes(self.read_array()?);
        let len = usize::try_from(len).map_err(|_| Error::custom("length overflows usize"))?;
        if len > self.input.len() {
            return Err(Error::custom(format!(
                "declared length {len} exceeds {} remaining bytes",
                self.input.len()
            )));
        }
        Ok(len)
    }
}

/// Types encodable to the shim's binary format.
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Serializer);
}

/// Types decodable from the shim's binary format.
pub trait Deserialize: Sized {
    /// Decodes one value from the front of `de`.
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error>;
}

/// Encodes `value` to bytes.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Serializer::new();
    value.serialize(&mut out);
    out.into_bytes()
}

/// Decodes a `T` from `bytes`, requiring all input to be consumed.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut de = Deserializer::new(bytes);
    let value = T::deserialize(&mut de)?;
    if de.remaining() != 0 {
        return Err(Error::custom(format!(
            "{} trailing bytes after value",
            de.remaining()
        )));
    }
    Ok(value)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Serializer) {
        (**self).serialize(out);
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Serializer) {
                out.write_bytes(&self.to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
                Ok(<$t>::from_le_bytes(de.read_array()?))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self, out: &mut Serializer) {
        (*self as u64).serialize(out);
    }
}

impl Deserialize for usize {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        usize::try_from(u64::deserialize(de)?).map_err(|_| Error::custom("usize overflow"))
    }
}

impl Serialize for isize {
    fn serialize(&self, out: &mut Serializer) {
        (*self as i64).serialize(out);
    }
}

impl Deserialize for isize {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        isize::try_from(i64::deserialize(de)?).map_err(|_| Error::custom("isize overflow"))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Serializer) {
        out.write_bytes(&[u8::from(*self)]);
    }
}

impl Deserialize for bool {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        match u8::deserialize(de)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::custom(format!("invalid bool byte {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Serializer) {
        self.to_bits().serialize(out);
    }
}

impl Deserialize for f32 {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(f32::from_bits(u32::deserialize(de)?))
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Serializer) {
        self.to_bits().serialize(out);
    }
}

impl Deserialize for f64 {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(f64::from_bits(u64::deserialize(de)?))
    }
}

impl Serialize for char {
    fn serialize(&self, out: &mut Serializer) {
        (*self as u32).serialize(out);
    }
}

impl Deserialize for char {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        char::from_u32(u32::deserialize(de)?).ok_or_else(|| Error::custom("invalid char"))
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Serializer) {
        out.write_len(self.len());
        out.write_bytes(self.as_bytes());
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Serializer) {
        self.as_str().serialize(out);
    }
}

impl Deserialize for String {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = de.read_len()?;
        let bytes = de.read_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::custom("invalid utf-8 string"))
    }
}

impl Serialize for () {
    fn serialize(&self, _out: &mut Serializer) {}
}

impl Deserialize for () {
    fn deserialize(_de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(())
    }
}

impl<T> Serialize for PhantomData<T> {
    fn serialize(&self, _out: &mut Serializer) {}
}

impl<T> Deserialize for PhantomData<T> {
    fn deserialize(_de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(PhantomData)
    }
}

impl Serialize for Duration {
    fn serialize(&self, out: &mut Serializer) {
        self.as_secs().serialize(out);
        self.subsec_nanos().serialize(out);
    }
}

impl Deserialize for Duration {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        let secs = u64::deserialize(de)?;
        let nanos = u32::deserialize(de)?;
        if nanos >= 1_000_000_000 {
            return Err(Error::custom("duration nanos out of range"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Serializer) {
        match self {
            None => out.write_bytes(&[0]),
            Some(v) => {
                out.write_bytes(&[1]);
                v.serialize(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        match u8::deserialize(de)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(de)?)),
            other => Err(Error::custom(format!("invalid Option tag {other}"))),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(
    iter: impl ExactSizeIterator<Item = &'a T>,
    out: &mut Serializer,
) {
    out.write_len(iter.len());
    for item in iter {
        item.serialize(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Serializer) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = de.read_len()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::deserialize(de)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Serializer) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut Serializer) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = de.read_len()?;
        if len != N {
            return Err(Error::custom(format!("expected array of {N}, got {len}")));
        }
        let mut v = Vec::with_capacity(N);
        for _ in 0..N {
            v.push(T::deserialize(de)?);
        }
        v.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, out: &mut Serializer) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(de)?.into())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Serializer) {
        out.write_len(self.len());
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = de.read_len()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            map.insert(K::deserialize(de)?, V::deserialize(de)?);
        }
        Ok(map)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self, out: &mut Serializer) {
        // Sorted for a deterministic encoding regardless of hash order.
        out.write_len(self.len());
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (k, v) in entries {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        let len = de.read_len()?;
        let mut map = HashMap::with_capacity(len);
        for _ in 0..len {
            map.insert(K::deserialize(de)?, V::deserialize(de)?);
        }
        Ok(map)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self, out: &mut Serializer) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(de)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn serialize(&self, out: &mut Serializer) {
        out.write_len(self.len());
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        for item in items {
            item.serialize(out);
        }
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(de)?.into_iter().collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, out: &mut Serializer) {
        (**self).serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(de)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn serialize(&self, out: &mut Serializer) {
        (**self).serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Rc::new(T::deserialize(de)?))
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize(&self, out: &mut Serializer) {
        (**self).serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Arc::new(T::deserialize(de)?))
    }
}

impl Deserialize for Arc<str> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(String::deserialize(de)?.into())
    }
}

impl Deserialize for Box<str> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(String::deserialize(de)?.into())
    }
}

impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(de)?.into())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut Serializer) {
                $(self.$idx.serialize(out);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(de: &mut Deserializer<'_>) -> Result<Self, Error> {
                Ok(($($t::deserialize(de)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(from_bytes::<u64>(&to_bytes(&42u64)).unwrap(), 42);
        assert_eq!(from_bytes::<i64>(&to_bytes(&-7i64)).unwrap(), -7);
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert_eq!(from_bytes::<f64>(&to_bytes(&1.5f64)).unwrap(), 1.5);
        assert_eq!(
            from_bytes::<String>(&to_bytes("héllo")).unwrap(),
            "héllo".to_string()
        );
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![Some(1u32), None, Some(3)];
        assert_eq!(from_bytes::<Vec<Option<u32>>>(&to_bytes(&v)).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        assert_eq!(
            from_bytes::<BTreeMap<String, u64>>(&to_bytes(&m)).unwrap(),
            m
        );
        let d: VecDeque<u8> = vec![1, 2, 3].into();
        assert_eq!(from_bytes::<VecDeque<u8>>(&to_bytes(&d)).unwrap(), d);
    }

    #[test]
    fn corrupt_length_is_error_not_panic() {
        let mut bytes = to_bytes(&vec![1u8, 2, 3]);
        bytes[0] = 0xff; // inflate the declared length
        assert!(from_bytes::<Vec<u8>>(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u32);
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }
}
