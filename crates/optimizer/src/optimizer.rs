//! The CAESAR optimizer pipeline (§5): translation output in, optimized
//! program out.
//!
//! Passes, in order:
//! 1. context window push-down (Theorem 1),
//! 2. adjacent-filter merging,
//! 3. predicate push-down into pattern operators,
//! 4. workload-sharing detection (one execution per structurally
//!    identical query),
//! 5. context window grouping over the subsumption-derived window specs
//!    of the deriving queries (Listing 1).

use crate::grouping::{group_windows, GroupingResult, UserWindow};
use crate::mqo::{find_sharing, total_savings, SharedWorkload};
use crate::pushdown::{
    merge_adjacent_filters, push_down_context_window, push_predicates_into_pattern,
};
use crate::subsume::{derive_window_specs, window_relation, WindowRelation, WindowSpec};
use caesar_algebra::cost::{plan_cost, Stats};
use caesar_algebra::translate::TranslationOutput;
use caesar_events::SchemaRegistry;
use caesar_query::ast::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which optimizations to apply. Disabling everything yields the
/// "non-optimized query plan" baseline of Figure 11(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Push context windows to the bottom of every chain (§5.2).
    pub push_down_context_windows: bool,
    /// Merge adjacent filter operators.
    pub merge_filters: bool,
    /// Install eagerly-evaluable conjuncts as pattern step predicates.
    pub push_predicates: bool,
    /// Detect structurally identical queries and execute them once
    /// (§5.3).
    pub share_workloads: bool,
    /// Run queries whose compiled patterns agree on a pattern prefix
    /// over one shared partial-match store per optimizer group
    /// ([`crate::grouping::shared_prefix_groups`]). Off by default:
    /// prefix sharing changes only throughput, never outputs, but the
    /// runtime must opt in because shared state participates in
    /// checkpoints.
    pub share_prefixes: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        Self {
            push_down_context_windows: true,
            merge_filters: true,
            push_predicates: true,
            share_workloads: true,
            share_prefixes: false,
        }
    }
}

impl OptimizerConfig {
    /// The all-off baseline configuration.
    #[must_use]
    pub fn unoptimized() -> Self {
        Self {
            push_down_context_windows: false,
            merge_filters: false,
            push_predicates: false,
            share_workloads: false,
            share_prefixes: false,
        }
    }
}

/// The CAESAR optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimizer {
    /// Enabled passes.
    pub config: OptimizerConfig,
    /// Statistics feeding the cost model.
    pub stats: Stats,
}

/// An optimized, executable program.
#[derive(Debug, Clone)]
pub struct OptimizedProgram {
    /// The (rewritten) combined plans per context.
    pub translation: TranslationOutput,
    /// Sharing groups across the whole workload.
    pub sharing: Vec<SharedWorkload>,
    /// Grouped context windows (empty when no overlap is inferable).
    pub grouping: GroupingResult,
    /// The compile-time window specs the grouping was computed from.
    pub window_specs: Vec<WindowSpec>,
    /// Estimated cost before optimization (cost-model units).
    pub cost_before: f64,
    /// Estimated cost after optimization.
    pub cost_after: f64,
    /// Whether the runtime should install shared-prefix groups when it
    /// builds execution state from this program.
    pub share_prefixes: bool,
}

impl OptimizedProgram {
    /// Queries whose execution is saved by sharing.
    #[must_use]
    pub fn shared_savings(&self) -> usize {
        total_savings(&self.sharing)
    }

    /// Human-readable optimization report.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "estimated cost: {:.1} -> {:.1}\n",
            self.cost_before, self.cost_after
        ));
        s.push_str(&format!(
            "sharing groups: {} (saving {} executions)\n",
            self.sharing.len(),
            self.shared_savings()
        ));
        s.push_str(&format!(
            "grouped windows: {} (from {} split originals)\n",
            self.grouping.windows.len(),
            self.grouping.split_count
        ));
        for c in &self.translation.combined {
            s.push_str(&c.explain());
        }
        s
    }
}

impl Optimizer {
    /// Creates an optimizer with the given configuration and statistics.
    #[must_use]
    pub fn new(config: OptimizerConfig, stats: Stats) -> Self {
        Self { config, stats }
    }

    /// Runs all enabled passes.
    #[must_use]
    pub fn optimize(
        &self,
        mut translation: TranslationOutput,
        registry: &SchemaRegistry,
    ) -> OptimizedProgram {
        let cost_before = self.total_cost(&translation);

        for combined in &mut translation.combined {
            for plan in &mut combined.plans {
                if self.config.push_down_context_windows {
                    push_down_context_window(plan);
                }
                if self.config.merge_filters {
                    merge_adjacent_filters(plan);
                }
                if self.config.push_predicates {
                    push_predicates_into_pattern(plan, registry);
                }
            }
        }

        let sharing = if self.config.share_workloads {
            let all: Vec<&caesar_query::queryset::CompiledQuery> = translation
                .combined
                .iter()
                .flat_map(|c| c.plans.iter().map(|p| p.source.as_ref()))
                .collect();
            find_sharing(&all)
        } else {
            Vec::new()
        };

        // Subsumption analysis over the deriving queries → window specs
        // → grouping.
        let deriving: Vec<(QueryId, &caesar_query::ast::EventQuery)> = translation
            .combined
            .iter()
            .flat_map(|c| c.plans.iter())
            .filter(|p| p.is_deriving)
            .map(|p| (p.query_id, &p.source.query))
            .collect();
        let mut workloads: BTreeMap<String, Vec<QueryId>> = BTreeMap::new();
        for c in &translation.combined {
            workloads.insert(
                c.context.clone(),
                c.plans.iter().map(|p| p.query_id).collect(),
            );
        }
        let window_specs = derive_window_specs(&deriving, &workloads);
        let grouping = if window_specs.len() >= 2
            && window_specs.iter().enumerate().any(|(i, a)| {
                window_specs[i + 1..].iter().any(|b| {
                    window_relation(a, b) == WindowRelation::Overlaps
                        || window_relation(a, b) == WindowRelation::ContainedIn
                })
            }) {
            group_windows(
                window_specs
                    .iter()
                    .map(|s| {
                        UserWindow::new(
                            s.context.clone(),
                            s.start.value,
                            s.end.value,
                            s.queries.clone(),
                        )
                    })
                    .collect(),
            )
        } else {
            GroupingResult::default()
        };

        let cost_after = self.total_cost(&translation);
        OptimizedProgram {
            translation,
            sharing,
            grouping,
            window_specs,
            cost_before,
            cost_after,
            share_prefixes: self.config.share_prefixes,
        }
    }

    fn total_cost(&self, translation: &TranslationOutput) -> f64 {
        translation
            .combined
            .iter()
            .flat_map(|c| c.plans.iter())
            .map(|p| plan_cost(p, &self.stats))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::translate::{translate_query_set, TranslateOptions};
    use caesar_events::{AttrType, Schema};
    use caesar_query::parser::parse_model;
    use caesar_query::queryset::QuerySet;

    fn setup() -> (TranslationOutput, SchemaRegistry) {
        let model = parse_model(
            r#"
            MODEL m DEFAULT low
            CONTEXT low {
                INITIATE CONTEXT mid PATTERN Signal s WHERE s.x > 10
                INITIATE CONTEXT high PATTERN Signal s WHERE s.x > 20
                DERIVE Alert(r.v) PATTERN Reading r CONTEXT low, mid
            }
            CONTEXT mid {
                TERMINATE CONTEXT mid PATTERN Signal s WHERE s.x < 30
                DERIVE Pair(a.v, b.v) PATTERN SEQ(Reading a, Reading b)
                    WHERE a.v = b.v AND a.v > 5
            }
            CONTEXT high {
                TERMINATE CONTEXT high PATTERN Signal s WHERE s.x < 40
                DERIVE Spike(r.v) PATTERN Reading r WHERE r.v > 100
            }
        "#,
        )
        .unwrap();
        let qs = QuerySet::from_model(&model).unwrap();
        let mut reg = SchemaRegistry::new();
        reg.register(Schema::new("Signal", &[("x", AttrType::Int)]))
            .unwrap();
        reg.register(Schema::new("Reading", &[("v", AttrType::Int)]))
            .unwrap();
        let t = translate_query_set(&qs, &mut reg, &TranslateOptions::default()).unwrap();
        (t, reg)
    }

    #[test]
    fn default_pipeline_pushes_down_everything() {
        let (t, reg) = setup();
        let optimizer = Optimizer::default();
        let program = optimizer.optimize(t, &reg);
        for c in &program.translation.combined {
            for p in &c.plans {
                assert!(
                    p.is_context_window_pushed_down(),
                    "{} not pushed down",
                    p.explain()
                );
            }
        }
        assert!(program.cost_after <= program.cost_before);
    }

    #[test]
    fn unoptimized_config_changes_nothing() {
        let (t, reg) = setup();
        let before: Vec<String> = t
            .combined
            .iter()
            .flat_map(|c| c.plans.iter().map(|p| p.explain()))
            .collect();
        let optimizer = Optimizer::new(OptimizerConfig::unoptimized(), Stats::new());
        let program = optimizer.optimize(t, &reg);
        let after: Vec<String> = program
            .translation
            .combined
            .iter()
            .flat_map(|c| c.plans.iter().map(|p| p.explain()))
            .collect();
        assert_eq!(before, after);
        assert!(program.sharing.is_empty());
    }

    #[test]
    fn multi_context_instances_share() {
        let (t, reg) = setup();
        let program = Optimizer::default().optimize(t, &reg);
        // The Alert query lives in low AND mid → one sharing group of 2.
        assert!(
            program.sharing.iter().any(|s| s.members.len() == 2),
            "sharing: {:?}",
            program.sharing
        );
        assert_eq!(program.shared_savings(), 1);
    }

    #[test]
    fn window_specs_and_grouping_derived_from_thresholds() {
        let (t, reg) = setup();
        let program = Optimizer::default().optimize(t, &reg);
        // mid = [10, 30], high = [20, 40] ⇒ overlap ⇒ 3 grouped windows.
        assert_eq!(program.window_specs.len(), 2);
        assert_eq!(program.grouping.windows.len(), 3);
        assert_eq!(program.grouping.split_count, 2);
    }

    #[test]
    fn explain_mentions_key_facts() {
        let (t, reg) = setup();
        let program = Optimizer::default().optimize(t, &reg);
        let explain = program.explain();
        assert!(explain.contains("estimated cost"));
        assert!(explain.contains("sharing groups"));
        assert!(explain.contains("grouped windows: 3"));
    }

    #[test]
    fn cost_reduction_with_low_activity_contexts() {
        let (t, reg) = setup();
        let mut stats = Stats::new();
        stats.default_activity = 0.1;
        stats.default_rate = 100.0;
        let program = Optimizer::new(OptimizerConfig::default(), stats).optimize(t, &reg);
        assert!(
            program.cost_after < program.cost_before * 0.9,
            "push-down should cut >10% at 10% activity: {} -> {}",
            program.cost_before,
            program.cost_after
        );
    }
}
