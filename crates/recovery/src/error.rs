//! Typed failure modes of the durability layer.
//!
//! Every way a checkpoint directory can be wrong — missing, truncated,
//! bit-flipped, written by a different format version, or taken from an
//! engine built with a different model — maps to a distinct variant, so
//! callers (the CLI in particular) can report *what* is wrong with the
//! on-disk state instead of panicking mid-restore.

use caesar_events::CodecError;
use caesar_runtime::RestoreError;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong while writing or reading durable state.
#[derive(Debug)]
pub enum RecoveryError {
    /// The file does not start with the expected magic bytes — it is not
    /// a CAESAR snapshot / log, or its header was destroyed.
    BadMagic {
        /// File that failed the check.
        path: PathBuf,
        /// What the file claims to be (first 8 bytes, lossy).
        found: String,
    },
    /// The file was written by an incompatible format version.
    VersionMismatch {
        /// File that failed the check.
        path: PathBuf,
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The snapshot payload does not match its recorded checksum: the
    /// file was corrupted after it was written.
    ChecksumMismatch {
        /// File that failed the check.
        path: PathBuf,
        /// Checksum recorded in the header.
        recorded: u64,
        /// Checksum of the payload as read.
        computed: u64,
    },
    /// The file is structurally broken (truncated header, impossible
    /// lengths, undecodable payload).
    Corrupt {
        /// File that failed the check.
        path: PathBuf,
        /// Human-readable description of the damage.
        detail: String,
    },
    /// The snapshot is intact but belongs to an engine built from a
    /// different model / configuration than the one restoring it.
    Incompatible(RestoreError),
    /// Replaying a logged event into the restored engine failed — the
    /// log and the snapshot disagree about the stream.
    Replay(String),
    /// An underlying filesystem operation failed.
    Io {
        /// File (or directory) the operation touched.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
}

impl RecoveryError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        Self::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        Self::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }

    pub(crate) fn codec(path: impl Into<PathBuf>, e: CodecError) -> Self {
        Self::Corrupt {
            path: path.into(),
            detail: format!("undecodable event frame: {e:?}"),
        }
    }
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic { path, found } => write!(
                f,
                "{} is not a CAESAR recovery file (magic {found:?})",
                path.display()
            ),
            Self::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{} uses format version {found}, this build supports version {expected}",
                path.display()
            ),
            Self::ChecksumMismatch {
                path,
                recorded,
                computed,
            } => write!(
                f,
                "{} failed its integrity check (recorded {recorded:#018x}, computed {computed:#018x})",
                path.display()
            ),
            Self::Corrupt { path, detail } => {
                write!(f, "{} is corrupt: {detail}", path.display())
            }
            Self::Incompatible(e) => write!(f, "snapshot is incompatible with this engine: {e}"),
            Self::Replay(detail) => write!(f, "event log replay failed: {detail}"),
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Incompatible(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RestoreError> for RecoveryError {
    fn from(e: RestoreError) -> Self {
        Self::Incompatible(e)
    }
}
