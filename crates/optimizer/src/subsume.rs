//! Predicate subsumption over context-deriving queries (Definition 2,
//! Figure 7 top).
//!
//! "Even though the exact start time of context windows is not known at
//! compile time, the order of their beginning can be determined for
//! overlapping context windows" — when the deriving predicates are
//! threshold comparisons over a shared monotone signal (`initiate c1 if
//! X > 10`, `initiate c2 if X > 20`), the window of `c1` is guaranteed to
//! start no later than the window of `c2`, and `c1` terminating at
//! `X < 30` before `c2`'s `X < 40` orders the ends likewise. "CAESAR
//! employs established approaches for predicate subsumption \[14\]."

use caesar_events::Value;
use caesar_query::ast::{BinOp, ContextAction, EventQuery, Expr, QueryId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A one-sided threshold constraint `attr OP value` extracted from a
/// deriving query's `WHERE` clause.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdBound {
    /// Comparison direction: `true` for `>` / `>=` (lower bound).
    pub is_lower: bool,
    /// The threshold value.
    pub value: f64,
    /// Whether equality is included (`>=` / `<=`).
    pub inclusive: bool,
}

impl ThresholdBound {
    /// The *ordering key* of the window bound this threshold induces on a
    /// monotonically increasing signal: a higher lower-bound fires later.
    #[must_use]
    pub fn order_key(&self) -> f64 {
        self.value
    }
}

/// Compile-time window description of one context, extracted from the
/// deriving queries: the threshold that initiates it and the threshold
/// that terminates it, both over the same signal attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// The context name.
    pub context: String,
    /// Signal attribute both thresholds constrain.
    pub signal: String,
    /// Initiation threshold (e.g. `X > 10`).
    pub start: ThresholdBound,
    /// Termination threshold (e.g. `X < 30`).
    pub end: ThresholdBound,
    /// Queries in the context's workload.
    pub queries: Vec<QueryId>,
}

/// Relationship between two context windows (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowRelation {
    /// For each window of the first type there is an overlapping window
    /// of the second type.
    Overlaps,
    /// The first window is contained in the second.
    ContainedIn,
    /// The windows never share a time point (on a monotone signal).
    Disjoint,
    /// The predicates do not determine the relation.
    Unknown,
}

/// Extracts `attr OP const` from a conjunct, normalizing the constant to
/// the right-hand side.
fn extract_threshold(expr: &Expr) -> Option<(String, ThresholdBound)> {
    let Expr::Binary { op, lhs, rhs } = expr else {
        return None;
    };
    let (attr, value, op) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Attr { attr, .. }, Expr::Const(c)) => (attr.clone(), const_f64(c)?, *op),
        (Expr::Const(c), Expr::Attr { attr, .. }) => {
            // Flip: 10 < X ≡ X > 10.
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            (attr.clone(), const_f64(c)?, flipped)
        }
        _ => return None,
    };
    let bound = match op {
        BinOp::Gt => ThresholdBound {
            is_lower: true,
            value,
            inclusive: false,
        },
        BinOp::Ge => ThresholdBound {
            is_lower: true,
            value,
            inclusive: true,
        },
        BinOp::Lt => ThresholdBound {
            is_lower: false,
            value,
            inclusive: false,
        },
        BinOp::Le => ThresholdBound {
            is_lower: false,
            value,
            inclusive: true,
        },
        _ => return None,
    };
    Some((attr, bound))
}

fn const_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Derives compile-time window specs from a set of deriving queries.
///
/// For each context `c`, the initiation threshold comes from queries
/// performing `INITIATE c` / `SWITCH c`, the termination threshold from
/// `TERMINATE c` queries (or from a `SWITCH` away in `c`'s own workload).
/// Contexts whose bounds cannot be extracted as single thresholds over a
/// common signal are omitted (relation [`WindowRelation::Unknown`]).
#[must_use]
pub fn derive_window_specs(
    deriving: &[(QueryId, &EventQuery)],
    workloads: &BTreeMap<String, Vec<QueryId>>,
) -> Vec<WindowSpec> {
    #[derive(Default)]
    struct Partial {
        start: Option<(String, ThresholdBound)>,
        end: Option<(String, ThresholdBound)>,
    }
    let mut partials: BTreeMap<String, Partial> = BTreeMap::new();
    for (_, query) in deriving {
        let Some(action) = &query.action else {
            continue;
        };
        let Some(where_clause) = &query.where_clause else {
            continue;
        };
        let conjuncts = where_clause.conjuncts();
        if conjuncts.len() != 1 {
            continue;
        }
        let Some(threshold) = extract_threshold(conjuncts[0]) else {
            continue;
        };
        match action {
            ContextAction::Initiate(c) => {
                partials.entry(c.clone()).or_default().start = Some(threshold);
            }
            ContextAction::Terminate(c) => {
                partials.entry(c.clone()).or_default().end = Some(threshold);
            }
            ContextAction::Switch(c) => {
                // Switch initiates the target and terminates the source.
                partials.entry(c.clone()).or_default().start = Some(threshold.clone());
                if let Some(source) = query.contexts.first() {
                    partials.entry(source.clone()).or_default().end = Some(threshold);
                }
            }
        }
    }
    partials
        .into_iter()
        .filter_map(|(context, p)| {
            let (start_attr, start) = p.start?;
            let (end_attr, end) = p.end?;
            if start_attr != end_attr {
                return None;
            }
            Some(WindowSpec {
                queries: workloads.get(&context).cloned().unwrap_or_default(),
                context,
                signal: start_attr,
                start,
                end,
            })
        })
        .collect()
}

/// Infers the relation between two window specs over the same monotone
/// signal (Figure 7: `c1 = (X>10, X<30)`, `c2 = (X>20, X<40)` overlap).
///
/// Following Figure 7, the window of a spec is read as the interval
/// `[start threshold, end threshold]` on the signal axis: `c1 = \[10,30\]`
/// starts no later than `c2 = \[20,40\]` and ends no later either, so the
/// two windows are *guaranteed to overlap* but neither contains the
/// other. Hysteresis-style specs (end threshold below the start
/// threshold, e.g. `initiate if load > 80, terminate if load < 20`) have
/// no interval reading and yield [`WindowRelation::Unknown`].
#[must_use]
pub fn window_relation(a: &WindowSpec, b: &WindowSpec) -> WindowRelation {
    if a.signal != b.signal {
        return WindowRelation::Unknown;
    }
    // Interval reading requires lower-bound starts, upper-bound ends and
    // non-inverted thresholds.
    let interval = |s: &WindowSpec| -> Option<(f64, f64)> {
        (s.start.is_lower && !s.end.is_lower && s.start.value <= s.end.value)
            .then_some((s.start.value, s.end.value))
    };
    let (Some((a_lo, a_hi)), Some((b_lo, b_hi))) = (interval(a), interval(b)) else {
        return WindowRelation::Unknown;
    };
    if a_hi < b_lo || b_hi < a_lo {
        return WindowRelation::Disjoint;
    }
    if b_lo <= a_lo && a_hi <= b_hi && (b_lo < a_lo || a_hi < b_hi) {
        return WindowRelation::ContainedIn;
    }
    WindowRelation::Overlaps
}

/// Orders all window bounds of the given specs on the shared signal axis,
/// returning `(order key, context, is_start)` sorted ascending — the
/// input the grouping algorithm's sweep consumes. At equal keys, ends
/// sort before starts so touching windows do not group.
#[must_use]
pub fn ordered_bounds(specs: &[WindowSpec]) -> Vec<(f64, String, bool)> {
    let mut bounds: Vec<(f64, String, bool)> = Vec::new();
    for s in specs {
        bounds.push((s.start.value, s.context.clone(), true));
        bounds.push((s.end.value, s.context.clone(), false));
    }
    bounds.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite keys")
            .then_with(|| a.2.cmp(&b.2)) // false (end) before true (start)
    });
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_query::ast::Pattern;

    fn deriving(action: ContextAction, ctx: &str, predicate: Expr) -> EventQuery {
        EventQuery {
            name: None,
            action: Some(action),
            derive: None,
            pattern: Pattern::event("Signal", "s"),
            where_clause: Some(predicate),
            within: None,
            contexts: vec![ctx.to_string()],
        }
    }

    fn figure7_queries() -> Vec<(QueryId, EventQuery)> {
        vec![
            (
                QueryId(0),
                deriving(
                    ContextAction::Initiate("c1".into()),
                    "default",
                    Expr::bin(BinOp::Gt, Expr::bare("X"), Expr::int(10)),
                ),
            ),
            (
                QueryId(1),
                deriving(
                    ContextAction::Initiate("c2".into()),
                    "default",
                    Expr::bin(BinOp::Gt, Expr::bare("X"), Expr::int(20)),
                ),
            ),
            (
                QueryId(2),
                deriving(
                    ContextAction::Terminate("c1".into()),
                    "c1",
                    Expr::bin(BinOp::Lt, Expr::bare("X"), Expr::int(30)),
                ),
            ),
            (
                QueryId(3),
                deriving(
                    ContextAction::Terminate("c2".into()),
                    "c2",
                    Expr::bin(BinOp::Lt, Expr::bare("X"), Expr::int(40)),
                ),
            ),
        ]
    }

    fn figure7_specs() -> Vec<WindowSpec> {
        let queries = figure7_queries();
        let refs: Vec<(QueryId, &EventQuery)> = queries.iter().map(|(id, q)| (*id, q)).collect();
        let mut workloads = BTreeMap::new();
        workloads.insert("c1".to_string(), vec![QueryId(10), QueryId(12)]); // Q1, Q3
        workloads.insert("c2".to_string(), vec![QueryId(10), QueryId(11)]); // Q1, Q2
        derive_window_specs(&refs, &workloads)
    }

    #[test]
    fn extracts_figure7_thresholds() {
        let specs = figure7_specs();
        assert_eq!(specs.len(), 2);
        let c1 = specs.iter().find(|s| s.context == "c1").unwrap();
        assert_eq!(c1.signal, "X");
        assert_eq!(c1.start.value, 10.0);
        assert!(c1.start.is_lower);
        assert_eq!(c1.end.value, 30.0);
        assert!(!c1.end.is_lower);
        assert_eq!(c1.queries, vec![QueryId(10), QueryId(12)]);
    }

    #[test]
    fn figure7_windows_overlap() {
        let specs = figure7_specs();
        let c1 = specs.iter().find(|s| s.context == "c1").unwrap();
        let c2 = specs.iter().find(|s| s.context == "c2").unwrap();
        assert_eq!(window_relation(c1, c2), WindowRelation::Overlaps);
    }

    #[test]
    fn containment_detected() {
        let outer = WindowSpec {
            context: "outer".into(),
            signal: "X".into(),
            start: ThresholdBound {
                is_lower: true,
                value: 5.0,
                inclusive: false,
            },
            end: ThresholdBound {
                is_lower: false,
                value: 50.0,
                inclusive: false,
            },
            queries: vec![],
        };
        let inner = WindowSpec {
            context: "inner".into(),
            signal: "X".into(),
            start: ThresholdBound {
                is_lower: true,
                value: 10.0,
                inclusive: false,
            },
            end: ThresholdBound {
                is_lower: false,
                value: 30.0,
                inclusive: false,
            },
            queries: vec![],
        };
        assert_eq!(window_relation(&inner, &outer), WindowRelation::ContainedIn);
    }

    #[test]
    fn different_signals_are_unknown() {
        let mut specs = figure7_specs();
        specs[1].signal = "Y".into();
        assert_eq!(
            window_relation(&specs[0], &specs[1]),
            WindowRelation::Unknown
        );
    }

    #[test]
    fn flipped_constant_side_normalizes() {
        // 20 < X ≡ X > 20.
        let (attr, bound) =
            extract_threshold(&Expr::bin(BinOp::Lt, Expr::int(20), Expr::bare("X"))).unwrap();
        assert_eq!(attr, "X");
        assert!(bound.is_lower);
        assert_eq!(bound.value, 20.0);
    }

    #[test]
    fn non_threshold_predicates_are_skipped() {
        assert!(
            extract_threshold(&Expr::bin(BinOp::Eq, Expr::bare("X"), Expr::bare("Y"))).is_none()
        );
        assert!(extract_threshold(&Expr::bare("X")).is_none());
    }

    #[test]
    fn switch_contributes_both_bounds() {
        let queries = [
            (
                QueryId(0),
                deriving(
                    ContextAction::Switch("busy".into()),
                    "idle",
                    Expr::bin(BinOp::Gt, Expr::bare("load"), Expr::int(80)),
                ),
            ),
            (
                QueryId(1),
                deriving(
                    ContextAction::Switch("idle".into()),
                    "busy",
                    Expr::bin(BinOp::Lt, Expr::bare("load"), Expr::int(20)),
                ),
            ),
        ];
        let refs: Vec<(QueryId, &EventQuery)> = queries.iter().map(|(id, q)| (*id, q)).collect();
        let specs = derive_window_specs(&refs, &BTreeMap::new());
        // busy: start load>80 (from switch into), end load<20 (switch away).
        let busy = specs.iter().find(|s| s.context == "busy").unwrap();
        assert_eq!(busy.start.value, 80.0);
        assert_eq!(busy.end.value, 20.0);
    }

    #[test]
    fn ordered_bounds_follow_figure7() {
        let specs = figure7_specs();
        let bounds = ordered_bounds(&specs);
        assert_eq!(bounds.len(), 4);
        // Figure 7 order: start c1 (10), start c2 (20), end c1 (30),
        // end c2 (40).
        assert!(bounds[0].2 && bounds[0].1 == "c1");
        assert!(bounds[1].2 && bounds[1].1 == "c2");
        assert!(!bounds[2].2 && bounds[2].1 == "c1");
        assert!(!bounds[3].2 && bounds[3].1 == "c2");
    }

    #[test]
    fn disjoint_windows_detected() {
        let a = WindowSpec {
            context: "a".into(),
            signal: "X".into(),
            start: ThresholdBound {
                is_lower: true,
                value: 0.0,
                inclusive: false,
            },
            end: ThresholdBound {
                is_lower: false,
                value: 10.0,
                inclusive: false,
            },
            queries: vec![],
        };
        let b = WindowSpec {
            context: "b".into(),
            signal: "X".into(),
            start: ThresholdBound {
                is_lower: true,
                value: 20.0,
                inclusive: false,
            },
            end: ThresholdBound {
                is_lower: false,
                value: 30.0,
                inclusive: false,
            },
            queries: vec![],
        };
        assert_eq!(window_relation(&a, &b), WindowRelation::Disjoint);
    }

    #[test]
    fn hysteresis_spec_is_unknown() {
        let a = WindowSpec {
            context: "busy".into(),
            signal: "load".into(),
            start: ThresholdBound {
                is_lower: true,
                value: 80.0,
                inclusive: false,
            },
            end: ThresholdBound {
                is_lower: false,
                value: 20.0,
                inclusive: false,
            },
            queries: vec![],
        };
        assert_eq!(window_relation(&a, &a), WindowRelation::Unknown);
    }
}
