//! Batched vs event-at-a-time hot-path throughput.
//!
//! The tentpole batching experiment: the same Linear Road streams are
//! run through identical engines that differ only in the batch policy,
//! and throughput (events per second of wall time, best of 3 like the
//! paper's three repetitions) is compared. Covers the sequential engine
//! at two stream densities and the sharded executor at 4 shards.
//!
//! ```text
//! cargo run --release -p caesar-bench --bin batching
//! ```
//!
//! Besides the printed table, results are written to
//! `BENCH_batching.json` in the current directory; EXPERIMENTS.md
//! records a committed run.

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, lr_model, lr_registry, LinearRoadConfig, TrafficSim};
use caesar_optimizer::Optimizer;
use caesar_query::QuerySet;
use caesar_runtime::run_sharded;
use std::time::Instant;

struct Row {
    label: String,
    events: u64,
    per_event_evs: f64,
    batched_evs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.batched_evs / self.per_event_evs
    }
}

fn lr_events(roads: u32, segments: u32, duration: u64, base: f64, peak: f64) -> Vec<Event> {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads,
        segments_per_road: segments,
        duration,
        seed: 11,
        base_cars: base,
        peak_cars: peak,
        ..Default::default()
    });
    sim.generate()
}

/// Best-of-3 wall-clock throughput (events/second) of a sequential run.
fn sequential_throughput(policy: BatchPolicy, events: &[Event]) -> f64 {
    (0..3)
        .map(|_| {
            let mut system = build_lr_system(
                1,
                OptimizerConfig::default(),
                EngineConfig {
                    batch: policy,
                    ..EngineConfig::default()
                },
            );
            let start = Instant::now();
            let report = system
                .run_stream(&mut VecStream::new(events.to_vec()))
                .expect("in order");
            report.events_in as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

/// Best-of-3 wall-clock throughput of a sharded run.
fn sharded_throughput(policy: BatchPolicy, shards: usize, events: &[Event]) -> f64 {
    let model = lr_model(1);
    let qs = QuerySet::from_model(&model).unwrap();
    let mut registry = lr_registry();
    let translation = caesar_algebra::translate::translate_query_set(
        &qs,
        &mut registry,
        &caesar_algebra::translate::TranslateOptions { default_within: 60 },
    )
    .unwrap();
    let program = Optimizer::default().optimize(translation, &registry);
    (0..3)
        .map(|_| {
            let config = EngineConfig {
                batch: policy,
                ..EngineConfig::default()
            };
            let start = Instant::now();
            let report = run_sharded(
                &program,
                &registry,
                config,
                shards,
                &mut VecStream::new(events.to_vec()),
            )
            .expect("in order");
            report.events_in as f64 / start.elapsed().as_secs_f64()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();

    // Sequential, moderate density (≈ the correctness-test stream,
    // ~1.3 events per stream transaction — little to amortize).
    let moderate = lr_events(1, 6, 900, 2.0, 5.0);
    rows.push(Row {
        label: "sequential/1-road".into(),
        events: moderate.len() as u64,
        per_event_evs: sequential_throughput(BatchPolicy::per_event(), &moderate),
        batched_evs: sequential_throughput(BatchPolicy::default(), &moderate),
    });

    // Sequential, dense traffic: hundreds of cars over two segments
    // yield ~10-event same-(partition, time) runs — the regime batching
    // targets (per-batch context probes and negation index).
    let dense = lr_events(1, 2, 900, 300.0, 500.0);
    rows.push(Row {
        label: "sequential/dense-segment".into(),
        events: dense.len() as u64,
        per_event_evs: sequential_throughput(BatchPolicy::per_event(), &dense),
        batched_evs: sequential_throughput(BatchPolicy::default(), &dense),
    });

    // Sharded executor on the dense stream: batches also amortize
    // channel sends.
    rows.push(Row {
        label: "sharded4/dense-segment".into(),
        events: dense.len() as u64,
        per_event_evs: sharded_throughput(BatchPolicy::per_event(), 4, &dense),
        batched_evs: sharded_throughput(BatchPolicy::default(), 4, &dense),
    });

    print_table(
        "Batched vs event-at-a-time throughput (events/s, best of 3)",
        &[
            "configuration",
            "events",
            "per-event ev/s",
            "batched ev/s",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.events.to_string(),
                    format!("{:.0}", r.per_event_evs),
                    format!("{:.0}", r.batched_evs),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"config\": \"{}\", \"events\": {}, \"per_event_events_per_sec\": {:.1}, \
                 \"batched_events_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.label,
                r.events,
                r.per_event_evs,
                r.batched_evs,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"batched vs per-event hot path, Linear Road\",\n\
         \"unit\": \"events per second of wall time, best of 3 runs\",\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_batching.json", &json).expect("write BENCH_batching.json");
    println!("\nwrote BENCH_batching.json");
}
