//! Property-based batch-boundary invariance.
//!
//! Batch formation is an execution detail: however the distributor
//! chunks a stream into same-timestamp batches — capped, uncapped,
//! split at arbitrary legal positions — the outputs must be
//! byte-identical to the event-at-a-time run and every deterministic
//! counter must agree. The streams here are adversarial for batching:
//! timestamps advance by 0..=2 ticks, so long duplicate-timestamp runs
//! (the interesting batch boundaries) are common.

use caesar::events::EventBatch;
use caesar::prelude::*;
use caesar::recovery::{outputs_equivalent, reports_equivalent};
use proptest::prelude::*;

/// (kind, payload) scripts: kind 0 = reading, 1 = enter busy,
/// 2 = leave busy. Payload drives both the value and the (possibly
/// zero) time increment, so duplicate timestamps cluster heavily.
fn arb_script() -> impl Strategy<Value = Vec<(u8, u64)>> {
    prop::collection::vec((0u8..=2, 0u64..100), 1..60)
}

fn build(batch: BatchPolicy) -> CaesarSystem {
    Caesar::builder()
        .schema("Reading", &[("v", AttrType::Int), ("sec", AttrType::Int)])
        .schema("Enter", &[("sec", AttrType::Int)])
        .schema("Leave", &[("sec", AttrType::Int)])
        .within(60)
        .model_text(
            r#"
            MODEL m DEFAULT idle
            CONTEXT idle {
                SWITCH CONTEXT busy PATTERN Enter
            }
            CONTEXT busy {
                SWITCH CONTEXT idle PATTERN Leave
                DERIVE Pair(a.v, b.v, b.sec)
                    PATTERN SEQ(Reading a, Reading b)
                    WHERE a.v = b.v
                DERIVE Fresh(r2.v, r2.sec)
                    PATTERN SEQ(NOT Reading r1, Reading r2)
                    WHERE r1.sec + 10 = r2.sec AND r1.v = r2.v
            }
        "#,
        )
        .engine_config(
            EngineConfig::builder()
                .collect_outputs(true)
                .batch(batch)
                .build(),
        )
        .build()
        .unwrap()
}

fn script_to_events(sys: &CaesarSystem, script: &[(u8, u64)]) -> Vec<Event> {
    let mut t: Time = 1;
    let mut events = Vec::with_capacity(script.len());
    for (kind, payload) in script {
        // Increment of 0, 1 or 2 — zero keeps the timestamp, forming
        // the duplicate-timestamp runs batching cares about.
        t += payload % 3;
        let e = match kind {
            0 => sys
                .event("Reading", t)
                .unwrap()
                .attr("v", (*payload % 4) as i64)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap(),
            1 => sys
                .event("Enter", t)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap(),
            _ => sys
                .event("Leave", t)
                .unwrap()
                .attr("sec", t as i64)
                .unwrap()
                .build()
                .unwrap(),
        };
        events.push(e);
    }
    events
}

fn run_stream_with(batch: BatchPolicy, events: &[Event]) -> (RunReport, Vec<Event>) {
    let mut sys = build(batch);
    let report = sys
        .run_stream(&mut VecStream::new(events.to_vec()))
        .unwrap();
    let outputs = std::mem::take(&mut sys.engine.collected_outputs);
    (report, outputs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any batch-size cap produces byte-identical outputs and counters
    /// to the event-at-a-time baseline.
    #[test]
    fn batch_cap_is_invariant(script in arb_script(), cap in 1usize..16) {
        let probe = build(BatchPolicy::per_event());
        let events = script_to_events(&probe, &script);
        let baseline = run_stream_with(BatchPolicy::per_event(), &events);
        for policy in [BatchPolicy::default(), BatchPolicy::bounded(cap)] {
            let candidate = run_stream_with(policy, &events);
            prop_assert!(
                outputs_equivalent(&baseline.1, &candidate.1),
                "outputs diverged under {policy:?}: {} vs {}",
                baseline.1.len(), candidate.1.len()
            );
            prop_assert!(
                reports_equivalent(&baseline.0, &candidate.0),
                "counters diverged under {policy:?}"
            );
        }
    }

    /// Stronger: ANY legal re-chunking — same-timestamp runs split at
    /// arbitrary positions chosen by proptest — fed straight into
    /// `ingest` as whole batches matches the per-event run. Legality
    /// only requires each batch to be a contiguous same-timestamp slice.
    #[test]
    fn arbitrary_rechunking_is_invariant(
        script in arb_script(),
        splits in prop::collection::vec(any::<bool>(), 60),
    ) {
        let probe = build(BatchPolicy::per_event());
        let events = script_to_events(&probe, &script);
        let baseline = run_stream_with(BatchPolicy::per_event(), &events);

        let mut sys = build(BatchPolicy::default());
        let mut chunk: Vec<Event> = Vec::new();
        let mut flip = splits.iter().cycle();
        for event in &events {
            let boundary = chunk.last().is_some_and(|prev: &Event| {
                prev.time() != event.time() || *flip.next().unwrap()
            });
            if boundary {
                let batch = EventBatch::new(chunk[0].time(), std::mem::take(&mut chunk));
                sys.engine.ingest(batch).unwrap();
            }
            chunk.push(event.clone());
        }
        if !chunk.is_empty() {
            let batch = EventBatch::new(chunk[0].time(), chunk);
            sys.engine.ingest(batch).unwrap();
        }
        let report = sys.finish();
        let outputs = std::mem::take(&mut sys.engine.collected_outputs);
        prop_assert!(
            outputs_equivalent(&baseline.1, &outputs),
            "re-chunked outputs diverged: {} vs {}",
            baseline.1.len(), outputs.len()
        );
        prop_assert!(reports_equivalent(&baseline.0, &report));
    }

    /// The partition-splitting policy is also boundary-invariant.
    #[test]
    fn split_partition_policy_is_invariant(script in arb_script(), cap in 1usize..12) {
        let probe = build(BatchPolicy::per_event());
        let events = script_to_events(&probe, &script);
        let baseline = run_stream_with(BatchPolicy::per_event(), &events);
        let policy = BatchPolicy {
            split_partitions: true,
            ..BatchPolicy::bounded(cap)
        };
        let candidate = run_stream_with(policy, &events);
        prop_assert!(outputs_equivalent(&baseline.1, &candidate.1));
        prop_assert!(reports_equivalent(&baseline.0, &candidate.0));
    }
}
