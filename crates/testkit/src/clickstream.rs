//! Clickstream differential fixtures: seeded funnel workloads for the
//! mode-matrix harness.
//!
//! Unlike [`generate`](crate::generate), which draws random models, the
//! clickstream profile keeps the hand-written session-state model from
//! `caesar-clickstream` (four contexts, funnel/abandonment/bot queries,
//! one negated pattern) and randomizes everything around it: user-key
//! population, Zipf skew, session mix, replication, disorder and
//! id-scattering. The model stays inside the reference-oracle envelope
//! by construction, so every sampled workload runs through
//! [`check_workload`](crate::check_workload),
//! [`check_workload_served`](crate::check_workload_served) and
//! [`check_workload_provenance`](crate::check_workload_provenance)
//! byte-for-byte.

use crate::generate::Workload;
use caesar_clickstream::{
    clickstream_model, clickstream_registry, generate, output_types, ClickConfig, DEFAULT_WITHIN,
};
use caesar_events::generator::rng;
use caesar_events::max_lateness;
use rand::Rng;

/// Derives a clickstream differential workload from a seed: a random
/// generator configuration (population, skew, session mix, disorder,
/// id scattering) paired with the clickstream model at a random
/// replication (1–3 → 5–15 queries).
#[must_use]
pub fn clickstream_workload_from_seed(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0xc11c_57ea_4d1f_f001);
    let replication = r.gen_range(1..4usize);
    let config = ClickConfig {
        users: r.gen_range(2..40u64),
        sessions: r.gen_range(6..40usize),
        coverage_floor: if r.gen_bool(0.3) {
            r.gen_range(1..6)
        } else {
            0
        },
        zipf_s: r.gen_range(0.0..1.6),
        seed,
        bot_fraction: r.gen_range(0.0..0.25),
        buy_fraction: r.gen_range(0.1..0.4),
        abandon_fraction: r.gen_range(0.1..0.4),
        disorder: if r.gen_bool(0.5) {
            r.gen_range(0.05..0.35)
        } else {
            0.0
        },
        scatter_ids: r.gen_bool(0.3),
        ..ClickConfig::default()
    };
    let registry = clickstream_registry();
    let (events, _) = generate(&config, &registry);
    let reorder_slack = max_lateness(&events);
    Workload {
        seed,
        model: clickstream_model(replication),
        registry,
        events,
        default_within: DEFAULT_WITHIN,
        reorder_slack,
        output_types: output_types(replication),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_nonempty() {
        let a = clickstream_workload_from_seed(42);
        let b = clickstream_workload_from_seed(42);
        assert_eq!(a.events, b.events);
        assert_eq!(a.output_types, b.output_types);
        assert!(!a.events.is_empty());
        assert_eq!(a.reorder_slack, caesar_events::max_lateness(&a.events));
    }

    #[test]
    fn profile_varies_structurally_across_seeds() {
        let replications: std::collections::BTreeSet<usize> = (0..20u64)
            .map(|s| clickstream_workload_from_seed(s).output_types.len())
            .collect();
        assert!(replications.len() > 1, "replication never varied");
        let disordered = (0..20u64).any(|s| clickstream_workload_from_seed(s).reorder_slack > 0);
        assert!(disordered, "no seed produced a disordered stream");
    }
}
