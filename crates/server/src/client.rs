//! A small blocking client for the framed protocol — the testkit's
//! served-equivalence leg, the load generator and the protocol tests
//! all speak through it.
//!
//! Output frames (`OUTPUTS`) arrive interleaved with control replies on
//! a subscribed connection, so [`roundtrip`](Client::roundtrip) stashes
//! them into [`outputs`](Client::outputs) while waiting for the actual
//! reply. Callers that pipeline ingests must window their acks (send
//! *k*, then read *k*) — both peers write into finite socket buffers,
//! and a client that never reads can deadlock against a server that
//! never drops.

use crate::protocol::{read_frame, write_frame, FrameError, Request, Response, DEFAULT_MAX_FRAME};
use caesar_events::{Event, OutputRecord};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A blocking protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    max_frame_len: usize,
    /// Output events stashed from `OUTPUTS` frames read while waiting
    /// for control replies (subscribed connections only).
    pub outputs: Vec<Event>,
    /// The interleaved emission/retraction ledger in frame-arrival
    /// order: every `OUTPUTS` event as an [`OutputRecord::Emit`], every
    /// `RETRACT` event as an [`OutputRecord::Retract`]. Empty on strict
    /// tenants (no `RETRACT` frames, and the emits mirror `outputs`).
    pub records: Vec<OutputRecord>,
}

impl Client {
    /// Connects to a server's ingest address.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME,
            outputs: Vec::new(),
            records: Vec::new(),
        })
    }

    /// Caps how large a frame this client will accept.
    pub fn set_max_frame_len(&mut self, max: usize) {
        self.max_frame_len = max;
    }

    /// Bounds how long [`recv`](Self::recv) blocks (`None` = forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends one request frame.
    pub fn send(&mut self, request: &Request) -> io::Result<()> {
        write_frame(&mut self.stream, &request.encode())
    }

    /// Sends raw bytes as one frame — malformed-input tests.
    pub fn send_raw(&mut self, body: &[u8]) -> io::Result<()> {
        write_frame(&mut self.stream, body)
    }

    /// Reads the next response frame; `Ok(None)` is a clean close.
    pub fn recv(&mut self) -> Result<Option<Response>, FrameError> {
        match read_frame(&mut self.stream, self.max_frame_len)? {
            None => Ok(None),
            Some(body) => Response::decode(&body).map(Some),
        }
    }

    /// Reads until a non-output frame arrives, stashing `OUTPUTS` and
    /// `RETRACT` payloads; `Ok(None)` is a clean close.
    pub fn recv_control(&mut self) -> Result<Option<Response>, FrameError> {
        loop {
            match self.recv()? {
                Some(Response::Outputs(events)) => self.stash_outputs(events),
                Some(Response::Retractions(events)) => self.stash_retractions(events),
                other => return Ok(other),
            }
        }
    }

    /// Sends a request and returns its (non-output) reply; a close
    /// while waiting is an error.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, FrameError> {
        self.send(request)?;
        self.recv_control()?
            .ok_or_else(|| FrameError::Malformed("server closed before replying".into()))
    }

    /// Reads frames (stashing outputs) until `SHUTDOWN_OK` (`true`) or
    /// a clean close (`false`) — the tail of a graceful drain.
    pub fn drain_to_shutdown(&mut self) -> Result<bool, FrameError> {
        loop {
            match self.recv()? {
                Some(Response::Outputs(events)) => self.stash_outputs(events),
                Some(Response::Retractions(events)) => self.stash_retractions(events),
                Some(Response::ShutdownOk) => return Ok(true),
                Some(_) => {} // stale acks from pipelined requests
                None => return Ok(false),
            }
        }
    }

    fn stash_outputs(&mut self, events: Vec<Event>) {
        self.records
            .extend(events.iter().cloned().map(OutputRecord::Emit));
        self.outputs.extend(events);
    }

    fn stash_retractions(&mut self, events: Vec<Event>) {
        self.records
            .extend(events.into_iter().map(OutputRecord::Retract));
    }

    /// Takes the stashed outputs, leaving the buffer empty.
    pub fn take_outputs(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.outputs)
    }

    /// Takes the stashed emission/retraction ledger, leaving it empty.
    pub fn take_records(&mut self) -> Vec<OutputRecord> {
        std::mem::take(&mut self.records)
    }

    /// Half-closes the write side (EOF to the server's reader).
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
