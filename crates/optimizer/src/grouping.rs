//! The context window grouping algorithm (§5.3, Listing 1, Figure 7).
//!
//! Overlapping user-defined context windows are split at their bounds
//! into finer-granularity slices; slices covering the same interval are
//! grouped into one non-overlapping window whose workload is the
//! de-duplicated union of the covering windows' workloads. "Since several
//! subsequent grouped context windows correspond to one original context
//! window, an event query within a grouped context window may need access
//! to its partial matches in the previous grouped context windows" — the
//! [`GroupedWindow::origins`] metadata drives that context-history logic
//! in the runtime.
//!
//! Window bounds are *compile-time order keys* (threshold values from the
//! subsumption analysis of [`crate::subsume`], or direct timeline
//! positions for data-driven experiment workloads); actual start/end
//! times remain unknown until runtime.

use caesar_query::ast::QueryId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A user-defined context window with compile-time-ordered bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserWindow {
    /// The context this window belongs to.
    pub context: String,
    /// Order key of the initiation bound.
    pub start: f64,
    /// Order key of the termination bound (`start <= end`).
    pub end: f64,
    /// The window's query workload.
    pub queries: Vec<QueryId>,
}

impl UserWindow {
    /// Creates a window.
    #[must_use]
    pub fn new(context: impl Into<String>, start: f64, end: f64, queries: Vec<QueryId>) -> Self {
        let w = Self {
            context: context.into(),
            start,
            end,
            queries,
        };
        assert!(w.start <= w.end, "window start after end");
        w
    }

    /// Returns `true` if the two windows share part of their interval.
    #[must_use]
    pub fn overlaps(&self, other: &UserWindow) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A grouped (non-overlapping) context window produced by Listing 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedWindow {
    /// Order key of the slice start.
    pub start: f64,
    /// Order key of the slice end.
    pub end: f64,
    /// De-duplicated union of the covering windows' workloads.
    pub queries: Vec<QueryId>,
    /// Contexts of the original windows covering this slice — the
    /// context-history metadata.
    pub origins: Vec<String>,
}

/// Output of the grouping algorithm.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupingResult {
    /// All grouped windows, sorted by start key. Windows that overlapped
    /// nothing pass through as single-origin groups ("context windows
    /// which do not overlap any other window remain unchanged").
    pub windows: Vec<GroupedWindow>,
    /// Number of original windows that were split/merged (excludes the
    /// untouched non-overlapping ones).
    pub split_count: usize,
}

impl GroupingResult {
    /// Grouped windows covering the given original context, in start
    /// order — the chain across which that context's partial matches are
    /// preserved.
    #[must_use]
    pub fn windows_of(&self, context: &str) -> Vec<&GroupedWindow> {
        self.windows
            .iter()
            .filter(|w| w.origins.iter().any(|o| o == context))
            .collect()
    }

    /// Synthesized deriving-query descriptions for the grouped windows
    /// (Figure 7 bottom): `(start key, end key)` per window, which the
    /// runtime turns into initiation/termination triggers.
    #[must_use]
    pub fn new_deriving_bounds(&self) -> Vec<(f64, f64)> {
        self.windows.iter().map(|w| (w.start, w.end)).collect()
    }
}

/// The context window grouping algorithm (Listing 1).
#[must_use]
pub fn group_windows(windows: Vec<UserWindow>) -> GroupingResult {
    let mut result = GroupingResult::default();

    // Line 4: extract windows that overlap no other window — unchanged.
    let mut overlapping_idx: Vec<usize> = Vec::new();
    for i in 0..windows.len() {
        let overlaps_any = (0..windows.len()).any(|j| i != j && windows[i].overlaps(&windows[j]));
        if overlaps_any {
            overlapping_idx.push(i);
        } else {
            result.windows.push(GroupedWindow {
                start: windows[i].start,
                end: windows[i].end,
                queries: dedup(windows[i].queries.clone()),
                origins: vec![windows[i].context.clone()],
            });
        }
    }

    // Lines 5-6: sort the overlapping windows by start; merge identical
    // windows into one by unioning their workloads.
    let mut overlapping: Vec<UserWindow> = overlapping_idx
        .into_iter()
        .map(|i| windows[i].clone())
        .collect();
    overlapping.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("finite keys")
            .then(a.end.partial_cmp(&b.end).expect("finite keys"))
    });
    let mut merged: Vec<UserWindow> = Vec::new();
    for w in overlapping {
        match merged.last_mut() {
            Some(last) if last.start == w.start && last.end == w.end => {
                // Identical windows: keep one, merge workloads and
                // remember both origins via a combined context label.
                last.queries.extend(w.queries);
                if !last.context.split('+').any(|c| c == w.context) {
                    last.context = format!("{}+{}", last.context, w.context);
                }
            }
            _ => merged.push(w),
        }
    }
    result.split_count = merged.len();

    // Lines 8-19: sweep the bounds; a grouped window forms between each
    // pair of subsequent bounds, carrying the union of the workloads of
    // all windows active in that slice.
    let mut bounds: Vec<f64> = merged.iter().flat_map(|w| [w.start, w.end]).collect();
    bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite keys"));
    bounds.dedup();

    let mut active: BTreeSet<usize> = BTreeSet::new();
    let mut previous: Option<f64> = None;
    for &next in &bounds {
        if let Some(prev) = previous {
            if !active.is_empty() {
                let mut queries: Vec<QueryId> = Vec::new();
                let mut origins: Vec<String> = Vec::new();
                for &i in &active {
                    queries.extend(merged[i].queries.iter().copied());
                    for part in merged[i].context.split('+') {
                        if !origins.iter().any(|o| o == part) {
                            origins.push(part.to_string());
                        }
                    }
                }
                // Lines 20-22: drop duplicate event queries.
                result.windows.push(GroupedWindow {
                    start: prev,
                    end: next,
                    queries: dedup(queries),
                    origins,
                });
            }
        }
        // Update the active set at this bound: ending windows leave,
        // starting windows enter.
        for (i, w) in merged.iter().enumerate() {
            if w.end == next {
                active.remove(&i);
            }
        }
        for (i, w) in merged.iter().enumerate() {
            if w.start == next {
                active.insert(i);
            }
        }
        previous = Some(next);
    }

    result
        .windows
        .sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite keys"));
    result
}

fn dedup(mut queries: Vec<QueryId>) -> Vec<QueryId> {
    queries.sort_unstable();
    queries.dedup();
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u32]) -> Vec<QueryId> {
        ids.iter().map(|i| QueryId(*i)).collect()
    }

    /// The Figure 7 scenario: w_c1 = \[10, 30\] with {Q1, Q3},
    /// w_c2 = \[20, 40\] with {Q1, Q2}.
    fn figure7() -> Vec<UserWindow> {
        vec![
            UserWindow::new("c1", 10.0, 30.0, q(&[1, 3])),
            UserWindow::new("c2", 20.0, 40.0, q(&[1, 2])),
        ]
    }

    #[test]
    fn figure7_grouping_produces_three_windows() {
        let result = group_windows(figure7());
        assert_eq!(result.windows.len(), 3);
        assert_eq!(result.split_count, 2);

        // w_c11 = [10, 20] with Q1, Q3.
        let w11 = &result.windows[0];
        assert_eq!((w11.start, w11.end), (10.0, 20.0));
        assert_eq!(w11.queries, q(&[1, 3]));
        assert_eq!(w11.origins, vec!["c1"]);

        // w = [20, 30] with Q1, Q2, Q3 (duplicate Q1 dropped).
        let w = &result.windows[1];
        assert_eq!((w.start, w.end), (20.0, 30.0));
        assert_eq!(w.queries, q(&[1, 2, 3]));
        assert_eq!(w.origins, vec!["c1", "c2"]);

        // w_c22 = [30, 40] with Q1, Q2.
        let w22 = &result.windows[2];
        assert_eq!((w22.start, w22.end), (30.0, 40.0));
        assert_eq!(w22.queries, q(&[1, 2]));
        assert_eq!(w22.origins, vec!["c2"]);
    }

    #[test]
    fn figure7_query1_spans_all_three_grouped_windows() {
        let result = group_windows(figure7());
        let covering: Vec<_> = result
            .windows
            .iter()
            .filter(|w| w.queries.contains(&QueryId(1)))
            .collect();
        assert_eq!(
            covering.len(),
            3,
            "Q1 executes during all 3 grouped windows"
        );
    }

    #[test]
    fn non_overlapping_windows_pass_through_unchanged() {
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 5.0, q(&[1])),
            UserWindow::new("b", 10.0, 15.0, q(&[2])),
        ]);
        assert_eq!(result.windows.len(), 2);
        assert_eq!(result.split_count, 0);
        assert_eq!(result.windows[0].origins, vec!["a"]);
        assert_eq!(result.windows[1].origins, vec!["b"]);
    }

    #[test]
    fn touching_windows_do_not_group() {
        // [0,10] and [10,20] share only the bound — not overlapping.
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 10.0, q(&[1])),
            UserWindow::new("b", 10.0, 20.0, q(&[2])),
        ]);
        assert_eq!(result.windows.len(), 2);
        assert_eq!(result.split_count, 0);
    }

    #[test]
    fn identical_windows_merge_workloads() {
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 10.0, q(&[1, 2])),
            UserWindow::new("b", 0.0, 10.0, q(&[2, 3])),
        ]);
        // Identical windows overlap → merged into one slice [0,10].
        assert_eq!(result.windows.len(), 1);
        let w = &result.windows[0];
        assert_eq!(w.queries, q(&[1, 2, 3]), "duplicate Q2 dropped");
        assert_eq!(w.origins, vec!["a", "b"]);
    }

    #[test]
    fn containment_splits_outer_into_three() {
        // outer [0,30] ⊃ inner [10,20].
        let result = group_windows(vec![
            UserWindow::new("outer", 0.0, 30.0, q(&[1])),
            UserWindow::new("inner", 10.0, 20.0, q(&[2])),
        ]);
        assert_eq!(result.windows.len(), 3);
        assert_eq!(result.windows[0].queries, q(&[1]));
        assert_eq!(result.windows[1].queries, q(&[1, 2]));
        assert_eq!(result.windows[2].queries, q(&[1]));
        assert_eq!(result.windows[1].origins, vec!["outer", "inner"]);
    }

    #[test]
    fn chain_of_three_overlapping_windows() {
        // a=[0,20], b=[10,30], c=[25,40]: bounds 0,10,20,25,30,40.
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 20.0, q(&[1])),
            UserWindow::new("b", 10.0, 30.0, q(&[2])),
            UserWindow::new("c", 25.0, 40.0, q(&[3])),
        ]);
        let slices: Vec<(f64, f64)> = result.windows.iter().map(|w| (w.start, w.end)).collect();
        assert_eq!(
            slices,
            vec![
                (0.0, 10.0),
                (10.0, 20.0),
                (20.0, 25.0),
                (25.0, 30.0),
                (30.0, 40.0)
            ]
        );
        assert_eq!(result.windows[1].queries, q(&[1, 2]));
        assert_eq!(result.windows[2].queries, q(&[2]));
        assert_eq!(result.windows[3].queries, q(&[2, 3]));
    }

    #[test]
    fn grouped_windows_never_overlap() {
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 50.0, q(&[1])),
            UserWindow::new("b", 10.0, 30.0, q(&[2])),
            UserWindow::new("c", 20.0, 60.0, q(&[3])),
            UserWindow::new("d", 100.0, 110.0, q(&[4])),
        ]);
        let mut sorted = result.windows;
        sorted.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for pair in sorted.windows(2) {
            assert!(pair[0].end <= pair[1].start, "slices {pair:?} overlap");
        }
    }

    #[test]
    fn windows_of_returns_origin_chain() {
        let result = group_windows(figure7());
        let c1_chain = result.windows_of("c1");
        assert_eq!(c1_chain.len(), 2, "c1 covered by w11 and w");
        assert_eq!(c1_chain[0].start, 10.0);
        assert_eq!(c1_chain[1].start, 20.0);
    }

    #[test]
    fn new_deriving_bounds_match_figure7_bottom() {
        let result = group_windows(figure7());
        assert_eq!(
            result.new_deriving_bounds(),
            vec![(10.0, 20.0), (20.0, 30.0), (30.0, 40.0)]
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let result = group_windows(vec![]);
        assert!(result.windows.is_empty());
        assert_eq!(result.split_count, 0);
    }

    #[test]
    fn fully_encompassing_merge_is_avoided() {
        // The "naive solution" of §5.3 would merge everything into one
        // huge window; grouping instead produces fine slices whose query
        // sets differ.
        let result = group_windows(vec![
            UserWindow::new("a", 0.0, 100.0, q(&[1])),
            UserWindow::new("b", 90.0, 200.0, q(&[2])),
        ]);
        assert!(result.windows.len() > 1);
        let sets: BTreeSet<Vec<QueryId>> =
            result.windows.iter().map(|w| w.queries.clone()).collect();
        assert!(sets.len() > 1, "slices carry different workloads");
    }
}
