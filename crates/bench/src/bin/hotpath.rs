//! Post-filter hot-path throughput: this tree vs a baseline binary.
//!
//! The allocation-discipline experiment: the same seeded Linear Road
//! streams are pushed through the default engine configuration of two
//! *binaries* — the current tree and a baseline checkout built at an
//! earlier commit — and wall-clock throughput is compared. Because the
//! two sides are separate executables, the comparison harness runs them
//! as subprocesses in back-to-back pairs, alternating which binary goes
//! first inside each pair, and reports the median per-pair ratio (the
//! same methodology as the `batching` bench: a load burst on a shared
//! host hits both runs of a pair roughly alike, and alternating the
//! order cancels first-slot/second-slot drift).
//!
//! ```text
//! # single timed run, machine-readable (used by the harness):
//! cargo run --release -p caesar-bench --bin hotpath -- run dense
//!
//! # paired comparison against a baseline build of this same binary:
//! git worktree add .baseline <baseline-sha>
//! cp crates/bench/src/bin/hotpath.rs .baseline/crates/bench/src/bin/
//! (cd .baseline && cargo build --release -p caesar-bench --bin hotpath)
//! cargo run --release -p caesar-bench --bin hotpath -- \
//!     compare .baseline/target/release/hotpath
//!
//! # no arguments: in-process measurement of the current tree only
//! # (what CI runs — no baseline checkout there):
//! cargo run --release -p caesar-bench --bin hotpath
//! ```
//!
//! Results are written to `BENCH_hotpath.json` in the current
//! directory; EXPERIMENTS.md records a committed comparison run.

use caesar_bench::print_table;
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use std::process::Command;
use std::time::Instant;

/// The two stream densities of the batching experiment, reused so
/// hot-path numbers compare across benches: `dense` packs hundreds of
/// cars into two segments (~10-event same-(partition, time) runs, the
/// regime the batch path targets); `sparse` is the correctness-test
/// density where almost every transaction is a single event.
fn workload(name: &str) -> Vec<Event> {
    let (roads, segments, duration, base, peak) = match name {
        "dense" => (1, 2, 900, 300.0, 500.0),
        "sparse" => (1, 6, 28800, 2.0, 5.0),
        other => panic!("unknown workload {other:?} (expected dense|sparse)"),
    };
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads,
        segments_per_road: segments,
        duration,
        seed: 11,
        base_cars: base,
        peak_cars: peak,
        ..Default::default()
    });
    sim.generate()
}

/// Pairs per workload in comparison mode (dense runs are long, sparse
/// runs are short and noisy, so the sparse row takes more pairs).
fn pairs_for(name: &str) -> usize {
    if name == "dense" {
        6
    } else {
        16
    }
}

const WORKLOADS: [&str; 2] = ["dense", "sparse"];

/// One timed run of the default engine configuration. Returns
/// `(events, elapsed seconds)`.
fn timed_run(events: &[Event]) -> (u64, f64) {
    let mut system = build_lr_system(
        1,
        OptimizerConfig::default(),
        EngineConfig::builder()
            .batch(BatchPolicy::default())
            .build(),
    );
    let start = Instant::now();
    let report = system
        .run_stream(&mut VecStream::new(events.to_vec()))
        .expect("in order");
    (report.events_in, start.elapsed().as_secs_f64())
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    values[values.len() / 2]
}

/// Spawns `bin run <workload>` and parses its `RESULT <events> <secs>`
/// line. Events-per-second of that run.
fn subprocess_run(bin: &str, wl: &str) -> f64 {
    let out = Command::new(bin)
        .args(["run", wl])
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} run {wl} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let fields: Vec<&str> = stdout
        .lines()
        .find_map(|l| l.strip_prefix("RESULT "))
        .unwrap_or_else(|| panic!("no RESULT line from {bin}:\n{stdout}"))
        .split_whitespace()
        .collect();
    let events: f64 = fields[0].parse().expect("RESULT events");
    let secs: f64 = fields[1].parse().expect("RESULT secs");
    events / secs
}

struct Row {
    label: String,
    events: u64,
    baseline_evs: f64,
    current_evs: f64,
    speedup: f64,
}

/// Paired comparison on one workload: after one untimed warmup pair,
/// `pairs` repetition pairs run back-to-back, alternating which binary
/// goes first. Reported speedup is the median per-pair ratio; the
/// throughput columns are per-binary median runs.
fn compare_workload(current: &str, baseline: &str, wl: &str, pairs: usize) -> Row {
    let events = workload(wl).len() as u64;
    subprocess_run(baseline, wl);
    subprocess_run(current, wl);
    let (mut base_evs, mut cur_evs, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for pair in 0..pairs {
        let (b, c) = if pair % 2 == 0 {
            let b = subprocess_run(baseline, wl);
            (b, subprocess_run(current, wl))
        } else {
            let c = subprocess_run(current, wl);
            (subprocess_run(baseline, wl), c)
        };
        base_evs.push(b);
        cur_evs.push(c);
        ratios.push(c / b);
    }
    Row {
        label: format!("linear-road/{wl}"),
        events,
        baseline_evs: median(&mut base_evs),
        current_evs: median(&mut cur_evs),
        speedup: median(&mut ratios),
    }
}

fn write_json(mode: &str, rows: &[Row]) {
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"events\": {}, \"baseline_events_per_sec\": {:.1}, \
                 \"current_events_per_sec\": {:.1}, \"speedup\": {:.3}}}",
                r.label, r.events, r.baseline_evs, r.current_evs, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n\"benchmark\": \"post-filter hot path, Linear Road ({mode})\",\n\
         \"unit\": \"events per second of wall time; median run of interleaved \
         back-to-back pairs, speedup = median per-pair ratio\",\n\
         \"rows\": [\n{}\n]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("\nwrote BENCH_hotpath.json");
}

fn print_rows(title: &str, rows: &[Row]) {
    print_table(
        title,
        &[
            "workload",
            "events",
            "baseline ev/s",
            "current ev/s",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.clone(),
                    r.events.to_string(),
                    format!("{:.0}", r.baseline_evs),
                    format!("{:.0}", r.current_evs),
                    format!("{:.2}x", r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        // Harness entry point: one timed run, machine-readable.
        Some("run") => {
            let wl = args.get(2).expect("usage: hotpath run <dense|sparse>");
            let (events, secs) = timed_run(&workload(wl));
            println!("RESULT {events} {secs:.6}");
        }
        // Paired-median comparison against a baseline binary.
        Some("compare") => {
            let baseline = args
                .get(2)
                .expect("usage: hotpath compare <baseline-binary> [current-binary]");
            let current = args.get(3).cloned().unwrap_or_else(|| {
                std::env::current_exe()
                    .expect("current exe")
                    .to_string_lossy()
                    .into_owned()
            });
            let rows: Vec<Row> = WORKLOADS
                .iter()
                .map(|wl| compare_workload(&current, baseline, wl, pairs_for(wl)))
                .collect();
            print_rows(
                "Hot-path throughput vs baseline binary (median of interleaved pairs)",
                &rows,
            );
            write_json("current vs baseline binary", &rows);
        }
        Some(other) => panic!("unknown subcommand {other:?} (expected run|compare)"),
        // No baseline available (CI): measure the current tree only,
        // median of 5 in-process runs per workload.
        None => {
            let rows: Vec<Row> = WORKLOADS
                .iter()
                .map(|wl| {
                    let events = workload(wl);
                    timed_run(&events);
                    let mut evs: Vec<f64> = (0..5)
                        .map(|_| {
                            let (n, s) = timed_run(&events);
                            n as f64 / s
                        })
                        .collect();
                    let current = median(&mut evs);
                    Row {
                        label: format!("linear-road/{wl}"),
                        events: events.len() as u64,
                        baseline_evs: current,
                        current_evs: current,
                        speedup: 1.0,
                    }
                })
                .collect();
            print_rows(
                "Hot-path throughput, current tree only (median of 5)",
                &rows,
            );
            write_json("current tree only", &rows);
        }
    }
}
