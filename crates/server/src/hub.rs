//! Per-tenant output fan-out and per-connection outbound queues.
//!
//! Every connection owns one bounded outbound queue of pre-encoded
//! frame bodies, drained by that connection's writer thread. Both the
//! reader thread (acks, errors, reports) and the tenant shard workers
//! (derived outputs for subscribers) enqueue here, so responses and
//! output streams serialize naturally per connection.
//!
//! A slow subscriber throttles its producers only up to a configured
//! timeout; past that the subscriber is marked dead and dropped from
//! the hub — one stalled reader must not wedge a tenant's shards (the
//! connection's writer keeps draining and the socket closes, so the
//! client observes a hard disconnect, never silent gaps inside an
//! acknowledged stream).

use crate::protocol::Response;
use crate::queue::{BoundedQueue, PushError};
use caesar_events::Event;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The outbound half of one client connection: a bounded queue of
/// encoded frame bodies plus a liveness flag.
pub(crate) struct ConnectionOut {
    queue: BoundedQueue<Vec<u8>>,
    dead: AtomicBool,
}

impl ConnectionOut {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            queue: BoundedQueue::new(capacity),
            dead: AtomicBool::new(false),
        }
    }

    /// Enqueues a frame body, waiting for space. Returns `false` once
    /// the connection is closed or dead.
    pub(crate) fn send(&self, body: Vec<u8>) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        self.queue.push(body).is_ok()
    }

    /// Enqueues with a deadline; `false` marks nothing dead (the caller
    /// decides what a timeout means).
    pub(crate) fn send_timeout(&self, body: Vec<u8>, timeout: Duration) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        match self.queue.push_timeout(body, timeout) {
            Ok(()) => true,
            Err(PushError::Full(_) | PushError::Closed(_)) => false,
        }
    }

    /// Next frame body for the writer; `None` = closed and drained.
    pub(crate) fn next(&self) -> Option<Vec<u8>> {
        self.queue.pop()
    }

    /// Closes the queue (writer drains what is left, then exits).
    pub(crate) fn close(&self) {
        self.queue.close();
    }

    /// Marks the connection dead (writer hit a transport error).
    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Relaxed);
        self.queue.close();
    }
}

struct Subscriber {
    id: u64,
    out: Arc<ConnectionOut>,
}

/// Fan-out point from a tenant's shard workers to its subscribed
/// connections.
pub(crate) struct OutputHub {
    subscribers: Mutex<Vec<Subscriber>>,
    next_id: AtomicU64,
    publish_timeout: Duration,
}

impl OutputHub {
    pub(crate) fn new(publish_timeout: Duration) -> Self {
        Self {
            subscribers: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            publish_timeout,
        }
    }

    /// Registers a connection; the returned id unsubscribes it.
    pub(crate) fn subscribe(&self, out: Arc<ConnectionOut>) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscribers.lock().push(Subscriber { id, out });
        id
    }

    /// Removes one subscription (connection closed or errored).
    pub(crate) fn unsubscribe(&self, id: u64) {
        self.subscribers.lock().retain(|s| s.id != id);
    }

    /// Sends one `OUTPUTS` frame to every live subscriber; subscribers
    /// that stay full past the publish timeout are dropped.
    pub(crate) fn publish(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        self.publish_body(Response::Outputs(events.to_vec()).encode());
    }

    /// Sends one `RETRACT` frame to every live subscriber — speculative
    /// tenants cancelling previously published outputs. Travels the
    /// same per-connection FIFO as `publish`, so a subscriber always
    /// sees a retraction after the emission it cancels.
    pub(crate) fn publish_retractions(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        self.publish_body(Response::Retractions(events.to_vec()).encode());
    }

    /// Fans one pre-encoded frame body out to every live subscriber.
    fn publish_body(&self, body: Vec<u8>) {
        // Encoded once by the caller, cloned per subscriber.
        let mut subs = self.subscribers.lock();
        subs.retain(|s| {
            if s.out.send_timeout(body.clone(), self.publish_timeout) {
                true
            } else {
                s.out.mark_dead();
                false
            }
        });
    }
}
