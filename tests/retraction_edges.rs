//! Hand-computed edge cases of the speculative revision machinery —
//! every expectation below is derived on paper from the reorder-buffer
//! floor (`released` = highest drained timestamp; only `t < released`
//! drops) and the production rule (an event at `t` produces outputs
//! once stream progress *exceeds* `t`), then pinned byte-for-byte.
//!
//! The four corners:
//!
//! 1. a late event **exactly at** the lateness floor is admitted (one
//!    tick earlier drops) and its revision retracts the speculative
//!    output it invalidates,
//! 2. retracting a **derived event that initiated a context window**
//!    cascades: the window's own derivations are revised along with it,
//! 3. a **beyond-slack** straggler is counted and dropped with zero
//!    record traffic — no retraction, no rebuild,
//! 4. on a served speculative tenant, every RETRACT frame reaches the
//!    subscriber **before** the FINISH report on the same connection
//!    FIFO, so folding the ledger at finish-time always succeeds.

use caesar::events::{Event, PartitionId, Value};
use caesar::prelude::*;
use caesar::server::{Client, Request, Response, Server, ServerConfig, TenantConfig};
use caesar_testkit::{canonical, fold_records};

const TRAFFIC: &str = r#"
MODEL traffic DEFAULT clear
CONTEXT clear {
    SWITCH CONTEXT congestion PATTERN ManySlowCars
}
CONTEXT congestion {
    SWITCH CONTEXT clear PATTERN FewFastCars
    DERIVE TollNotification(p.vid, p.sec, 5)
        PATTERN PositionReport p WHERE p.lane != "exit"
}
"#;

fn traffic_builder() -> CaesarBuilder {
    Caesar::builder()
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("lane", AttrType::Str),
            ],
        )
        .schema("ManySlowCars", &[("seg", AttrType::Int)])
        .schema("FewFastCars", &[("seg", AttrType::Int)])
        .model_text(TRAFFIC)
        .within(300)
}

fn spec_config(slack: Time) -> EngineConfig {
    EngineConfig::builder()
        .reorder_slack(slack)
        .collect_outputs(true)
        .consistency(Consistency::Speculative)
        .build()
}

fn pr(registry: &SchemaRegistry, t: Time, p: u32, vid: i64) -> Event {
    let ty = registry.lookup("PositionReport").unwrap();
    Event::simple(
        ty,
        t,
        PartitionId(p),
        vec![Value::Int(vid), Value::Int(t as i64), Value::str("travel")],
    )
}

fn marker(registry: &SchemaRegistry, name: &str, t: Time, p: u32) -> Event {
    let ty = registry.lookup(name).unwrap();
    Event::simple(ty, t, PartitionId(p), vec![Value::Int(0)])
}

/// Edge 1: the lateness floor is *exclusive*. With slack 4 the stream
/// `MSC@3, PR@8, PR@11, PR@12` drains the buffer up to t = 8, so the
/// floor sits exactly at 8: a FewFastCars at t = 8 must be admitted
/// (tying with the already-settled PR@8, whose toll survives — the
/// switch applies for t > 8), revise the fork, and retract the
/// speculatively emitted toll at t = 11; a FewFastCars at t = 7 is one
/// tick too late and must be counted and dropped instead.
#[test]
fn floor_boundary_is_admitted_and_retracts() {
    let mut sys = traffic_builder()
        .engine_config(spec_config(4))
        .build()
        .unwrap();
    let registry = sys.registry.clone();

    sys.ingest(marker(&registry, "ManySlowCars", 3, 0)).unwrap();
    sys.ingest(pr(&registry, 8, 0, 2)).unwrap();
    // Progress 11 > 8 emits the toll for PR@8; 12 > 11 the one for PR@11.
    sys.ingest(pr(&registry, 11, 0, 3)).unwrap();
    sys.ingest(pr(&registry, 12, 0, 4)).unwrap();
    assert_eq!(sys.engine.spec_emits, 2, "tolls at t=8 and t=11 emitted");
    assert_eq!(sys.engine.late_dropped, 0);

    // Exactly at the floor: admitted, revises, retracts the t=11 toll
    // (clear for t > 8) but leaves the t=8 toll standing.
    sys.ingest(marker(&registry, "FewFastCars", 8, 0)).unwrap();
    assert_eq!(sys.engine.late_dropped, 0, "t == floor is not late");
    assert_eq!(sys.engine.spec_rebuilds, 1);
    assert_eq!(sys.engine.spec_retractions, 1, "only the t=11 toll dies");

    // One tick below the floor: dropped, and dropping never revises.
    sys.ingest(marker(&registry, "FewFastCars", 7, 0)).unwrap();
    assert_eq!(sys.engine.late_dropped, 1);
    assert_eq!(sys.engine.spec_rebuilds, 1, "a dropped event cannot revise");

    let report = sys.finish();
    assert_eq!(
        report.events_in, 5,
        "four in-order arrivals plus the boundary event"
    );
    assert_eq!(report.outputs_of("TollNotification"), 1);
    let outputs = &sys.engine.collected_outputs;
    assert_eq!(outputs.len(), 1);
    assert_eq!(
        outputs[0].attrs[0],
        Value::Int(2),
        "the surviving toll is PR@8's"
    );

    // Ledger shape, in order: emit t=8 toll, emit t=11 toll, retract
    // the t=11 toll — and the retraction names the exact event.
    let records = &sys.engine.collected_records;
    assert_eq!(records.len(), 3);
    assert!(!records[0].is_retraction());
    assert!(!records[1].is_retraction());
    assert!(records[2].is_retraction());
    assert_eq!(records[2].event(), records[1].event());
    assert_eq!(fold_records(records).unwrap(), canonical(outputs));
}

/// Edge 2: a speculative **derived** event can initiate a context
/// window; retracting it must cascade. The calm context derives `Alarm`
/// from `Spike`, and `Alarm` switches calm → alert, where further
/// spikes derive `Page`s. A late `Manual` switch that lands *before*
/// the first spike moves that spike into alert — the Alarm was never
/// derived, so the window it opened belongs to Manual now: the Alarm is
/// retracted and the spike that produced it re-derives as a Page.
#[test]
fn retracting_a_window_initiating_derivation_cascades() {
    let mut sys = Caesar::builder()
        .schema("Spike", &[("sid", AttrType::Int)])
        .schema("Manual", &[("sid", AttrType::Int)])
        .schema("Reset", &[("sid", AttrType::Int)])
        .model_text(
            r#"
            MODEL cascade DEFAULT calm
            CONTEXT calm {
                SWITCH CONTEXT alert PATTERN Alarm
                SWITCH CONTEXT alert PATTERN Manual
                DERIVE Alarm(s.sid) PATTERN Spike s
            }
            CONTEXT alert {
                SWITCH CONTEXT calm PATTERN Reset
                DERIVE Page(s.sid, 1) PATTERN Spike s
            }
            "#,
        )
        .within(300)
        .engine_config(spec_config(8))
        .build()
        .unwrap();
    let registry = sys.registry.clone();
    let spike = |t: Time, sid: i64| {
        let ty = registry.lookup("Spike").unwrap();
        Event::simple(ty, t, PartitionId(0), vec![Value::Int(sid)])
    };

    sys.ingest(spike(5, 1)).unwrap();
    sys.ingest(spike(8, 2)).unwrap(); // emits Alarm(1)@5; calm → alert
    sys.ingest(spike(12, 3)).unwrap(); // emits Page(2)@8
    assert_eq!(sys.engine.spec_emits, 2, "one Alarm, one Page in flight");

    // The late Manual@4 out-orders the Alarm's cause: replayed, Spike@5
    // now lands inside alert, so the Alarm is retracted and Spike@5
    // re-derives as Page(1). Page(2) is untouched — alert either way —
    // and produces no record traffic.
    sys.ingest(marker(&registry, "Manual", 4, 0)).unwrap();
    assert_eq!(sys.engine.late_dropped, 0);
    assert_eq!(sys.engine.spec_rebuilds, 1);
    assert_eq!(sys.engine.spec_retractions, 1, "exactly the Alarm dies");
    assert_eq!(sys.engine.spec_emits, 3, "Page(1) replaces the Alarm");

    let report = sys.finish();
    assert_eq!(report.events_in, 4);
    assert_eq!(report.outputs_of("Alarm"), 0, "the Alarm never settled");
    assert_eq!(report.outputs_of("Page"), 3);

    let alarm = registry.lookup("Alarm").unwrap();
    let records = &sys.engine.collected_records;
    assert_eq!(records.len(), 5, "3 pages + the alarm's emit/retract pair");
    let retractions: Vec<_> = records.iter().filter(|r| r.is_retraction()).collect();
    assert_eq!(retractions.len(), 1);
    assert_eq!(
        retractions[0].event().type_id,
        alarm,
        "the retraction cancels the window-initiating Alarm itself"
    );
    assert_eq!(
        fold_records(records).unwrap(),
        canonical(&sys.engine.collected_outputs)
    );
}

/// Edge 3: beyond the slack there is no speculation to undo. The
/// straggler is counted and dropped exactly like strict mode, and the
/// record stream stays silent — no retraction, no rebuild, no emission.
#[test]
fn beyond_slack_straggler_is_counted_and_silent() {
    let mut spec = traffic_builder()
        .engine_config(spec_config(2))
        .build()
        .unwrap();
    let mut strict = traffic_builder()
        .engine_config(
            EngineConfig::builder()
                .reorder_slack(2)
                .collect_outputs(true)
                .build(),
        )
        .build()
        .unwrap();
    let registry = spec.registry.clone();
    let arrivals = vec![
        marker(&registry, "ManySlowCars", 3, 0),
        pr(&registry, 8, 0, 1),
        pr(&registry, 12, 0, 2), // floor now at 8, toll for PR@8 emitted
        pr(&registry, 4, 0, 9),  // beyond slack: 4 < 8
    ];
    for event in arrivals {
        spec.ingest(event.clone()).unwrap();
        strict.ingest(event).unwrap();
    }
    assert_eq!(spec.engine.late_dropped, 1);
    assert_eq!(spec.engine.spec_rebuilds, 0, "dropping is not a revision");
    assert_eq!(spec.engine.spec_retractions, 0);
    assert_eq!(
        spec.engine.collected_records.len(),
        1,
        "only PR@8's toll was emitted before the straggler"
    );

    let spec_report = spec.finish();
    let strict_report = strict.finish();
    assert_eq!(spec_report.events_in, 3);
    assert_eq!(spec_report.outputs_of("TollNotification"), 2);
    assert_eq!(strict.engine.late_dropped, spec.engine.late_dropped);
    assert_eq!(
        strict_report.outputs_of("TollNotification"),
        spec_report.outputs_of("TollNotification")
    );
    assert_eq!(
        canonical(&spec.engine.collected_outputs),
        canonical(&strict.engine.collected_outputs),
        "settled outputs are byte-identical to strict"
    );
    let records = &spec.engine.collected_records;
    assert_eq!(records.len(), 2, "two emissions, zero retractions");
    assert!(records.iter().all(|r| !r.is_retraction()));
    assert_eq!(
        fold_records(records).unwrap(),
        canonical(&spec.engine.collected_outputs)
    );
}

/// Edge 4: on a served speculative tenant the RETRACT frames share the
/// per-connection FIFO with OUTPUTS and the FINISH report, so by the
/// time the report arrives the subscriber's ledger is complete and
/// folds cleanly — retraction after its emission, everything before the
/// report. Two partitions across two shards; partition 0 replays the
/// floor-boundary scenario (one retraction), partition 1 stays clean.
#[test]
fn served_retractions_precede_the_finish_report() {
    let (program, registry, _explain) = traffic_builder().build_program().unwrap();
    let toll = registry.lookup("TollNotification").unwrap();
    let events = [
        marker(&registry, "ManySlowCars", 3, 0),
        marker(&registry, "ManySlowCars", 3, 1),
        pr(&registry, 8, 0, 2),
        pr(&registry, 9, 1, 21),
        pr(&registry, 11, 0, 3),
        pr(&registry, 12, 0, 4),
        // Exactly at partition 0's shard floor: retracts the t=11 toll.
        marker(&registry, "FewFastCars", 8, 0),
        pr(&registry, 13, 1, 22),
    ];

    let mut tenant = TenantConfig::new("edge", program, registry);
    tenant.shards = 2;
    tenant.engine_config = spec_config(4);
    let handle = Server::start(ServerConfig {
        tenants: vec![tenant],
        ..ServerConfig::default()
    })
    .unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    let subscribed = client
        .roundtrip(&Request::Subscribe {
            tenant: "edge".into(),
        })
        .unwrap();
    assert!(matches!(subscribed, Response::Ack));
    for chunk in events.chunks(3) {
        let acked = client
            .roundtrip(&Request::Ingest {
                tenant: "edge".into(),
                events: chunk.to_vec(),
            })
            .unwrap();
        assert!(matches!(acked, Response::Ack));
    }
    let report = match client.roundtrip(&Request::Finish {
        tenant: "edge".into(),
    }) {
        Ok(Response::Report(report)) => report,
        other => panic!("finish reply: {other:?}"),
    };
    let outputs = client.take_outputs();
    let records = client.take_records();
    handle.shutdown();
    assert!(handle.join().clean());

    // Settled: tolls for PR@8 (p0), PR@9 and PR@13 (p1). Emitted on the
    // wire: those three plus the retracted t=11 toll.
    assert_eq!(report.outputs_of("TollNotification"), 3);
    assert_eq!(
        outputs.len(),
        4,
        "four speculative emissions crossed the wire"
    );
    let retractions = records.iter().filter(|r| r.is_retraction()).count();
    assert_eq!(retractions, 1, "exactly one RETRACT frame");
    // The ledger folds cleanly *at report time* — the FIFO delivered
    // the emission before its retraction, and both before the report.
    let folded = fold_records(&records).expect("retraction arrived after its emission");
    assert_eq!(folded.len(), 3);
    assert!(
        records.iter().all(|r| r.event().type_id == toll),
        "only tolls travel this wire"
    );
}
