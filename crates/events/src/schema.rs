//! Event type schemas and the schema registry.
//!
//! "An event type E is defined by a schema which specifies the set of event
//! attributes and the domains of their values" (§2). The registry interns
//! type names into dense [`TypeId`]s and attribute names into per-type
//! [`AttrId`]s so that the hot path (expression evaluation, routing) works
//! on integer indices, never on strings.

use crate::error::EventError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense identifier of a registered event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Index into registry-ordered arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Positional identifier of an attribute within one event type's schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// Index into the event's attribute array.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interned string id (see [`SymbolTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index into symbol-ordered arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A `u32` string-interning table.
///
/// Type and attribute names already resolve to dense [`TypeId`]s /
/// [`AttrId`]s at translation time; the symbol table closes the
/// remaining gap: every string the hot path touches — names *and*
/// recurring string constants such as lane labels — maps to a `u32`
/// [`Symbol`] backed by one canonical `Arc<str>`. Handing out the
/// canonical `Arc` (see [`canonical`](Self::canonical)) means repeated
/// values share one allocation and string equality short-circuits on
/// pointer identity instead of hashing or walking bytes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    strings: Vec<Arc<str>>,
    #[serde(skip)]
    by_str: HashMap<Arc<str>, u32>,
}

impl SymbolTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string, returning its (stable) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.by_str.get(s) {
            return Symbol(id);
        }
        let id = self.strings.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.by_str.insert(arc.clone(), id);
        self.strings.push(arc);
        Symbol(id)
    }

    /// Looks up an already-interned string.
    #[must_use]
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.by_str.get(s).copied().map(Symbol)
    }

    /// The canonical string of a symbol.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> &Arc<str> {
        &self.strings[sym.index()]
    }

    /// Interns `s` and returns the canonical `Arc` — every caller gets
    /// the *same* allocation, so downstream equality checks hit the
    /// pointer-identity fast path.
    pub fn canonical(&mut self, s: &str) -> Arc<str> {
        let sym = self.intern(s);
        self.strings[sym.index()].clone()
    }

    /// Number of interned symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuilds the lookup index after deserialization (serde skips it).
    pub fn rebuild_index(&mut self) {
        self.by_str = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u32))
            .collect();
    }
}

/// Declared domain of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// String.
    Str,
    /// Boolean.
    Bool,
}

/// One attribute declaration: a name and a domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrDef {
    /// Attribute name (e.g. `vid`, `speed`).
    pub name: Arc<str>,
    /// Attribute domain.
    pub ty: AttrType,
}

/// An event type: name plus ordered attribute declarations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Type name (e.g. `PositionReport`).
    pub name: Arc<str>,
    /// Ordered attributes; positions are the [`AttrId`]s.
    pub attrs: Vec<AttrDef>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    #[must_use]
    pub fn new(name: impl AsRef<str>, attrs: &[(&str, AttrType)]) -> Self {
        Self {
            name: Arc::from(name.as_ref()),
            attrs: attrs
                .iter()
                .map(|(n, t)| AttrDef {
                    name: Arc::from(*n),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// Resolves an attribute name to its positional id.
    pub fn attr_id(&self, name: &str) -> Result<AttrId, EventError> {
        self.attrs
            .iter()
            .position(|a| a.name.as_ref() == name)
            .map(|i| AttrId(i as u16))
            .ok_or_else(|| EventError::UnknownAttr {
                event_type: self.name.to_string(),
                attr: name.to_string(),
            })
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }
}

/// Interning registry of all event types known to one CAESAR application.
///
/// Derived (complex) event types are registered on the fly during plan
/// translation; the registry is then frozen and shared read-only across
/// the executor threads.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SchemaRegistry {
    types: Vec<Schema>,
    #[serde(skip)]
    by_name: HashMap<Arc<str>, TypeId>,
    /// Symbol table over every type and attribute name (plus whatever
    /// string constants callers intern); rebuilt alongside `by_name`
    /// after deserialization.
    #[serde(skip)]
    symbols: SymbolTable,
    /// Per-type name symbol, indexed by [`TypeId`].
    #[serde(skip)]
    type_symbols: Vec<Symbol>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a schema, returning its dense id. Re-registering an
    /// identical schema is idempotent; conflicting redefinition is an error.
    pub fn register(&mut self, schema: Schema) -> Result<TypeId, EventError> {
        if let Some(&id) = self.by_name.get(&schema.name) {
            if self.types[id.index()] == schema {
                return Ok(id);
            }
            return Err(EventError::DuplicateType(schema.name.to_string()));
        }
        let id = TypeId(self.types.len() as u32);
        self.by_name.insert(schema.name.clone(), id);
        self.type_symbols.push(self.symbols.intern(&schema.name));
        for attr in &schema.attrs {
            self.symbols.intern(&attr.name);
        }
        self.types.push(schema);
        Ok(id)
    }

    /// Looks up a type by name.
    pub fn lookup(&self, name: &str) -> Result<TypeId, EventError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| EventError::UnknownType(name.to_string()))
    }

    /// Returns the schema of a registered type.
    #[must_use]
    pub fn schema(&self, id: TypeId) -> &Schema {
        &self.types[id.index()]
    }

    /// Returns the schema by name, if registered.
    #[must_use]
    pub fn schema_by_name(&self, name: &str) -> Option<&Schema> {
        self.by_name.get(name).map(|id| &self.types[id.index()])
    }

    /// Number of registered types.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Returns `true` when no types are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates `(TypeId, &Schema)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &Schema)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, s)| (TypeId(i as u32), s))
    }

    /// The registry's symbol table.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access for interning further strings (e.g. predicate
    /// constants) into the shared table.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// The interned symbol of a registered type's name.
    #[must_use]
    pub fn type_symbol(&self, id: TypeId) -> Symbol {
        self.type_symbols[id.index()]
    }

    /// Rebuilds the name index and symbol table after deserialization
    /// (serde skips both).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .types
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), TypeId(i as u32)))
            .collect();
        self.symbols = SymbolTable::new();
        self.type_symbols = self
            .types
            .iter()
            .map(|s| {
                let sym = self.symbols.intern(&s.name);
                for attr in &s.attrs {
                    self.symbols.intern(&attr.name);
                }
                sym
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn position_report() -> Schema {
        Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = SchemaRegistry::new();
        let id = reg.register(position_report()).unwrap();
        assert_eq!(reg.lookup("PositionReport").unwrap(), id);
        assert_eq!(reg.schema(id).arity(), 8);
    }

    #[test]
    fn idempotent_registration() {
        let mut reg = SchemaRegistry::new();
        let a = reg.register(position_report()).unwrap();
        let b = reg.register(position_report()).unwrap();
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn conflicting_registration_is_error() {
        let mut reg = SchemaRegistry::new();
        reg.register(position_report()).unwrap();
        let conflicting = Schema::new("PositionReport", &[("vid", AttrType::Int)]);
        assert!(matches!(
            reg.register(conflicting),
            Err(EventError::DuplicateType(_))
        ));
    }

    #[test]
    fn attr_resolution() {
        let s = position_report();
        assert_eq!(s.attr_id("vid").unwrap(), AttrId(0));
        assert_eq!(s.attr_id("lane").unwrap(), AttrId(4));
        assert!(s.attr_id("nope").is_err());
    }

    #[test]
    fn unknown_type_lookup_fails() {
        let reg = SchemaRegistry::new();
        assert!(matches!(
            reg.lookup("Ghost"),
            Err(EventError::UnknownType(_))
        ));
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut reg = SchemaRegistry::new();
        reg.register(position_report()).unwrap();
        let mut cloned = SchemaRegistry {
            types: reg.types.clone(),
            by_name: HashMap::new(),
            symbols: SymbolTable::new(),
            type_symbols: Vec::new(),
        };
        assert!(cloned.lookup("PositionReport").is_err());
        cloned.rebuild_index();
        assert!(cloned.lookup("PositionReport").is_ok());
        // Symbols are rebuilt deterministically from registration order.
        assert_eq!(
            cloned.type_symbol(reg.lookup("PositionReport").unwrap()),
            reg.type_symbol(reg.lookup("PositionReport").unwrap()),
        );
    }

    #[test]
    fn symbol_table_interns_once_and_shares_allocations() {
        let mut t = SymbolTable::new();
        let a = t.intern("travel");
        let b = t.intern("exit");
        assert_ne!(a, b);
        assert_eq!(t.intern("travel"), a, "idempotent");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("exit"), Some(b));
        assert_eq!(t.get("ghost"), None);
        // Canonical handles are pointer-identical across calls.
        let x = t.canonical("travel");
        let y = t.canonical("travel");
        assert!(Arc::ptr_eq(&x, &y));
        assert!(Arc::ptr_eq(&x, t.resolve(a)));
    }

    #[test]
    fn symbol_table_round_trips_and_rebuilds() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        let bytes = serde::to_bytes(&t);
        let mut back: SymbolTable = serde::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("b"), None, "index skipped on the wire");
        back.rebuild_index();
        assert_eq!(back.get("b"), t.get("b"));
    }

    #[test]
    fn registry_interns_type_and_attr_names() {
        let mut reg = SchemaRegistry::new();
        let id = reg.register(position_report()).unwrap();
        let sym = reg.type_symbol(id);
        assert_eq!(reg.symbols().resolve(sym).as_ref(), "PositionReport");
        assert!(reg.symbols().get("speed").is_some());
        assert!(reg.symbols().get("nope").is_none());
    }
}
