//! Latency harness: arrival schedules, measured service times, and the
//! queueing-model latency computation behind the §7 metrics.
//!
//! The paper measures *maximal latency* — "the maximal time interval
//! elapsed from the event arrival time till the complex event derivation
//! time" — on 3-hour streams. Re-running hours of wall clock per data
//! point is impractical, so the harness simulates the arrival clock:
//! each event's arrival instant comes from its application timestamp
//! scaled by `ns_per_tick`; service times are *measured* with a
//! monotonic clock while the engine processes as fast as it can; and
//! completion follows the single-server queue recurrence
//! `completion = max(arrival, previous completion) + service`.
//! When the engine is faster than the arrival rate, latency stays flat;
//! when it falls behind, the queue — and the latency — grows without
//! bound, which is exactly the behaviour that determines the L-factor
//! (Figure 11b).

use caesar_events::Time;
use serde::{Deserialize, Serialize};

/// Converts application timestamps to simulated arrival instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivalClock {
    /// Nanoseconds of simulated wall time per application tick.
    pub ns_per_tick: u64,
}

impl ArrivalClock {
    /// A clock mapping one application tick to `ns_per_tick` nanoseconds.
    #[must_use]
    pub fn new(ns_per_tick: u64) -> Self {
        Self { ns_per_tick }
    }

    /// Arrival instant (ns since stream start) of an event with the given
    /// application timestamp.
    #[must_use]
    pub fn arrival_ns(&self, t: Time) -> u64 {
        t.saturating_mul(self.ns_per_tick)
    }
}

/// Tracks queueing latency across a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyTracker {
    /// Completion instant of the previous transaction (ns).
    cursor_ns: u64,
    /// Maximum observed latency (ns).
    pub max_latency_ns: u64,
    /// Sum of latencies (ns), for averages.
    pub total_latency_ns: u128,
    /// Transactions observed.
    pub observations: u64,
}

impl LatencyTracker {
    /// Creates an idle tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one transaction: `arrival_ns` from the [`ArrivalClock`],
    /// `service_ns` measured while processing it. Returns the
    /// transaction's latency in ns.
    pub fn record(&mut self, arrival_ns: u64, service_ns: u64) -> u64 {
        let start = self.cursor_ns.max(arrival_ns);
        let completion = start + service_ns;
        self.cursor_ns = completion;
        let latency = completion - arrival_ns;
        self.max_latency_ns = self.max_latency_ns.max(latency);
        self.total_latency_ns += u128::from(latency);
        self.observations += 1;
        latency
    }

    /// Average latency in ns.
    #[must_use]
    pub fn avg_latency_ns(&self) -> u64 {
        if self.observations == 0 {
            0
        } else {
            (self.total_latency_ns / u128::from(self.observations)) as u64
        }
    }

    /// Maximum latency in (fractional) seconds.
    #[must_use]
    pub fn max_latency_secs(&self) -> f64 {
        self.max_latency_ns as f64 / 1e9
    }
}

/// Win ratio of context-aware over context-independent analytics:
/// "the maximal latency of context-independent processing divided by the
/// maximal latency of context-aware processing of the same event query
/// workload against the same input event stream" (§7.1).
#[must_use]
pub fn win_ratio(ci_max_latency_ns: u64, ca_max_latency_ns: u64) -> f64 {
    if ca_max_latency_ns == 0 {
        return if ci_max_latency_ns == 0 {
            1.0
        } else {
            f64::INFINITY
        };
    }
    ci_max_latency_ns as f64 / ca_max_latency_ns as f64
}

/// The L-factor (§7.1): the largest workload scale (e.g. number of
/// roads) whose maximal latency stays within the constraint. `points`
/// are `(scale, max latency ns)` pairs sorted by scale.
#[must_use]
pub fn l_factor(points: &[(u32, u64)], constraint_ns: u64) -> u32 {
    points
        .iter()
        .take_while(|(_, latency)| *latency <= constraint_ns)
        .map(|(scale, _)| *scale)
        .last()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_clock_scales_ticks() {
        let clock = ArrivalClock::new(1_000_000); // 1 tick = 1 ms
        assert_eq!(clock.arrival_ns(0), 0);
        assert_eq!(clock.arrival_ns(5), 5_000_000);
    }

    #[test]
    fn underloaded_latency_equals_service_time() {
        let mut tracker = LatencyTracker::new();
        // Arrivals 1 ms apart; service 0.1 ms: no queueing.
        for i in 0..10u64 {
            let latency = tracker.record(i * 1_000_000, 100_000);
            assert_eq!(latency, 100_000);
        }
        assert_eq!(tracker.max_latency_ns, 100_000);
        assert_eq!(tracker.avg_latency_ns(), 100_000);
    }

    #[test]
    fn overloaded_latency_grows_without_bound() {
        let mut tracker = LatencyTracker::new();
        // Arrivals 1 ms apart; service 2 ms: queue builds up.
        let mut last = 0;
        for i in 0..100u64 {
            last = tracker.record(i * 1_000_000, 2_000_000);
        }
        // The 100th event waits ~99 ms behind the queue.
        assert!(last > 90_000_000, "latency {last} should approach 100 ms");
        assert_eq!(
            tracker.max_latency_ns, last,
            "latency is monotone under overload"
        );
    }

    #[test]
    fn burst_then_idle_drains_queue() {
        let mut tracker = LatencyTracker::new();
        // Burst: 5 events at t=0 with 1 ms service each.
        for _ in 0..5 {
            tracker.record(0, 1_000_000);
        }
        assert_eq!(tracker.max_latency_ns, 5_000_000);
        // Long idle gap: next event sees an empty queue again.
        let latency = tracker.record(1_000_000_000, 1_000_000);
        assert_eq!(latency, 1_000_000);
    }

    #[test]
    fn win_ratio_cases() {
        assert_eq!(win_ratio(8_000, 1_000), 8.0);
        assert_eq!(win_ratio(0, 0), 1.0);
        assert!(win_ratio(5, 0).is_infinite());
    }

    #[test]
    fn l_factor_finds_last_scale_under_constraint() {
        let points = vec![
            (2, 1_000_000_000),
            (3, 2_000_000_000),
            (5, 4_500_000_000),
            (7, 5_000_000_000),
            (8, 9_000_000_000),
        ];
        assert_eq!(l_factor(&points, 5_000_000_000), 7);
        assert_eq!(l_factor(&points, 500_000_000), 0);
    }
}
