//! CAESAR — Context-Aware Event Stream Analytics in Real time.
//!
//! Top-level crate of the workspace: re-exports the public facade
//! ([`caesar_core`]) and the workload substrates, and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! See the [README](https://github.com/caesar-cep/caesar-rs) for a
//! tour, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md` for
//! the paper-reproduction results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod cli;

pub use caesar_core::*;

/// Checkpoint & recovery subsystem (snapshots, event log, crash harness).
pub use caesar_recovery as recovery;

/// Multi-tenant network ingest server (`caesar serve`) and its client.
pub use caesar_server as server;

/// Linear Road benchmark substrate (traffic simulator, model, oracle).
pub use caesar_linear_road as linear_road;
/// Synthetic physical-activity-monitoring substrate.
pub use caesar_pam as pam;

/// Clickstream/funnel substrate (session-state contexts).
pub use caesar_clickstream as clickstream;
