//! Ablation study: the contribution of each optimization pass, measured
//! on the Linear Road workload by CPU (busy) time with one pass
//! disabled at a time.
//!
//! Knobs ablated (see `OptimizerConfig` / `EngineConfig`):
//! * context window push-down (§5.2, Theorem 1),
//! * batch-level suspension by the context-aware router (§6.2),
//! * predicate push-down into pattern operators,
//! * adjacent-filter merging,
//! * workload sharing (§5.3).
//!
//! ```text
//! cargo run --release -p caesar-bench --bin ablation
//! ```

use caesar_bench::{measure, print_table};
use caesar_core::prelude::*;
use caesar_events::generator::WindowPlacement;
use caesar_linear_road::{build_lr_system_critical, LinearRoadConfig, SchedulePolicy, TrafficSim};

const REPEATS: usize = 3;

fn busy_ms(events: &[Event], optimizer: OptimizerConfig, engine: EngineConfig) -> (f64, u64) {
    let (busy, outputs) = (0..REPEATS)
        .map(|_| {
            let mut system = build_lr_system_critical(10, optimizer, engine);
            let m = measure("ablation", &mut system, events.to_vec());
            (
                m.report.wall_time.as_nanos() as u64,
                m.report.outputs_of("TollNotification"),
            )
        })
        .min_by_key(|(busy, _)| *busy)
        .expect("repeats");
    (busy as f64 / 1e6, outputs)
}

fn main() {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 3,
        segments_per_road: 8,
        directions: 1,
        duration: 900,
        seed: 61,
        base_cars: 3.0,
        peak_cars: 9.0,
        schedule: SchedulePolicy::Placed {
            count: 2,
            length: 60,
            placement: WindowPlacement::Uniform,
        },
        ..Default::default()
    });
    let events = sim.generate();
    println!(
        "workload: {} events, 10 critical queries per window",
        events.len()
    );

    let full_opt = OptimizerConfig::default();
    let engine_ca = EngineConfig::default();
    // Warm caches so the first measured row is not inflated.
    let _ = busy_ms(&events, full_opt, engine_ca);
    let (baseline_busy, baseline_outputs) = busy_ms(&events, full_opt, engine_ca);

    let mut rows = vec![vec![
        "full CAESAR".to_string(),
        format!("{baseline_busy:.1}"),
        "1.00".to_string(),
        baseline_outputs.to_string(),
    ]];

    let mut ablate = |label: &str, optimizer: OptimizerConfig, engine: EngineConfig| {
        let (busy, outputs) = busy_ms(&events, optimizer, engine);
        rows.push(vec![
            label.to_string(),
            format!("{busy:.1}"),
            format!("{:.2}", busy / baseline_busy),
            outputs.to_string(),
        ]);
    };

    ablate(
        "- context window push-down",
        OptimizerConfig {
            push_down_context_windows: false,
            ..full_opt
        },
        engine_ca,
    );
    ablate(
        "- predicate push-down",
        OptimizerConfig {
            push_predicates: false,
            ..full_opt
        },
        engine_ca,
    );
    ablate(
        "- filter merging",
        OptimizerConfig {
            merge_filters: false,
            ..full_opt
        },
        engine_ca,
    );
    ablate(
        "- workload sharing",
        OptimizerConfig {
            share_workloads: false,
            ..full_opt
        },
        engine_ca.to_builder().sharing(false).build(),
    );
    ablate(
        "- batch suspension (busy-wait)",
        full_opt,
        engine_ca
            .to_builder()
            .mode(ExecutionMode::ContextIndependent)
            .redundant_derivation(false)
            .build(),
    );
    ablate(
        "- everything (full CI baseline)",
        full_opt,
        engine_ca
            .to_builder()
            .mode(ExecutionMode::ContextIndependent)
            .sharing(false)
            .build(),
    );

    print_table(
        "Ablation: CPU (busy) time with one optimization disabled",
        &["configuration", "busy (ms)", "vs full", "tolls"],
        &rows,
    );
    println!(
        "note: toll counts must match across every row — the passes change \
         cost, never results."
    );
}
