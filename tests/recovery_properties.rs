//! Property-based crash equivalence: for *any* crash index and *any*
//! checkpoint cadence, killing the engine and recovering from disk must
//! be observationally identical to never crashing — and the recovered
//! run must still agree with the Linear Road oracle.

use caesar::linear_road::{expected_outputs, lr_model, LinearRoadConfig, TrafficSim};
use caesar::prelude::*;
use caesar::recovery::crash_and_recover;
use caesar::runtime::Engine;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "caesar-prop-crash-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn lr_engine() -> Engine {
    let seg_attrs: &[(&str, AttrType)] = &[
        ("xway", AttrType::Int),
        ("dir", AttrType::Int),
        ("seg", AttrType::Int),
        ("sec", AttrType::Int),
    ];
    Caesar::builder()
        .model(lr_model(1))
        .schema(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        )
        .schema("ManySlowCars", seg_attrs)
        .schema("FewFastCars", seg_attrs)
        .schema("StoppedCars", seg_attrs)
        .schema("StoppedCarsRemoved", seg_attrs)
        .within(60)
        .engine_config(
            EngineConfig::builder()
                .mode(ExecutionMode::ContextAware)
                .collect_outputs(true)
                .build(),
        )
        .build()
        .expect("LR model builds")
        .engine
}

/// One shared simulation: generating traffic per proptest case would
/// dominate the runtime without adding coverage (the property varies the
/// crash index and cadence, not the workload).
fn shared_stream() -> &'static (Vec<Event>, u64, u64, u64) {
    static STREAM: OnceLock<(Vec<Event>, u64, u64, u64)> = OnceLock::new();
    STREAM.get_or_init(|| {
        let mut sim = TrafficSim::new(LinearRoadConfig {
            roads: 1,
            segments_per_road: 4,
            duration: 600,
            ..LinearRoadConfig::default()
        });
        let events = sim.generate();
        let oracle = expected_outputs(&events, sim.registry());
        (
            events,
            oracle.zero_tolls,
            oracle.real_tolls,
            oracle.accident_warnings,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_crash_index_and_cadence_recover_exactly(
        crash_frac in 0.0f64..1.0,
        every in 1u64..800,
    ) {
        let (events, zero_tolls, real_tolls, warnings) = shared_stream();
        let crash_after = ((events.len() as f64) * crash_frac) as usize;
        let dir = temp_dir();
        let report = crash_and_recover(lr_engine, events, &dir, every, crash_after)
            .expect("crash/recover runs");
        prop_assert_eq!(report.resumed_at, crash_after.min(events.len()) as u64);
        prop_assert!(
            report.is_equivalent(),
            "crash at {}/{} cadence {}: diverged ({} vs {} outputs)",
            crash_after,
            events.len(),
            every,
            report.baseline_outputs.len(),
            report.recovered_outputs.len()
        );
        prop_assert_eq!(report.recovered.outputs_of("ZeroToll"), *zero_tolls);
        prop_assert_eq!(report.recovered.outputs_of("TollNotification"), *real_tolls);
        prop_assert_eq!(report.recovered.outputs_of("AccidentWarning"), *warnings);
        let _ = fs::remove_dir_all(&dir);
    }
}
