//! A deliberately tiny HTTP/1.0 responder for `GET /metrics` and
//! `GET /healthz`.
//!
//! The workspace vendors no HTTP stack and the endpoint serves exactly
//! two read-only documents to a scraper, so this is a hand-rolled
//! responder: read until the header terminator (8 KiB cap, short
//! timeouts), match the request line, answer with `Connection: close`.
//! It shares the server's `Shared` state for the JSON document and
//! exits when the server starts draining.

use crate::server::Shared;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const MAX_REQUEST: usize = 8 * 1024;

pub(crate) fn spawn(listener: TcpListener, shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        loop {
            if shared.stopping() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    // Scrapes are cheap; serve inline rather than
                    // spawning per request.
                    let _ = serve_one(stream, &shared);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    })
}

fn serve_one(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    let mut request = Vec::new();
    let mut buf = [0u8; 1024];
    while !request.windows(4).any(|w| w == b"\r\n\r\n") {
        if request.len() > MAX_REQUEST {
            return respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain",
                "too large",
            );
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        request.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&request);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");

    match (method, path) {
        ("GET", "/metrics") => {
            let body = shared.metrics_json();
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        ("GET", "/healthz") => respond(&mut stream, "200 OK", "text/plain", "ok"),
        ("GET", _) => respond(&mut stream, "404 Not Found", "text/plain", "not found"),
        _ => respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "GET only",
        ),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
