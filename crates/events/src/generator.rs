//! Seeded synthetic-stream utilities shared by the workload substrates.
//!
//! The evaluation varies "context window related parameters ... only
//! through input data manipulation" (§7.1): window count, length, overlap
//! and *placement distribution* (uniform vs. Poisson with positive /
//! negative skew, Figure 13) are all properties of the generated input.
//! This module provides the rate curves and placement distributions those
//! generators share, all driven by a seedable RNG so every experiment is
//! reproducible.

use crate::time::{Interval, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for workload generation.
pub type WorkloadRng = StdRng;

/// Creates the workload RNG from an experiment seed.
#[must_use]
pub fn rng(seed: u64) -> WorkloadRng {
    StdRng::seed_from_u64(seed)
}

/// An event-rate curve: events per tick as a function of time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateCurve {
    /// Constant rate.
    Constant(f64),
    /// Linear ramp from `start_rate` at t=0 to `end_rate` at `duration`
    /// (the Linear Road stream "gradually increases during 3 hours",
    /// Fig. 10b).
    LinearRamp {
        /// Rate at time zero.
        start_rate: f64,
        /// Rate at `duration`.
        end_rate: f64,
        /// Total experiment duration in ticks.
        duration: Time,
    },
}

impl RateCurve {
    /// Events per tick at time `t`.
    #[must_use]
    pub fn rate_at(&self, t: Time) -> f64 {
        match *self {
            RateCurve::Constant(r) => r,
            RateCurve::LinearRamp {
                start_rate,
                end_rate,
                duration,
            } => {
                if duration == 0 {
                    return end_rate;
                }
                let frac = (t.min(duration) as f64) / (duration as f64);
                start_rate + (end_rate - start_rate) * frac
            }
        }
    }

    /// Draws an integer event count for tick `t` whose expectation equals
    /// the curve's rate (fractional part resolved by a Bernoulli draw).
    pub fn sample_count(&self, t: Time, rng: &mut WorkloadRng) -> usize {
        let rate = self.rate_at(t).max(0.0);
        let base = rate.floor() as usize;
        let frac = rate - rate.floor();
        base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0 - f64::EPSILON)))
    }
}

/// Placement distribution of context windows over the experiment
/// timeline (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowPlacement {
    /// Windows spread evenly over the timeline.
    Uniform,
    /// Windows clustered at the *beginning* of the experiment, where the
    /// ramping stream rate is low ("Poisson distribution with positive
    /// skew: λ is the first second").
    PoissonPositiveSkew,
    /// Windows clustered at the *end*, where the stream rate is high
    /// ("λ is the last second").
    PoissonNegativeSkew,
}

impl WindowPlacement {
    /// Places `count` non-overlapping windows of `length` ticks inside
    /// `[0, horizon]`, returning them sorted by start time.
    ///
    /// Windows are clipped to the horizon and separated by at least one
    /// tick so that context transitions remain unambiguous.
    pub fn place(
        &self,
        count: usize,
        length: Time,
        horizon: Time,
        rng: &mut WorkloadRng,
    ) -> Vec<Interval> {
        if count == 0 || horizon == 0 {
            return Vec::new();
        }
        let length = length.min(horizon);
        let mut starts: Vec<Time> = (0..count)
            .map(|i| match self {
                WindowPlacement::Uniform => {
                    // Even spacing with jitter inside each slot.
                    let slot = horizon / count as Time;
                    let base = i as Time * slot;
                    let jitter = if slot > length {
                        rng.gen_range(0..=(slot - length).max(1))
                    } else {
                        0
                    };
                    base + jitter
                }
                WindowPlacement::PoissonPositiveSkew => sample_exponential_offset(horizon, rng),
                WindowPlacement::PoissonNegativeSkew => {
                    horizon.saturating_sub(sample_exponential_offset(horizon, rng) + length)
                }
            })
            .collect();
        starts.sort_unstable();
        // Separate overlapping placements: push each window after the
        // previous one if needed, clamping at the horizon.
        let mut windows = Vec::with_capacity(count);
        let mut cursor: Time = 0;
        for s in starts {
            let start = s.max(cursor);
            let end = (start + length).min(horizon);
            if start >= end {
                continue;
            }
            windows.push(Interval::new(start, end));
            cursor = end + 1;
        }
        windows
    }
}

/// Samples an offset from an exponential distribution with mean
/// `horizon / 8`, clamped into `[0, horizon)`. This concentrates mass
/// near zero, matching the paper's skewed Poisson placements.
fn sample_exponential_offset(horizon: Time, rng: &mut WorkloadRng) -> Time {
    let mean = (horizon as f64 / 8.0).max(1.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let sample = -mean * u.ln();
    (sample as Time).min(horizon.saturating_sub(1))
}

/// Fraction of `[0, horizon]` covered by the (non-overlapping) windows —
/// the "% of the input event stream covered by the context windows"
/// annotated above the bars of Figures 12(c) and 12(d).
#[must_use]
pub fn coverage(windows: &[Interval], horizon: Time) -> f64 {
    if horizon == 0 {
        return 0.0;
    }
    let covered: Time = windows.iter().map(Interval::len).sum();
    covered as f64 / horizon as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_samples_expectation() {
        let curve = RateCurve::Constant(3.0);
        let mut r = rng(1);
        assert_eq!(curve.rate_at(0), 3.0);
        assert_eq!(curve.sample_count(0, &mut r), 3);
    }

    #[test]
    fn linear_ramp_interpolates() {
        let curve = RateCurve::LinearRamp {
            start_rate: 0.0,
            end_rate: 100.0,
            duration: 100,
        };
        assert_eq!(curve.rate_at(0), 0.0);
        assert_eq!(curve.rate_at(50), 50.0);
        assert_eq!(curve.rate_at(100), 100.0);
        // Clamps past the end.
        assert_eq!(curve.rate_at(1000), 100.0);
    }

    #[test]
    fn fractional_rate_averages_out() {
        let curve = RateCurve::Constant(0.5);
        let mut r = rng(42);
        let total: usize = (0..10_000).map(|t| curve.sample_count(t, &mut r)).sum();
        assert!(
            (4_000..6_000).contains(&total),
            "total {total} not near 5000"
        );
    }

    #[test]
    fn uniform_placement_spreads_windows() {
        let mut r = rng(7);
        let ws = WindowPlacement::Uniform.place(10, 50, 1_000, &mut r);
        assert_eq!(ws.len(), 10);
        for pair in ws.windows(2) {
            assert!(pair[0].end < pair[1].start, "windows must not overlap");
        }
        // Uniform windows reach into the last quarter of the horizon.
        assert!(ws.last().unwrap().start >= 750);
    }

    #[test]
    fn positive_skew_clusters_early() {
        let mut r = rng(7);
        let ws = WindowPlacement::PoissonPositiveSkew.place(10, 20, 10_000, &mut r);
        let mean_start: f64 = ws.iter().map(|w| w.start as f64).sum::<f64>() / ws.len() as f64;
        assert!(
            mean_start < 5_000.0,
            "positive skew should cluster early, mean {mean_start}"
        );
    }

    #[test]
    fn negative_skew_clusters_late() {
        let mut r = rng(7);
        let ws = WindowPlacement::PoissonNegativeSkew.place(10, 20, 10_000, &mut r);
        let mean_start: f64 = ws.iter().map(|w| w.start as f64).sum::<f64>() / ws.len() as f64;
        assert!(
            mean_start > 5_000.0,
            "negative skew should cluster late, mean {mean_start}"
        );
    }

    #[test]
    fn coverage_fraction() {
        let ws = vec![Interval::new(0, 250), Interval::new(500, 750)];
        let c = coverage(&ws, 1_000);
        assert!((c - 0.5).abs() < 1e-9);
        assert_eq!(coverage(&[], 0), 0.0);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let a = WindowPlacement::Uniform.place(5, 10, 500, &mut rng(99));
        let b = WindowPlacement::Uniform.place(5, 10, 500, &mut rng(99));
        assert_eq!(a, b);
    }
}
