//! Clickstream differential leg: the hand-written session-state model
//! from `caesar-clickstream` over seeded funnel streams, every workload
//! run through the full 12-leg engine mode matrix (plus the two
//! shared-prefix legs), the served loopback legs, and the provenance
//! sweep — all byte-identical to the reference oracle.
//!
//! The random-model sweep (`differential_random.rs`) explores model
//! space; this leg pins the *fixed* model the clickstream substrate,
//! bench and docs all describe, and explores data space instead:
//! user-key population, Zipf skew, session mix, disorder, scattered
//! `u32` partition ids and replication (5–15 queries).
//!
//! Knobs mirror `differential_random.rs`:
//!
//! * `CAESAR_DIFF_CASES` — random workloads per sweep (default 25
//!   locally; CI sets 70).
//! * `CAESAR_DIFF_SEED_BASE` — base seed of the randomized sweep.
//! * `CAESAR_DIFF_SEEDS` — comma-separated explicit seeds (hex `0x..`
//!   or decimal); overrides the sweep.

use caesar_testkit::{
    check_workload, check_workload_provenance, check_workload_served,
    clickstream_workload_from_seed,
};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| parse_u64(&s))
        .unwrap_or(default)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn explicit_seeds() -> Option<Vec<u64>> {
    let raw = std::env::var("CAESAR_DIFF_SEEDS").ok()?;
    let seeds: Vec<u64> = raw.split(',').filter_map(parse_u64).collect();
    (!seeds.is_empty()).then_some(seeds)
}

/// SplitMix64 — decorrelates consecutive sweep indices into seeds.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn check_seed(seed: u64) {
    let workload = clickstream_workload_from_seed(seed);
    if let Err(failure) = check_workload(&workload) {
        panic!(
            "clickstream diverged from reference oracle\n\n{failure}\n\
             reproduce: CAESAR_DIFF_SEEDS={seed:#x} cargo test --test clickstream_differential"
        );
    }
}

/// Fixed seeds checked on every run; grown whenever a randomized run
/// finds a divergence.
const PINNED_SEEDS: &[u64] = &[
    0x0000_0000_0000_0000,
    0x0000_0000_0000_0007,
    0x0000_0000_c11c_0001,
    0x5eed_5eed_5eed_5eed,
    0xdead_beef_cafe_f00d,
    0xffff_ffff_ffff_ffff,
];

#[test]
fn pinned_seeds_match_oracle() {
    for &seed in PINNED_SEEDS {
        check_seed(seed);
    }
}

#[test]
fn random_sweep_matches_oracle() {
    if let Some(seeds) = explicit_seeds() {
        for seed in seeds {
            check_seed(seed);
        }
        return;
    }
    let cases = env_u64("CAESAR_DIFF_CASES", 25);
    let base = env_u64("CAESAR_DIFF_SEED_BASE", 0xC11C_57EA_4D00_0001);
    for i in 0..cases {
        check_seed(mix(base ^ i));
    }
}

/// The served legs: each workload round-tripped through a loopback
/// `caesar-server` instance (strict and speculative tenants) must also
/// reproduce the oracle byte-for-byte.
#[test]
fn served_sweep_matches_oracle() {
    let cases = env_u64("CAESAR_SERVED_CASES", 6).min(env_u64("CAESAR_DIFF_CASES", 25));
    let base = env_u64("CAESAR_DIFF_SEED_BASE", 0xC11C_57EA_4D00_0001) ^ 0x5e4d;
    for i in 0..cases {
        let seed = mix(base ^ i);
        let workload = clickstream_workload_from_seed(seed);
        if let Err(failure) = check_workload_served(&workload) {
            panic!(
                "served clickstream diverged from reference oracle\n\n{failure}\n\
                 reproduce: CAESAR_DIFF_SEEDS={seed:#x} cargo test --test clickstream_differential"
            );
        }
    }
}

/// The provenance sweep: timestamp-collecting mode must reproduce the
/// oracle's per-match provenance byte-for-byte (provenance is part of
/// each output's wire encoding).
#[test]
fn provenance_sweep_matches_oracle() {
    let cases = env_u64("CAESAR_DIFF_CASES", 25);
    let base = env_u64("CAESAR_DIFF_SEED_BASE", 0xC11C_57EA_4D00_0001) ^ 0x7047;
    for &seed in PINNED_SEEDS {
        let workload = clickstream_workload_from_seed(seed);
        if let Err(failure) = check_workload_provenance(&workload) {
            panic!("clickstream provenance diverged (pinned)\n\n{failure}");
        }
    }
    for i in 0..cases {
        let seed = mix(base ^ i);
        let workload = clickstream_workload_from_seed(seed);
        if let Err(failure) = check_workload_provenance(&workload) {
            panic!(
                "clickstream provenance diverged from reference oracle\n\n{failure}\n\
                 reproduce: CAESAR_DIFF_SEEDS={seed:#x} cargo test --test clickstream_differential"
            );
        }
    }
}
