//! Offline shim for `proptest`.
//!
//! Re-implements the slice of the proptest API this workspace uses:
//! `Strategy` combinators (`prop_map`, `prop_recursive`, `boxed`,
//! tuples, ranges, regex-literal string strategies), `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::{select, Index}`,
//! `prop::bool::ANY`, and the `proptest!`/`prop_assert*`/`prop_oneof!`
//! macros. Cases are generated from a deterministic per-test RNG; there
//! is no shrinking — a failing case panics with its message, and the
//! fixed seeding makes it reproducible by rerunning the test.

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use std::sync::Arc;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// Type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves and
        /// `recurse` wraps a strategy for depth `d` into one for depth
        /// `d + 1`, up to `depth` levels. The `_desired_size` /
        /// `_expected_branch` tuning knobs of upstream proptest are
        /// accepted but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
            for _ in 0..depth {
                let deeper = recurse(levels.last().expect("non-empty").clone());
                levels.push(deeper.boxed());
            }
            Union::new(levels).boxed()
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// Object-safe core of [`Strategy`], used behind [`BoxedStrategy`].
    pub trait DynStrategy<V> {
        /// Generates one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A cheaply-cloneable, type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among equally-weighted alternative strategies
    /// (backs `prop_oneof!` and `prop_recursive` depth mixing).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "Union of zero strategies");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    impl_range_float!(f32, f64);

    /// String-literal strategies: the literal is a mini-regex sampled
    /// per case (character classes, `\PC`, and `{m,n}`/`?`/`*`/`+`
    /// repetition — the subset proptest users here rely on).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::sample_regex(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! Canonical strategies per type (`any::<T>()`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{FFFD}')
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use crate::arbitrary::Arbitrary;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }

    /// Uniformly selects one of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    #[must_use]
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over zero items");
        Select { items }
    }

    /// An index usable against collections of any (non-zero) length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        /// Panics if `len` is zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly random booleans.
    pub const ANY: BoolAny = BoolAny;
}

pub mod string {
    //! Mini-regex sampling behind string-literal strategies.

    use crate::test_runner::TestRng;
    use std::iter::Peekable;
    use std::str::Chars;

    enum Atom {
        Literal(char),
        /// One char drawn from inclusive ranges.
        Class(Vec<(char, char)>),
    }

    /// Printable-ish sample space for `\PC` ("not Unicode category
    /// Other"): ASCII plus a few accented/Greek/CJK ranges to stress
    /// UTF-8 handling.
    fn printable_ranges() -> Vec<(char, char)> {
        vec![
            (' ', '~'),
            ('\u{00A1}', '\u{00FF}'),
            ('\u{0391}', '\u{03A9}'),
            ('\u{4E00}', '\u{4E2F}'),
        ]
    }

    fn parse_class(chars: &mut Peekable<Chars<'_>>) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        loop {
            let c = match chars.next() {
                None => break,
                Some(']') => break,
                Some('\\') => chars.next().unwrap_or('\\'),
                Some(c) => c,
            };
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next(); // the '-'
                match ahead.peek() {
                    Some(&']') | None => ranges.push((c, c)),
                    _ => {
                        chars.next(); // consume '-'
                        let hi = match chars.next() {
                            Some('\\') => chars.next().unwrap_or('\\'),
                            Some(h) => h,
                            None => c,
                        };
                        ranges.push((c, hi));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        ranges
    }

    /// Parses `{m}`, `{m,}` or `{m,n}`; `chars` is positioned after `{`.
    fn parse_counts(chars: &mut Peekable<Chars<'_>>) -> (usize, usize) {
        let mut lo = String::new();
        let mut hi = String::new();
        let mut after_comma = false;
        for c in chars.by_ref() {
            match c {
                '}' => break,
                ',' => after_comma = true,
                d if after_comma => hi.push(d),
                d => lo.push(d),
            }
        }
        let lo: usize = lo.parse().unwrap_or(0);
        let hi: usize = if after_comma {
            hi.parse().unwrap_or(lo + 8)
        } else {
            lo
        };
        (lo, hi.max(lo))
    }

    fn sample_from_ranges(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|(lo, hi)| u64::from(*hi as u32) - u64::from(*lo as u32) + 1)
            .sum();
        let mut pick = rng.below(total.max(1));
        for (lo, hi) in ranges {
            let span = u64::from(*hi as u32) - u64::from(*lo as u32) + 1;
            if pick < span {
                return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
            }
            pick -= span;
        }
        ranges.first().map_or('?', |(lo, _)| *lo)
    }

    /// Samples one string matching the mini-regex `pattern`.
    pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') | Some('p') => {
                        // `\PC` (and treat any `\p{...}`-ish escape the
                        // same): printable characters.
                        if chars.peek() == Some(&'C') {
                            chars.next();
                        }
                        Atom::Class(printable_ranges())
                    }
                    Some(esc) => Atom::Literal(esc),
                    None => Atom::Literal('\\'),
                },
                '.' => Atom::Class(printable_ranges()),
                other => Atom::Literal(other),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_counts(&mut chars)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                match &atom {
                    Atom::Literal(l) => out.push(*l),
                    Atom::Class(ranges) => out.push(sample_from_ranges(ranges, rng)),
                }
            }
        }
        out
    }
}

pub mod test_runner {
    //! Deterministic case driver.

    /// Per-suite configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; the shim halves that twice to
            // keep whole-engine properties fast in CI.
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic SplitMix64 generator seeding each case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a seed.
        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `0..n` (`n` of 0 is treated as 1).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n.max(1)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `config.cases` cases of one property; panics on the first
    /// failure with the case number (rerunning reproduces it exactly).
    pub fn run_cases<F>(config: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        for i in 0..config.cases {
            let mut rng = TestRng::from_seed(fnv1a(name) ^ (u64::from(i) << 32 | 0x5eed));
            if let Err(msg) = case(&mut rng) {
                panic!("proptest '{name}' failed at deterministic case {i}: {msg}");
            }
        }
    }
}

/// One property inside a `proptest!` block; expands each
/// `#[test] fn name(arg in strategy, ...) { body }` into a plain test
/// generating its arguments per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            $crate::test_runner::run_cases(
                $config,
                stringify!($name),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    (move || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
    )*};
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {:?} != {:?}", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{}: {:?} != {:?}", format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
}

/// Uniform choice among strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(1);
        let strat = (0u32..10, 5i64..=6, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn regex_class_and_counts() {
        let mut rng = crate::test_runner::TestRng::from_seed(2);
        for _ in 0..100 {
            let s = "[a-c]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let any_printable = "\\PC{0,20}".generate(&mut rng);
        assert!(any_printable.chars().count() <= 20);
    }

    #[test]
    fn oneof_recursive_and_collections_compose() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(n) => (-1..5).contains(n),
                Tree::Node(l, r) => leaves_in_range(l) && leaves_in_range(r),
            }
        }
        let strat = prop_oneof![(0i64..5).prop_map(Tree::Leaf), Just(Tree::Leaf(-1)),]
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            });
        let mut rng = crate::test_runner::TestRng::from_seed(3);
        let trees = prop::collection::vec(strat, 1..20).generate(&mut rng);
        assert!(!trees.is_empty());
        assert!(trees.iter().all(|t| depth(t) <= 3));
        assert!(trees.iter().all(leaves_in_range));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_plumbing_works(v in prop::collection::vec(0u8..=2, 1..6), b in prop::bool::ANY) {
            prop_assert!(v.len() < 6, "generated {} elements", v.len());
            prop_assert_eq!(u8::from(b) <= 1, true);
        }
    }
}
