//! Linear Road event schemas and stream-partition encoding.

use caesar_events::{AttrType, PartitionId, Schema, SchemaRegistry};

/// The benchmark's response-time constraint: 5 seconds (§7.1).
pub const LATENCY_CONSTRAINT_NS: u64 = 5_000_000_000;

/// Cars report their position every 30 seconds.
pub const REPORT_INTERVAL: u64 = 30;

/// Encodes `(xway, dir, seg)` into the stream partition id — the
/// unidirectional road segment that owns context state (§6.2).
#[must_use]
pub fn partition_id(xway: u32, dir: u32, seg: u32, segments_per_road: u32) -> PartitionId {
    PartitionId(xway * 2 * segments_per_road + dir * segments_per_road + seg)
}

/// Registers all Linear Road input event types.
pub fn register_schemas(registry: &mut SchemaRegistry) {
    for schema in [
        // The benchmark position report (§2): all-integer attributes
        // except the lane label.
        Schema::new(
            "PositionReport",
            &[
                ("vid", AttrType::Int),
                ("sec", AttrType::Int),
                ("speed", AttrType::Int),
                ("xway", AttrType::Int),
                ("lane", AttrType::Str),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("pos", AttrType::Int),
            ],
        ),
        // Ground-truth condition markers (see crate docs).
        Schema::new(
            "ManySlowCars",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        ),
        Schema::new(
            "FewFastCars",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        ),
        Schema::new(
            "StoppedCars",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        ),
        Schema::new(
            "StoppedCarsRemoved",
            &[
                ("xway", AttrType::Int),
                ("dir", AttrType::Int),
                ("seg", AttrType::Int),
                ("sec", AttrType::Int),
            ],
        ),
    ] {
        registry
            .register(schema)
            .expect("linear road schemas are consistent");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_encoding_is_injective_per_road_network() {
        let mut seen = std::collections::HashSet::new();
        for xway in 0..3 {
            for dir in 0..2 {
                for seg in 0..100 {
                    assert!(seen.insert(partition_id(xway, dir, seg, 100)));
                }
            }
        }
        assert_eq!(seen.len(), 600);
    }

    #[test]
    fn schemas_register_cleanly() {
        let mut reg = SchemaRegistry::new();
        register_schemas(&mut reg);
        assert_eq!(reg.len(), 5);
        assert_eq!(reg.schema_by_name("PositionReport").unwrap().arity(), 8);
        // Idempotent.
        register_schemas(&mut reg);
        assert_eq!(reg.len(), 5);
    }
}
