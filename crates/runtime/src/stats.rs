//! The statistics gatherer of the optimization layer (Figure 8).
//!
//! "The query plan is optimized using several context-aware optimization
//! strategies" driven by a cost model; the statistics gatherer feeds
//! that model with *observed* values from a running engine: per-type
//! input rates, per-context activity fractions (from the context window
//! operators' admit/drop counters) and per-filter observed
//! selectivities. The output [`Stats`] can be handed back to the
//! [`Optimizer`](caesar_optimizer::Optimizer) to re-optimize with real
//! numbers instead of defaults.

use caesar_algebra::cost::Stats;
use caesar_algebra::ops::Op;
use caesar_algebra::plan::QueryPlan;
use caesar_events::{Time, TypeId};
use std::collections::BTreeMap;

/// Raw observations accumulated while visiting plans.
#[derive(Debug, Clone, Default)]
pub struct Observations {
    /// Events ingested per input type.
    pub inputs_by_type: BTreeMap<TypeId, u64>,
    /// Stream progress (ticks observed).
    pub progress: Time,
    /// Per context bit: (admitted, dropped) sums over all context
    /// window operators guarding that bit.
    pub window_counts: BTreeMap<u8, (u64, u64)>,
    /// Per query: observed filter selectivity.
    pub filter_selectivities: BTreeMap<String, f64>,
    /// Per query: pattern matches / events processed.
    pub pattern_match_rates: BTreeMap<String, f64>,
    /// Rows evaluated by vectorized kernels across all filter and
    /// projection operators (batch-path coverage observability).
    pub kernel_rows: u64,
    /// Rows the kernel compiler could not cover, evaluated by the
    /// interpreter fallback on the batch path.
    pub fallback_rows: u64,
}

impl Observations {
    /// Folds one plan's operator counters into the observations.
    pub fn visit_plan(&mut self, plan: &QueryPlan) {
        for op in &plan.ops {
            match op {
                Op::ContextWindow(cw) => {
                    let entry = self.window_counts.entry(cw.context_bit).or_insert((0, 0));
                    entry.0 += cw.admitted;
                    entry.1 += cw.dropped;
                }
                Op::Filter(f) => {
                    if let Some(sel) = f.observed_selectivity() {
                        self.filter_selectivities
                            .insert(plan.query_id.to_string(), sel);
                    }
                    self.kernel_rows += f.kernel_rows;
                    self.fallback_rows += f.fallback_rows;
                }
                Op::Project(p) => {
                    self.kernel_rows += p.kernel_rows;
                    self.fallback_rows += p.fallback_rows;
                }
                Op::Pattern(p) if p.stats.events_processed > 0 => {
                    self.pattern_match_rates.insert(
                        plan.query_id.to_string(),
                        p.stats.matches as f64 / p.stats.events_processed as f64,
                    );
                }
                _ => {}
            }
        }
    }

    /// Converts the observations into cost-model statistics.
    #[must_use]
    pub fn to_stats(&self) -> Stats {
        let mut stats = Stats::new();
        let ticks = self.progress.max(1) as f64;
        for (&tid, &count) in &self.inputs_by_type {
            stats.set_rate(tid, count as f64 / ticks);
        }
        for (&bit, &(admitted, dropped)) in &self.window_counts {
            let total = admitted + dropped;
            if total > 0 {
                stats.set_activity(bit, admitted as f64 / total as f64);
            }
        }
        stats
    }

    /// Human-readable summary (for the CLI's explain output and logs).
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let ticks = self.progress.max(1) as f64;
        let _ = writeln!(s, "observed over {} ticks:", self.progress);
        for (tid, count) in &self.inputs_by_type {
            let _ = writeln!(s, "  rate[{tid}] = {:.4}/tick", *count as f64 / ticks);
        }
        for (bit, (admitted, dropped)) in &self.window_counts {
            let total = (admitted + dropped).max(1);
            let _ = writeln!(
                s,
                "  activity[bit {bit}] = {:.1}% ({admitted} admitted / {dropped} dropped)",
                *admitted as f64 / total as f64 * 100.0
            );
        }
        for (query, sel) in &self.filter_selectivities {
            let _ = writeln!(s, "  filter selectivity[{query}] = {sel:.4}");
        }
        for (query, rate) in &self.pattern_match_rates {
            let _ = writeln!(s, "  pattern match rate[{query}] = {rate:.4}");
        }
        let vector_total = self.kernel_rows + self.fallback_rows;
        if vector_total > 0 {
            let _ = writeln!(
                s,
                "  vectorized kernel coverage = {:.1}% ({} kernel / {} fallback rows)",
                self.kernel_rows as f64 / vector_total as f64 * 100.0,
                self.kernel_rows,
                self.fallback_rows
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caesar_algebra::ops::{ContextWindowOp, FilterOp};
    use caesar_algebra::pattern::PatternOp;
    use caesar_query::ast::{EventQuery, Pattern as AstPattern, QueryId};
    use caesar_query::queryset::CompiledQuery;

    fn plan_with(ops: Vec<Op>) -> QueryPlan {
        QueryPlan {
            query_id: QueryId(4),
            context: "c".into(),
            context_bit: 0,
            ops,
            input_types: vec![TypeId(0)],
            output_type: None,
            is_deriving: false,
            source: std::sync::Arc::new(CompiledQuery {
                id: QueryId(4),
                query: EventQuery {
                    name: None,
                    action: None,
                    derive: None,
                    pattern: AstPattern::event_unbound("X"),
                    where_clause: None,
                    within: None,
                    contexts: vec!["c".into()],
                },
                context: "c".into(),
                source: 0,
            }),
        }
    }

    #[test]
    fn window_counters_become_activity() {
        let mut cw = ContextWindowOp::new(3);
        cw.admitted = 30;
        cw.dropped = 70;
        let plan = plan_with(vec![Op::ContextWindow(cw)]);
        let mut obs = Observations {
            progress: 100,
            ..Default::default()
        };
        obs.inputs_by_type.insert(TypeId(0), 250);
        obs.visit_plan(&plan);
        let stats = obs.to_stats();
        assert!((stats.activity(3) - 0.3).abs() < 1e-9);
        assert!((stats.rate(TypeId(0)) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn filter_selectivity_observed() {
        let mut f = FilterOp::new(vec![]);
        f.evaluated = 10;
        f.accepted = 4;
        let plan = plan_with(vec![Op::Filter(f)]);
        let mut obs = Observations::default();
        obs.visit_plan(&plan);
        assert_eq!(obs.filter_selectivities.get("Q4"), Some(&0.4));
    }

    #[test]
    fn kernel_coverage_aggregated_and_summarized() {
        let mut f = FilterOp::new(vec![]);
        f.kernel_rows = 90;
        f.fallback_rows = 10;
        let plan = plan_with(vec![Op::Filter(f)]);
        let mut obs = Observations::default();
        obs.visit_plan(&plan);
        assert_eq!((obs.kernel_rows, obs.fallback_rows), (90, 10));
        let text = obs.summary();
        assert!(
            text.contains("vectorized kernel coverage = 90.0%"),
            "{text}"
        );
    }

    #[test]
    fn pattern_match_rate_observed() {
        let mut p = PatternOp::passthrough(TypeId(1));
        p.stats.events_processed = 50;
        p.stats.matches = 5;
        let plan = plan_with(vec![Op::Pattern(p)]);
        let mut obs = Observations::default();
        obs.visit_plan(&plan);
        assert_eq!(obs.pattern_match_rates.get("Q4"), Some(&0.1));
    }

    #[test]
    fn summary_mentions_everything() {
        let mut obs = Observations {
            progress: 10,
            ..Default::default()
        };
        obs.inputs_by_type.insert(TypeId(2), 20);
        obs.window_counts.insert(1, (8, 2));
        obs.filter_selectivities.insert("Q1".into(), 0.25);
        let text = obs.summary();
        assert!(text.contains("rate[T2] = 2.0000/tick"), "{text}");
        assert!(text.contains("activity[bit 1] = 80.0%"), "{text}");
        assert!(text.contains("selectivity[Q1] = 0.2500"), "{text}");
    }
}
