//! Criterion micro-benchmarks of the runtime: the context bit vector,
//! batch routing, and full engine throughput on a small Linear Road
//! stream in both execution modes.

use caesar_algebra::context_table::ContextTable;
use caesar_core::prelude::*;
use caesar_linear_road::{build_lr_system, LinearRoadConfig, TrafficSim};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_context_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("context_table");
    group.bench_function("admit_lookup", |b| {
        let mut table = ContextTable::new(16, 0);
        table.partition_mut(PartitionId(3)).initiate(5, 10);
        b.iter(|| black_box(table.admits(PartitionId(3), 5, black_box(42))))
    });
    group.bench_function("initiate_terminate_cycle", |b| {
        let mut table = ContextTable::new(16, 0);
        let mut t = 1u64;
        b.iter(|| {
            let pc = table.partition_mut(PartitionId(0));
            pc.initiate(3, t);
            pc.terminate(3, t + 1);
            t += 2;
            black_box(pc.bits())
        })
    });
    group.finish();
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut sim = TrafficSim::new(LinearRoadConfig {
        roads: 1,
        segments_per_road: 4,
        duration: 300,
        seed: 99,
        ..Default::default()
    });
    let events = sim.generate();
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.sample_size(20);
    for (label, mode) in [
        ("context_aware", ExecutionMode::ContextAware),
        ("context_independent", ExecutionMode::ContextIndependent),
    ] {
        group.bench_function(format!("lr_300s_{label}"), |b| {
            b.iter(|| {
                let mut system = build_lr_system(
                    5,
                    OptimizerConfig::default(),
                    EngineConfig::builder().mode(mode).build(),
                );
                let report = system
                    .run_stream(&mut VecStream::new(events.clone()))
                    .unwrap();
                black_box(report.events_out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_context_table, bench_engine_throughput);
criterion_main!(benches);
