//! Error types for the event model substrate.

use std::fmt;

/// Errors raised by the event model (schema violations, type errors,
/// out-of-order ingestion).
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// A value had a different runtime type than an operation required.
    TypeMismatch {
        /// What the operation needed.
        expected: &'static str,
        /// What it actually got.
        found: &'static str,
    },
    /// Arithmetic failure (overflow, division by zero).
    Arithmetic {
        /// The operator that failed.
        op: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// An event type name was not registered.
    UnknownType(String),
    /// An attribute name does not exist on the schema.
    UnknownAttr {
        /// The event type searched.
        event_type: String,
        /// The missing attribute.
        attr: String,
    },
    /// An event carried the wrong number of attribute values for its schema.
    ArityMismatch {
        /// The event type.
        event_type: String,
        /// Attributes declared by the schema.
        expected: usize,
        /// Attributes supplied.
        found: usize,
    },
    /// An event arrived with a timestamp older than the queue watermark.
    /// CAESAR assumes in-order streams (§6.2); the distributor rejects
    /// violations instead of silently corrupting context state.
    OutOfOrder {
        /// Current queue watermark.
        watermark: u64,
        /// Offending event timestamp.
        timestamp: u64,
    },
    /// A type was registered twice with conflicting schemas.
    DuplicateType(String),
    /// A sharded run lost a worker mid-stream. The distributor drains the
    /// rest of the input (so the count is exact) instead of silently
    /// stopping; `cause` is the worker's underlying error, rendered.
    ShardsAborted {
        /// Events that were never delivered to any shard.
        unprocessed: u64,
        /// The error that killed the worker.
        cause: String,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            EventError::Arithmetic { op, detail } => {
                write!(f, "arithmetic error in '{op}': {detail}")
            }
            EventError::UnknownType(name) => write!(f, "unknown event type '{name}'"),
            EventError::UnknownAttr { event_type, attr } => {
                write!(f, "event type '{event_type}' has no attribute '{attr}'")
            }
            EventError::ArityMismatch {
                event_type,
                expected,
                found,
            } => write!(
                f,
                "event of type '{event_type}' carries {found} attributes, schema declares {expected}"
            ),
            EventError::OutOfOrder {
                watermark,
                timestamp,
            } => write!(
                f,
                "out-of-order event: timestamp {timestamp} behind watermark {watermark}"
            ),
            EventError::DuplicateType(name) => {
                write!(f, "event type '{name}' registered twice with conflicting schema")
            }
            EventError::ShardsAborted { unprocessed, cause } => write!(
                f,
                "sharded run aborted ({unprocessed} events left unprocessed): {cause}"
            ),
        }
    }
}

impl std::error::Error for EventError {}
