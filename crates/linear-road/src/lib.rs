//! Linear Road stream benchmark substrate (Arasu et al., VLDB'04 \[9\])
//! for the CAESAR evaluation (§7.1).
//!
//! The paper evaluates CAESAR on Linear Road because "(1) it expresses a
//! variety of application contexts such that the system reactions to an
//! event depend on the current context, and (2) it is time critical
//! since it poses tight latency constraint of 5 seconds."
//!
//! The original benchmark ships multi-gigabyte pre-generated traffic
//! traces; this crate substitutes a deterministic, seeded traffic
//! micro-simulator producing position reports with the benchmark schema
//! (`vid, sec, speed, xway, lane, dir, seg, pos`), the 30-second
//! reporting cadence the toll queries rely on, per-segment density skew
//! (Figure 10a) and a linear rate ramp with scripted accident /
//! congestion phases (Figure 10b). Context-phase boundaries surface as
//! marker events (`ManySlowCars`, `FewFastCars`, `StoppedCars`,
//! `StoppedCarsRemoved`) — the aggregate conditions of the benchmark
//! ("50 cars per minute with average speed below 40 mph") evaluated by
//! the simulator's ground truth, since the CAESAR algebra has no
//! aggregation operator.
//!
//! * [`types`] — schemas, partition encoding, the 5-second constraint.
//! * [`model`] — the CAESAR traffic model (clear / congestion /
//!   accident) with workload replication for low / average / high
//!   query loads.
//! * [`sim`] — the traffic simulator and stream generator.
//! * [`validate`] — a reference implementation computing the expected
//!   toll notifications and accident warnings directly from the
//!   generated stream, used to check engine correctness end to end.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod model;
pub mod runner;
pub mod sim;
pub mod types;
pub mod validate;

pub use model::{lr_model, lr_model_weighted, lr_registry};
pub use runner::{
    baseline_system, build_lr_system, build_lr_system_critical, caesar_system, with_lr_schemas,
};
pub use sim::{LinearRoadConfig, PhaseKind, SchedulePolicy, SegmentSchedule, TrafficSim};
pub use types::{partition_id, LATENCY_CONSTRAINT_NS};
pub use validate::{expected_outputs, ExpectedOutputs};
