//! Fuzz-style property tests: the lexer/parser never panic on arbitrary
//! input, the wire codec round-trips arbitrary events and rejects
//! arbitrary corruption without panicking, and expression evaluation is
//! total (never panics) over random expressions and bindings.

use caesar::events::codec::{decode_all, encode_all};
use caesar::events::{Event, Interval, PartitionId, TypeId, Value};
use caesar::query::lexer::tokenize;
use caesar::query::parser::{parse_model, parse_queries};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks equality round-trip checks
        // (the codec itself handles NaN fine).
        (-1e12f64..1e12).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _\\-\\.\u{00e9}\u{4e16}]{0,24}".prop_map(Value::str),
        Just(Value::Null),
    ]
}

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u32..100,
        0u64..1_000_000,
        0u64..1_000,
        0u32..64,
        prop::collection::vec(arb_value(), 0..10),
    )
        .prop_map(|(ty, start, span, partition, attrs)| {
            Event::complex(
                TypeId(ty),
                Interval::new(start, start + span),
                PartitionId(partition),
                attrs,
            )
        })
}

proptest! {
    #[test]
    fn codec_round_trips_arbitrary_events(events in prop::collection::vec(arb_event(), 0..20)) {
        let encoded = encode_all(&events);
        let decoded = decode_all(encoded).unwrap();
        prop_assert_eq!(decoded, events);
    }

    #[test]
    fn codec_never_panics_on_corruption(
        events in prop::collection::vec(arb_event(), 1..5),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let encoded = encode_all(&events);
        let mut raw = encoded.to_vec();
        for (idx, byte) in flips {
            let i = idx.index(raw.len());
            raw[i] ^= byte;
        }
        // Any outcome is fine except a panic.
        let _ = decode_all(bytes::Bytes::from(raw));
    }

    #[test]
    fn lexer_never_panics(input in "\\PC{0,200}") {
        let _ = tokenize(&input);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(input in "\\PC{0,200}") {
        let _ = parse_queries(&input);
        let _ = parse_model(&input);
    }

    #[test]
    fn parser_never_panics_on_token_shaped_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "DERIVE", "PATTERN", "WHERE", "CONTEXT", "SEQ", "NOT", "AND",
                "OR", "INITIATE", "SWITCH", "TERMINATE", "MODEL", "DEFAULT",
                "(", ")", "{", "}", ",", ".", ";", "+", "-", "*", "/", "=",
                "!=", "<", "<=", ">", ">=", "x", "Type", "42", "3.5", "\"s\"",
            ]),
            0..40,
        )
    ) {
        let input = words.join(" ");
        let _ = parse_queries(&input);
        let _ = parse_model(&input);
    }
}

mod expr_totality {
    use super::*;
    use caesar::algebra::expr::{BindingLayout, CompiledExpr, LayoutVar, SlotSource};
    use caesar::events::{AttrType, Schema, SchemaRegistry};
    use caesar::query::ast::{BinOp, Expr};

    fn arb_op() -> impl Strategy<Value = BinOp> {
        prop::sample::select(vec![
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ])
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            any::<i32>().prop_map(|v| Expr::int(i64::from(v))),
            Just(Expr::string("s")),
            Just(Expr::attr("r", "a")),
            Just(Expr::attr("r", "b")),
            Just(Expr::attr("r", "s")),
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            (arb_op(), inner.clone(), inner).prop_map(|(op, l, r)| Expr::bin(op, l, r))
        })
    }

    proptest! {
        #[test]
        fn evaluation_is_total(expr in arb_expr(), a in any::<i32>(), b in any::<i32>()) {
            let mut reg = SchemaRegistry::new();
            reg.register(Schema::new(
                "R",
                &[("a", AttrType::Int), ("b", AttrType::Int), ("s", AttrType::Str)],
            ))
            .unwrap();
            let tid = reg.lookup("R").unwrap();
            let layout = BindingLayout {
                vars: vec![LayoutVar {
                    name: "r".into(),
                    type_id: tid,
                    source: SlotSource::EventSlot(0),
                }],
            };
            let compiled = CompiledExpr::compile(&expr, &layout, &reg).unwrap();
            let event = Event::simple(
                tid,
                1,
                PartitionId(0),
                vec![
                    Value::Int(i64::from(a)),
                    Value::Int(i64::from(b)),
                    Value::str("text"),
                ],
            );
            // Ok or Err both fine; panics are not.
            let _ = compiled.eval(&[&event]);
            let mut errors = 0;
            let _ = compiled.matches(&[&event], &mut errors);
        }
    }
}
