//! The on-disk snapshot container.
//!
//! A snapshot file is a small self-describing header followed by the
//! shim-serde encoding of [`EngineState`]:
//!
//! ```text
//! offset  size  field
//!      0     8  magic            b"CAESNAP\0"
//!      8     4  version          u32 LE, currently 1
//!     12     4  flags            u32 LE, reserved (0)
//!     16     8  stream_position  u64 LE — events ingested when taken
//!     24     8  payload_len      u64 LE
//!     32     8  crc64            u64 LE, CRC-64/XZ over the payload
//!     40     …  payload          serde encoding of EngineState
//! ```
//!
//! Writes are atomic: the container is assembled in a `.tmp` sibling and
//! renamed over the destination, so a crash mid-write leaves either the
//! previous snapshot or none — never a half-written one. Reads verify
//! magic, version, length and checksum (in that order) before a single
//! byte of payload is decoded, returning a typed [`RecoveryError`] for
//! each failure mode.

use crate::error::RecoveryError;
use caesar_runtime::EngineState;
use std::fs;
use std::io::Write;
use std::path::Path;

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CAESNAP\0";
/// Snapshot format version written (and required) by this build.
/// Version history:
/// * 1 — initial format;
/// * 2 — `EngineConfig` gained the batch policy and the router gained
///   the `events_routed` counter, changing the payload encoding.
pub const SNAPSHOT_VERSION: u32 = 2;
/// Fixed header length in bytes.
const HEADER_LEN: usize = 40;

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven. Computed at
/// compile time so the hot path is one table lookup per byte.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xC96C_5795_D787_0F42
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `data`.
#[must_use]
pub fn crc64(data: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in data {
        crc = CRC64_TABLE[((crc ^ u64::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A decoded snapshot: the engine state plus the stream position the
/// recovery log is rebased against.
#[derive(Debug)]
pub struct Snapshot {
    /// Number of input events the engine had ingested when the snapshot
    /// was taken.
    pub stream_position: u64,
    /// The captured engine state.
    pub state: EngineState,
}

/// Serializes `state` into a container and atomically installs it at
/// `path` (temp file + rename within the same directory).
pub fn write_snapshot(
    path: &Path,
    stream_position: u64,
    state: &EngineState,
) -> Result<(), RecoveryError> {
    let payload = serde::to_bytes(state);
    let mut file = Vec::with_capacity(HEADER_LEN + payload.len());
    file.extend_from_slice(&SNAPSHOT_MAGIC);
    file.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    file.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
    file.extend_from_slice(&stream_position.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&crc64(&payload).to_le_bytes());
    file.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    {
        let mut out = fs::File::create(&tmp).map_err(|e| RecoveryError::io(&tmp, e))?;
        out.write_all(&file)
            .map_err(|e| RecoveryError::io(&tmp, e))?;
        out.sync_all().map_err(|e| RecoveryError::io(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| RecoveryError::io(path, e))?;
    Ok(())
}

/// Reads and fully verifies a snapshot container.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, RecoveryError> {
    let data = fs::read(path).map_err(|e| RecoveryError::io(path, e))?;
    if data.len() < HEADER_LEN {
        return Err(RecoveryError::corrupt(
            path,
            format!("only {} bytes, header needs {HEADER_LEN}", data.len()),
        ));
    }
    if data[..8] != SNAPSHOT_MAGIC {
        return Err(RecoveryError::BadMagic {
            path: path.to_path_buf(),
            found: String::from_utf8_lossy(&data[..8]).into_owned(),
        });
    }
    let u32_at = |o: usize| u32::from_le_bytes(data[o..o + 4].try_into().expect("header slice"));
    let u64_at = |o: usize| u64::from_le_bytes(data[o..o + 8].try_into().expect("header slice"));
    let version = u32_at(8);
    if version != SNAPSHOT_VERSION {
        return Err(RecoveryError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    let stream_position = u64_at(16);
    let payload_len = u64_at(24) as usize;
    let recorded = u64_at(32);
    let payload = &data[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(RecoveryError::corrupt(
            path,
            format!(
                "payload is {} bytes, header promises {payload_len}",
                payload.len()
            ),
        ));
    }
    let computed = crc64(payload);
    if computed != recorded {
        return Err(RecoveryError::ChecksumMismatch {
            path: path.to_path_buf(),
            recorded,
            computed,
        });
    }
    let state: EngineState = serde::from_bytes(payload)
        .map_err(|e| RecoveryError::corrupt(path, format!("payload decode failed: {e}")))?;
    Ok(Snapshot {
        stream_position,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_check_vector() {
        // CRC-64/XZ of "123456789" (standard check value).
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc64_detects_single_bit_flip() {
        let mut data = b"context-aware event stream analytics".to_vec();
        let clean = crc64(&data);
        data[7] ^= 0x10;
        assert_ne!(crc64(&data), clean);
    }
}
