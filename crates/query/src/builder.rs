//! Fluent programmatic construction of CAESAR models.
//!
//! The workload substrates (Linear Road, physical activity monitoring)
//! and the synthetic benchmark generators construct models in code; this
//! builder keeps that construction readable and validated.
//!
//! ```
//! use caesar_query::{ModelBuilder, Pattern, Expr, BinOp};
//!
//! let model = ModelBuilder::new("traffic", "clear")
//!     .context("clear", |ctx| {
//!         ctx.switch_to("congestion", Pattern::event("ManySlowCars", "m"), None)
//!     })
//!     .context("congestion", |ctx| {
//!         ctx.derive(
//!             "TollNotification",
//!             vec![Expr::attr("p", "vid"), Expr::int(5)],
//!             Pattern::event("NewTravelingCar", "p"),
//!             None,
//!         )
//!         .switch_to("clear", Pattern::event("FewFastCars", "f"), None)
//!     })
//!     .build()
//!     .unwrap();
//! assert_eq!(model.query_count(), 3);
//! ```

use crate::ast::{ContextAction, DeriveClause, EventQuery, Expr, Pattern};
use crate::error::QueryError;
use crate::model::{CaesarModel, ContextDef};

/// Builder for one query, used by [`ContextBuilder`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    query: EventQuery,
}

impl QueryBuilder {
    /// Starts a context-processing query deriving `event_type`.
    #[must_use]
    pub fn derive(event_type: impl Into<String>, args: Vec<Expr>, pattern: Pattern) -> Self {
        Self {
            query: EventQuery {
                name: None,
                action: None,
                derive: Some(DeriveClause {
                    event_type: event_type.into(),
                    args,
                }),
                pattern,
                where_clause: None,
                within: None,
                contexts: Vec::new(),
            },
        }
    }

    /// Starts a context-deriving query performing `action`.
    #[must_use]
    pub fn action(action: ContextAction, pattern: Pattern) -> Self {
        Self {
            query: EventQuery {
                name: None,
                action: Some(action),
                derive: None,
                pattern,
                where_clause: None,
                within: None,
                contexts: Vec::new(),
            },
        }
    }

    /// Names the query (for diagnostics and sharing introspection).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.query.name = Some(name.into());
        self
    }

    /// Attaches a `WHERE` predicate.
    #[must_use]
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.query.where_clause = Some(predicate);
        self
    }

    /// Sets the query's `WITHIN` horizon (sequence span bound and
    /// negation-buffer horizon, in ticks).
    #[must_use]
    pub fn within(mut self, ticks: u64) -> Self {
        self.query.within = Some(ticks);
        self
    }

    /// Adds explicit `CONTEXT` memberships (beyond the enclosing context).
    #[must_use]
    pub fn in_contexts(mut self, contexts: &[&str]) -> Self {
        self.query.contexts = contexts.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// Finishes the query.
    #[must_use]
    pub fn build(self) -> EventQuery {
        self.query
    }
}

/// Builds one context's workload.
#[derive(Debug)]
pub struct ContextBuilder {
    def: ContextDef,
}

impl ContextBuilder {
    fn new(name: &str) -> Self {
        Self {
            def: ContextDef::new(name),
        }
    }

    /// Adds a processing query: `DERIVE event_type(args) PATTERN pattern
    /// [WHERE filter]`.
    #[must_use]
    pub fn derive(
        mut self,
        event_type: &str,
        args: Vec<Expr>,
        pattern: Pattern,
        filter: Option<Expr>,
    ) -> Self {
        let mut qb = QueryBuilder::derive(event_type, args, pattern);
        if let Some(f) = filter {
            qb = qb.filter(f);
        }
        self.def.processing.push(qb.build());
        self
    }

    /// Adds a deriving query switching to `target`.
    #[must_use]
    pub fn switch_to(mut self, target: &str, pattern: Pattern, filter: Option<Expr>) -> Self {
        let mut qb = QueryBuilder::action(ContextAction::Switch(target.into()), pattern);
        if let Some(f) = filter {
            qb = qb.filter(f);
        }
        self.def.deriving.push(qb.build());
        self
    }

    /// Adds a deriving query initiating `target` (overlapping window).
    #[must_use]
    pub fn initiate(mut self, target: &str, pattern: Pattern, filter: Option<Expr>) -> Self {
        let mut qb = QueryBuilder::action(ContextAction::Initiate(target.into()), pattern);
        if let Some(f) = filter {
            qb = qb.filter(f);
        }
        self.def.deriving.push(qb.build());
        self
    }

    /// Adds a deriving query terminating `target`.
    #[must_use]
    pub fn terminate(mut self, target: &str, pattern: Pattern, filter: Option<Expr>) -> Self {
        let mut qb = QueryBuilder::action(ContextAction::Terminate(target.into()), pattern);
        if let Some(f) = filter {
            qb = qb.filter(f);
        }
        self.def.deriving.push(qb.build());
        self
    }

    /// Adds a fully custom query.
    #[must_use]
    pub fn query(mut self, query: EventQuery) -> Self {
        if query.is_deriving() {
            self.def.deriving.push(query);
        } else {
            self.def.processing.push(query);
        }
        self
    }
}

/// Builds a whole CAESAR model.
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    default_context: String,
    contexts: Vec<ContextDef>,
}

impl ModelBuilder {
    /// Starts a model named `name` with default context `default_context`.
    #[must_use]
    pub fn new(name: impl Into<String>, default_context: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            default_context: default_context.into(),
            contexts: Vec::new(),
        }
    }

    /// Defines a context and its workload.
    #[must_use]
    pub fn context(mut self, name: &str, f: impl FnOnce(ContextBuilder) -> ContextBuilder) -> Self {
        let mut cb = f(ContextBuilder::new(name));
        // Queries without explicit CONTEXT memberships implicitly belong
        // to the enclosing context (the optional clauses of Figure 3).
        for q in cb
            .def
            .deriving
            .iter_mut()
            .chain(cb.def.processing.iter_mut())
        {
            if q.contexts.is_empty() {
                q.contexts.push(name.to_string());
            }
        }
        self.contexts.push(cb.def);
        self
    }

    /// Defines an empty context (workload attached elsewhere or none).
    #[must_use]
    pub fn empty_context(mut self, name: &str) -> Self {
        self.contexts.push(ContextDef::new(name));
        self
    }

    /// Validates and returns the model.
    pub fn build(self) -> Result<CaesarModel, QueryError> {
        CaesarModel::new(self.name, self.default_context, self.contexts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    #[test]
    fn builder_constructs_traffic_model() {
        let model = ModelBuilder::new("traffic", "clear")
            .context("clear", |ctx| {
                ctx.switch_to("congestion", Pattern::event("ManySlowCars", "m"), None)
                    .initiate("accident", Pattern::event("StoppedCars", "s"), None)
            })
            .context("congestion", |ctx| {
                ctx.derive(
                    "TollNotification",
                    vec![Expr::attr("p", "vid"), Expr::attr("p", "sec"), Expr::int(5)],
                    Pattern::event("NewTravelingCar", "p"),
                    None,
                )
                .switch_to("clear", Pattern::event("FewFastCars", "f"), None)
            })
            .context("accident", |ctx| {
                ctx.terminate("accident", Pattern::event("StoppedCarsRemoved", "r"), None)
            })
            .build()
            .unwrap();
        assert_eq!(model.contexts.len(), 3);
        assert_eq!(model.query_count(), 5);
        assert_eq!(model.context("clear").unwrap().deriving.len(), 2);
    }

    #[test]
    fn builder_rejects_invalid_model() {
        let result = ModelBuilder::new("m", "nowhere")
            .empty_context("somewhere")
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn query_builder_with_filter_and_contexts() {
        let q = QueryBuilder::derive("Out", vec![Expr::attr("x", "v")], Pattern::event("In", "x"))
            .named("q1")
            .filter(Expr::bin(BinOp::Gt, Expr::attr("x", "v"), Expr::int(10)))
            .in_contexts(&["a", "b"])
            .build();
        assert_eq!(q.name.as_deref(), Some("q1"));
        assert!(q.where_clause.is_some());
        assert_eq!(q.contexts, vec!["a", "b"]);
    }

    #[test]
    fn custom_query_lands_in_right_bucket() {
        let deriving = QueryBuilder::action(
            ContextAction::Terminate("a".into()),
            Pattern::event("X", "x"),
        )
        .build();
        let model = ModelBuilder::new("m", "a")
            .context("a", |ctx| ctx.query(deriving))
            .build()
            .unwrap();
        assert_eq!(model.context("a").unwrap().deriving.len(), 1);
    }
}
